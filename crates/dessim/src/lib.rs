//! # dessim — a flow-level discrete-event simulation kernel
//!
//! This crate is the simulation substrate underneath both case-study
//! simulators in the `lodcal` workspace. It implements the same modelling
//! paradigm as SimGrid's *fluid* models, which the paper's simulators
//! (WRENCH- and SMPI-based) are built on:
//!
//! - **Links** have a bandwidth (bytes/s) and a latency (s). Network
//!   transfers are **flows** over multi-link routes; concurrent flows share
//!   link bandwidth according to **max-min fairness**, computed by
//!   progressive filling ([`sharing`]).
//! - **Disks** have a bandwidth and a maximum number of concurrent I/O
//!   operations; active operations share the bandwidth equally, extra
//!   operations queue FIFO.
//! - **Compute** activities progress at a caller-chosen rate (the simulator
//!   on top owns core allocation policy).
//! - **Timers** fire at absolute times (used e.g. for HTCondor negotiation
//!   cycles).
//!
//! The [`engine::Engine`] advances virtual time from one activity
//! completion to the next; the simulator on top reacts to each
//! [`engine::Completion`] by adding new activities, in the classic
//! discrete-event style. The hot path is built for ~10⁶ concurrent
//! activities: structure-of-arrays activity storage with a recycled slot
//! free-list and a shared route arena, an addressable event heap (one
//! relocatable entry per activity), frontier-limited incremental max-min
//! re-solves, and same-instant batch draining of simultaneous
//! completions (see the [`engine`] module docs). The original
//! full-recompute loop survives as [`reference::ReferenceEngine`], the
//! oracle the optimized engine is property-tested against — within
//! tolerance on arbitrary workloads, and *bitwise* on workloads whose
//! arithmetic is exactly representable — and the baseline for the
//! scaling benchmarks.
//!
//! ## Example
//!
//! ```
//! use dessim::{Engine, Platform, ActivityKind};
//!
//! let mut platform = Platform::new();
//! let link = platform.add_link(125_000_000.0, 1e-4); // 1 Gbps, 100us
//! let mut engine = Engine::new(platform);
//! engine.add_activity(ActivityKind::flow(vec![link], 125_000_000.0), 7);
//! let done = engine.step().unwrap();
//! assert_eq!(done.tag, 7);
//! assert!((done.time - 1.0001).abs() < 1e-9); // latency + bytes/bw
//! ```

pub mod engine;
pub mod platform;
pub mod reference;
pub mod sharing;

pub use engine::{ActivityId, ActivityKind, Completion, Engine, KernelCounters};
pub use platform::{Disk, DiskId, Host, HostId, Link, LinkId, Platform};
pub use reference::ReferenceEngine;
pub use sharing::{max_min_fair_share, Frontier, Workspace};
