//! Platform description: links, hosts, and disks.
//!
//! A [`Platform`] is a flat registry of resources referenced by typed ids.
//! Topology (which links make up the route between two hosts) is owned by
//! the simulator built on top — the kernel only needs to know each flow's
//! route as a list of [`LinkId`]s.

/// Identifier of a network link within a [`Platform`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

/// Identifier of a host within a [`Platform`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub(crate) usize);

/// Identifier of a disk within a [`Platform`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskId(pub(crate) usize);

impl LinkId {
    /// The raw index of this link (stable for the platform's lifetime).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl HostId {
    /// The raw index of this host.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl DiskId {
    /// The raw index of this disk.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A network link with a bandwidth (bytes/s) and a latency (s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Latency in seconds, charged once per flow at flow start.
    pub latency: f64,
}

/// A compute host with a number of cores and a per-core speed (ops/s).
///
/// The kernel does not enforce core allocation — the simulator on top
/// decides which compute activities run and at what rate — but hosts are
/// registered here so every layer shares one resource namespace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Host {
    /// Number of cores available for task execution.
    pub cores: u32,
    /// Speed of one core in (abstract) operations per second.
    pub core_speed: f64,
}

/// A storage disk with a bandwidth (bytes/s) shared equally among active
/// operations, and a cap on how many operations may be active at once
/// (excess operations queue FIFO).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Disk {
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Maximum number of concurrently-served I/O operations.
    pub max_concurrency: u32,
}

/// Registry of simulated hardware resources.
#[derive(Clone, Debug, Default)]
pub struct Platform {
    links: Vec<Link>,
    hosts: Vec<Host>,
    disks: Vec<Disk>,
}

impl Platform {
    /// An empty platform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a link and return its id.
    ///
    /// # Panics
    /// Panics if `bandwidth` is not strictly positive or `latency` is
    /// negative/non-finite.
    pub fn add_link(&mut self, bandwidth: f64, latency: f64) -> LinkId {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "link bandwidth must be positive"
        );
        assert!(
            latency >= 0.0 && latency.is_finite(),
            "link latency must be non-negative"
        );
        self.links.push(Link { bandwidth, latency });
        LinkId(self.links.len() - 1)
    }

    /// Register a host and return its id.
    ///
    /// # Panics
    /// Panics if `cores == 0` or `core_speed` is not strictly positive.
    pub fn add_host(&mut self, cores: u32, core_speed: f64) -> HostId {
        assert!(cores > 0, "host must have at least one core");
        assert!(
            core_speed > 0.0 && core_speed.is_finite(),
            "core speed must be positive"
        );
        self.hosts.push(Host { cores, core_speed });
        HostId(self.hosts.len() - 1)
    }

    /// Register a disk and return its id.
    ///
    /// # Panics
    /// Panics if `bandwidth` is not strictly positive or
    /// `max_concurrency == 0`.
    pub fn add_disk(&mut self, bandwidth: f64, max_concurrency: u32) -> DiskId {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "disk bandwidth must be positive"
        );
        assert!(
            max_concurrency > 0,
            "disk must serve at least one operation"
        );
        self.disks.push(Disk {
            bandwidth,
            max_concurrency,
        });
        DiskId(self.disks.len() - 1)
    }

    /// Look up a link.
    #[inline]
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.0]
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> Host {
        self.hosts[id.0]
    }

    /// Look up a disk.
    #[inline]
    pub fn disk(&self, id: DiskId) -> Disk {
        self.disks[id.0]
    }

    /// Number of registered links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of registered hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of registered disks.
    #[inline]
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Iterate over `(id, link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), *l))
    }

    /// Sum of latencies along a route, in seconds.
    pub fn route_latency(&self, route: &[LinkId]) -> f64 {
        route.iter().map(|id| self.links[id.0].latency).sum()
    }

    /// Minimum bandwidth along a route, in bytes/s (infinite for an empty
    /// route, which models an intra-host "loopback" transfer).
    pub fn route_bottleneck(&self, route: &[LinkId]) -> f64 {
        route
            .iter()
            .map(|id| self.links[id.0].bandwidth)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_sequential_ids() {
        let mut p = Platform::new();
        let a = p.add_link(1e9, 1e-3);
        let b = p.add_link(2e9, 2e-3);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.link(b).bandwidth, 2e9);
        assert_eq!(p.num_links(), 2);
    }

    #[test]
    fn route_latency_and_bottleneck() {
        let mut p = Platform::new();
        let a = p.add_link(1e9, 1e-3);
        let b = p.add_link(5e8, 2e-3);
        assert_eq!(p.route_latency(&[a, b]), 3e-3);
        assert_eq!(p.route_bottleneck(&[a, b]), 5e8);
        assert_eq!(p.route_bottleneck(&[]), f64::INFINITY);
        assert_eq!(p.route_latency(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_link_rejected() {
        Platform::new().add_link(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_host_rejected() {
        Platform::new().add_host(0, 1e9);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn zero_concurrency_disk_rejected() {
        Platform::new().add_disk(1e8, 0);
    }
}
