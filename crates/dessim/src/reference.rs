//! The reference engine: the original full-recompute event loop.
//!
//! [`ReferenceEngine`] keeps the straightforward fluid-model loop the crate
//! started with: on every activity-set change it recomputes *every* rate
//! from scratch, and every [`ReferenceEngine::step`] linearly scans all
//! activities for the earliest completion and rewrites every `remaining`
//! amount. That is `O(n)` per event (`O(n^2)` per simulation) and exists
//! for two reasons:
//!
//! - It is the **oracle** for the optimized [`crate::Engine`]: simple
//!   enough to audit by eye, and property tests assert both engines emit
//!   the same completion sequence on randomized workloads.
//! - It is the **baseline** for the kernel scaling benchmarks in
//!   `crates/bench/benches/kernel.rs`.
//!
//! One deliberate fix relative to the historical code: an unconstrained
//! (empty-route) flow used to get the sentinel rate `f64::MAX`, and its
//! completion relied on `remaining / f64::MAX` producing a subnormal time
//! step — which both skewed virtual time (1e300 bytes "took" ~5.6e-9
//! simulated seconds) and risked `remaining - rate * dt` overflowing for
//! other activities. Infinite rates are now kept as `f64::INFINITY` and
//! handled explicitly: such flows complete at the current instant and are
//! excluded from progress arithmetic.

use crate::engine::{ActivityId, ActivityKind, Completion};
use crate::platform::{DiskId, Platform};
use crate::sharing::max_min_fair_share;
use std::collections::BTreeMap;

/// Tolerance under which a remaining amount counts as finished.
const EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
enum Phase {
    /// Flow still paying its route latency (`remaining` is seconds).
    Latency,
    /// Transferring / computing / waiting.
    Active,
}

#[derive(Clone, Debug)]
struct Act {
    kind: ActivityKind,
    tag: u64,
    phase: Phase,
    remaining: f64,
    rate: f64,
}

/// The original full-recompute, linear-scan engine (see module docs).
///
/// Same observable contract as [`crate::Engine`] — identical completion
/// sequences up to floating-point noise — at `O(n)` cost per event.
#[derive(Clone, Debug)]
pub struct ReferenceEngine {
    platform: Platform,
    time: f64,
    next_id: u64,
    acts: BTreeMap<u64, Act>,
    dirty: bool,
}

impl ReferenceEngine {
    /// Create an engine over `platform`, at virtual time 0.
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            time: 0.0,
            next_id: 0,
            acts: BTreeMap::new(),
            dirty: true,
        }
    }

    /// Current virtual time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of in-flight activities.
    pub fn active_count(&self) -> usize {
        self.acts.len()
    }

    /// Add an activity; `tag` is echoed back in its [`Completion`].
    pub fn add_activity(&mut self, kind: ActivityKind, tag: u64) -> ActivityId {
        let id = self.next_id;
        self.next_id += 1;
        let (phase, remaining) = match &kind {
            ActivityKind::Compute { work, .. } => (Phase::Active, *work),
            ActivityKind::Io { bytes, .. } => (Phase::Active, *bytes),
            ActivityKind::Flow { route, bytes } => {
                let lat = self.platform.route_latency(route);
                if lat > 0.0 {
                    (Phase::Latency, lat)
                } else {
                    (Phase::Active, *bytes)
                }
            }
            ActivityKind::Timer { delay } => (Phase::Active, *delay),
            ActivityKind::TimerAt { at } => (Phase::Active, (*at - self.time).max(0.0)),
        };
        self.acts.insert(
            id,
            Act {
                kind,
                tag,
                phase,
                remaining,
                rate: 0.0,
            },
        );
        self.dirty = true;
        ActivityId(id)
    }

    /// Batch add; equivalent to repeated [`ReferenceEngine::add_activity`].
    pub fn add_activities(
        &mut self,
        batch: impl IntoIterator<Item = (ActivityKind, u64)>,
    ) -> Vec<ActivityId> {
        batch
            .into_iter()
            .map(|(kind, tag)| self.add_activity(kind, tag))
            .collect()
    }

    /// Recompute every activity's progress rate from the current set.
    fn recompute_rates(&mut self) {
        // Flows in the Active phase share links max-min fair.
        let flow_ids: Vec<u64> = self
            .acts
            .iter()
            .filter(|(_, a)| {
                matches!(a.kind, ActivityKind::Flow { .. }) && matches!(a.phase, Phase::Active)
            })
            .map(|(id, _)| *id)
            .collect();
        let caps: Vec<f64> = self.platform.links().map(|(_, l)| l.bandwidth).collect();
        let routes: Vec<Vec<usize>> = flow_ids
            .iter()
            .map(|id| match &self.acts[id].kind {
                ActivityKind::Flow { route, .. } => route.iter().map(|l| l.index()).collect(),
                _ => unreachable!(),
            })
            .collect();
        let flow_rates = max_min_fair_share(&caps, &routes);
        for (id, rate) in flow_ids.iter().zip(flow_rates) {
            // An empty route (intra-host transfer) is unconstrained; the
            // infinite rate is handled explicitly in `step`.
            self.acts.get_mut(id).unwrap().rate = rate;
        }

        // Disk ops: oldest `max_concurrency` ops on each disk share its
        // bandwidth equally; younger ops wait at rate 0.
        for d in 0..self.platform.num_disks() {
            let disk = self.platform.disk(DiskId(d));
            let ops: Vec<u64> = self
                .acts
                .iter()
                .filter(|(_, a)| matches!(a.kind, ActivityKind::Io { disk: did, .. } if did.index() == d))
                .map(|(id, _)| *id)
                .collect();
            let served = ops.len().min(disk.max_concurrency as usize);
            let share = if served > 0 {
                disk.bandwidth / served as f64
            } else {
                0.0
            };
            for (i, id) in ops.iter().enumerate() {
                self.acts.get_mut(id).unwrap().rate = if i < served { share } else { 0.0 };
            }
        }

        // Computations, timers, and latency-phase flows progress in their
        // own unit at fixed rates.
        for a in self.acts.values_mut() {
            match (&a.kind, &a.phase) {
                (ActivityKind::Compute { rate, .. }, _) => a.rate = *rate,
                (ActivityKind::Timer { .. }, _) => a.rate = 1.0,
                (ActivityKind::TimerAt { .. }, _) => a.rate = 1.0,
                (ActivityKind::Flow { .. }, Phase::Latency) => a.rate = 1.0,
                _ => {}
            }
        }
        self.dirty = false;
    }

    /// Advance to the next completion and return it, or `None` when no
    /// activities remain.
    pub fn step(&mut self) -> Option<Completion> {
        loop {
            if self.acts.is_empty() {
                return None;
            }
            if self.dirty {
                self.recompute_rates();
            }

            // Earliest event: min over activities of remaining/rate. An
            // infinite rate means the activity completes this instant.
            let mut best: Option<(u64, f64)> = None;
            for (&id, a) in &self.acts {
                let dt = if a.remaining <= EPS || a.rate.is_infinite() {
                    0.0
                } else if a.rate > 0.0 {
                    a.remaining / a.rate
                } else {
                    f64::INFINITY
                };
                if best.is_none_or(|(_, b)| dt < b) {
                    best = Some((id, dt));
                }
            }
            let (event_id, dt) = best.expect("non-empty activity set");
            assert!(
                dt.is_finite(),
                "deadlock: every in-flight activity has rate 0 (time {})",
                self.time
            );

            // Advance all activities by dt (infinite-rate flows complete
            // at dt = 0 and never enter this arithmetic).
            if dt > 0.0 {
                self.time += dt;
                for a in self.acts.values_mut() {
                    if a.rate > 0.0 && a.rate.is_finite() {
                        a.remaining = (a.remaining - a.rate * dt).max(0.0);
                    }
                }
            }

            let act = self.acts.get_mut(&event_id).expect("event activity exists");
            match act.phase {
                Phase::Latency => {
                    // Latency paid: start the transfer phase.
                    let bytes = match &act.kind {
                        ActivityKind::Flow { bytes, .. } => *bytes,
                        _ => unreachable!("only flows have a latency phase"),
                    };
                    act.phase = Phase::Active;
                    act.remaining = bytes;
                    act.rate = 0.0;
                    self.dirty = true;
                    // Loop: the phase change alters sharing but completes
                    // nothing caller-visible.
                }
                Phase::Active => {
                    let tag = act.tag;
                    self.acts.remove(&event_id);
                    self.dirty = true;
                    return Some(Completion {
                        id: ActivityId(event_id),
                        tag,
                        time: self.time,
                    });
                }
            }
        }
    }

    /// Run until no activities remain, returning every completion in order.
    pub fn run_to_completion(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.step() {
            out.push(c);
        }
        out
    }
}
