//! The discrete-event engine: activities, virtual time, and completions.
//!
//! The engine owns a [`Platform`] and a set of in-flight activities. Each
//! call to [`Engine::step`] advances virtual time to the next activity
//! completion and returns it; the simulator built on top reacts by adding
//! new activities. Rates are recomputed (max-min fair sharing for flows,
//! equal sharing with a concurrency cap for disks) whenever the activity
//! set changes, which is the classic fluid-model event loop.

use crate::platform::{DiskId, LinkId, Platform};
use crate::sharing::max_min_fair_share;
use std::collections::BTreeMap;

/// Relative tolerance under which a remaining amount counts as finished.
const EPS: f64 = 1e-9;

/// Unique identifier of an activity within one [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(u64);

/// What an activity does. Construct via the helper constructors.
#[derive(Clone, Debug)]
pub enum ActivityKind {
    /// Computation progressing at a fixed caller-chosen rate (ops/s).
    Compute {
        /// Progress rate in operations per second.
        rate: f64,
        /// Total work in operations.
        work: f64,
    },
    /// A disk I/O operation; the disk's bandwidth is shared equally among
    /// the oldest `max_concurrency` pending operations.
    Io {
        /// Target disk.
        disk: DiskId,
        /// Bytes to read or write.
        bytes: f64,
    },
    /// A network flow across a route of links; bandwidth shared max-min
    /// fair with all other active flows. The route's total latency is
    /// charged serially before the transfer starts.
    Flow {
        /// Links traversed, in order.
        route: Vec<LinkId>,
        /// Bytes to transfer.
        bytes: f64,
    },
    /// Fires after a fixed delay (e.g. a scheduler's periodic cycle).
    Timer {
        /// Delay in seconds from the moment the timer is added.
        delay: f64,
    },
}

impl ActivityKind {
    /// A fixed-rate computation of `work` operations at `rate` ops/s.
    ///
    /// # Panics
    /// Panics if `rate <= 0`, or if either argument is non-finite or
    /// `work < 0`.
    pub fn compute(rate: f64, work: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "compute rate must be positive");
        assert!(work >= 0.0 && work.is_finite(), "compute work must be non-negative");
        ActivityKind::Compute { rate, work }
    }

    /// A disk I/O operation of `bytes` bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or non-finite.
    pub fn io(disk: DiskId, bytes: f64) -> Self {
        assert!(bytes >= 0.0 && bytes.is_finite(), "io bytes must be non-negative");
        ActivityKind::Io { disk, bytes }
    }

    /// A network flow of `bytes` bytes along `route`.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or non-finite.
    pub fn flow(route: Vec<LinkId>, bytes: f64) -> Self {
        assert!(bytes >= 0.0 && bytes.is_finite(), "flow bytes must be non-negative");
        ActivityKind::Flow { route, bytes }
    }

    /// A timer firing `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative or non-finite.
    pub fn timer(delay: f64) -> Self {
        assert!(delay >= 0.0 && delay.is_finite(), "timer delay must be non-negative");
        ActivityKind::Timer { delay }
    }
}

/// A finished activity, as returned by [`Engine::step`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// The finished activity.
    pub id: ActivityId,
    /// The caller-supplied tag identifying what this activity meant.
    pub tag: u64,
    /// Virtual time of completion, in seconds.
    pub time: f64,
}

#[derive(Clone, Debug)]
enum Phase {
    /// Flow still paying its route latency (`remaining` is seconds).
    Latency,
    /// Transferring / computing / waiting (`remaining` is bytes, ops, or
    /// seconds depending on the kind).
    Active,
}

#[derive(Clone, Debug)]
struct Act {
    kind: ActivityKind,
    tag: u64,
    phase: Phase,
    /// Remaining amount in the unit of the current phase.
    remaining: f64,
    /// Current progress rate (recomputed on activity-set changes).
    rate: f64,
}

/// Flow-level discrete-event simulation engine.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Clone, Debug)]
pub struct Engine {
    platform: Platform,
    time: f64,
    next_id: u64,
    acts: BTreeMap<u64, Act>,
    dirty: bool,
}

impl Engine {
    /// Create an engine over `platform`, at virtual time 0.
    pub fn new(platform: Platform) -> Self {
        Self { platform, time: 0.0, next_id: 0, acts: BTreeMap::new(), dirty: true }
    }

    /// Current virtual time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of in-flight activities.
    pub fn active_count(&self) -> usize {
        self.acts.len()
    }

    /// Add an activity; `tag` is echoed back in its [`Completion`].
    pub fn add_activity(&mut self, kind: ActivityKind, tag: u64) -> ActivityId {
        let id = self.next_id;
        self.next_id += 1;
        let (phase, remaining) = match &kind {
            ActivityKind::Compute { work, .. } => (Phase::Active, *work),
            ActivityKind::Io { bytes, .. } => (Phase::Active, *bytes),
            ActivityKind::Flow { route, bytes } => {
                let lat = self.platform.route_latency(route);
                if lat > 0.0 {
                    (Phase::Latency, lat)
                } else {
                    (Phase::Active, *bytes)
                }
            }
            ActivityKind::Timer { delay } => (Phase::Active, *delay),
        };
        self.acts.insert(id, Act { kind, tag, phase, remaining, rate: 0.0 });
        self.dirty = true;
        ActivityId(id)
    }

    /// Recompute every activity's progress rate from the current set.
    fn recompute_rates(&mut self) {
        // Flows in the Active phase share links max-min fair.
        let flow_ids: Vec<u64> = self
            .acts
            .iter()
            .filter(|(_, a)| {
                matches!(a.kind, ActivityKind::Flow { .. }) && matches!(a.phase, Phase::Active)
            })
            .map(|(id, _)| *id)
            .collect();
        let caps: Vec<f64> = self.platform.links().map(|(_, l)| l.bandwidth).collect();
        let routes: Vec<Vec<usize>> = flow_ids
            .iter()
            .map(|id| match &self.acts[id].kind {
                ActivityKind::Flow { route, .. } => route.iter().map(|l| l.index()).collect(),
                _ => unreachable!(),
            })
            .collect();
        let flow_rates = max_min_fair_share(&caps, &routes);
        for (id, rate) in flow_ids.iter().zip(flow_rates) {
            // An empty route (intra-host transfer) gets "infinite" rate;
            // completion is then immediate. Keep it finite for arithmetic.
            self.acts.get_mut(id).unwrap().rate = if rate.is_finite() { rate } else { f64::MAX };
        }

        // Disk ops: oldest `max_concurrency` ops on each disk share its
        // bandwidth equally; younger ops wait at rate 0.
        for d in 0..self.platform.num_disks() {
            let disk = self.platform.disk(DiskId(d));
            let ops: Vec<u64> = self
                .acts
                .iter()
                .filter(|(_, a)| matches!(a.kind, ActivityKind::Io { disk: did, .. } if did.index() == d))
                .map(|(id, _)| *id)
                .collect();
            let served = ops.len().min(disk.max_concurrency as usize);
            let share = if served > 0 { disk.bandwidth / served as f64 } else { 0.0 };
            for (i, id) in ops.iter().enumerate() {
                self.acts.get_mut(id).unwrap().rate = if i < served { share } else { 0.0 };
            }
        }

        // Computations, timers, and latency-phase flows progress in their
        // own unit at fixed rates.
        for a in self.acts.values_mut() {
            match (&a.kind, &a.phase) {
                (ActivityKind::Compute { rate, .. }, _) => a.rate = *rate,
                (ActivityKind::Timer { .. }, _) => a.rate = 1.0,
                (ActivityKind::Flow { .. }, Phase::Latency) => a.rate = 1.0,
                _ => {}
            }
        }
        self.dirty = false;
    }

    /// Advance to the next completion and return it, or `None` when no
    /// activities remain. Internal phase transitions (a flow finishing its
    /// latency and starting to consume bandwidth) are handled transparently.
    pub fn step(&mut self) -> Option<Completion> {
        loop {
            if self.acts.is_empty() {
                return None;
            }
            if self.dirty {
                self.recompute_rates();
            }

            // Earliest event: min over activities of remaining/rate.
            let mut best: Option<(u64, f64)> = None;
            for (&id, a) in &self.acts {
                let dt = if a.remaining <= EPS {
                    0.0
                } else if a.rate > 0.0 {
                    a.remaining / a.rate
                } else {
                    f64::INFINITY
                };
                if best.is_none_or(|(_, b)| dt < b) {
                    best = Some((id, dt));
                }
            }
            let (event_id, dt) = best.expect("non-empty activity set");
            assert!(
                dt.is_finite(),
                "deadlock: every in-flight activity has rate 0 (time {})",
                self.time
            );

            // Advance all activities by dt.
            if dt > 0.0 {
                self.time += dt;
                for a in self.acts.values_mut() {
                    if a.rate > 0.0 {
                        a.remaining = (a.remaining - a.rate * dt).max(0.0);
                    }
                }
            }

            let act = self.acts.get_mut(&event_id).expect("event activity exists");
            match act.phase {
                Phase::Latency => {
                    // Latency paid: start the transfer phase.
                    let bytes = match &act.kind {
                        ActivityKind::Flow { bytes, .. } => *bytes,
                        _ => unreachable!("only flows have a latency phase"),
                    };
                    act.phase = Phase::Active;
                    act.remaining = bytes;
                    act.rate = 0.0;
                    self.dirty = true;
                    // Loop: the phase change alters sharing but completes
                    // nothing caller-visible.
                }
                Phase::Active => {
                    let tag = act.tag;
                    self.acts.remove(&event_id);
                    self.dirty = true;
                    return Some(Completion { id: ActivityId(event_id), tag, time: self.time });
                }
            }
        }
    }

    /// Run until no activities remain, returning every completion in order.
    pub fn run_to_completion(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.step() {
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_flow_latency_plus_transfer() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.5);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 200.0), 1);
        let c = e.step().unwrap();
        assert!(close(c.time, 0.5 + 2.0), "time {}", c.time);
        assert!(e.step().is_none());
    }

    #[test]
    fn two_equal_flows_share_bandwidth() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        // Each gets 50 B/s: both finish at t=2.
        assert!(close(c1.time, 2.0));
        assert!(close(c2.time, 2.0));
    }

    #[test]
    fn short_flow_completion_speeds_up_long_flow() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 50.0), 1); // short
        e.add_activity(ActivityKind::flow(vec![l], 150.0), 2); // long
        let c1 = e.step().unwrap();
        assert_eq!(c1.tag, 1);
        assert!(close(c1.time, 1.0)); // 50 bytes at 50 B/s
        let c2 = e.step().unwrap();
        assert_eq!(c2.tag, 2);
        // Long flow: 50 bytes at 50 B/s (t in [0,1]) + 100 bytes at 100 B/s.
        assert!(close(c2.time, 2.0), "time {}", c2.time);
    }

    #[test]
    fn compute_activity_runs_at_given_rate() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::compute(4.0, 10.0), 9);
        let c = e.step().unwrap();
        assert!(close(c.time, 2.5));
        assert_eq!(c.tag, 9);
    }

    #[test]
    fn timer_fires_at_absolute_delay() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(3.0), 5);
        let c = e.step().unwrap();
        assert!(close(c.time, 3.0));
    }

    #[test]
    fn timer_added_later_fires_relative_to_add_time() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        assert!(close(e.step().unwrap().time, 1.0));
        e.add_activity(ActivityKind::timer(2.0), 2);
        assert!(close(e.step().unwrap().time, 3.0));
    }

    #[test]
    fn disk_concurrency_limit_queues_ops() {
        let mut p = Platform::new();
        let d = p.add_disk(100.0, 1); // one op at a time
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::io(d, 100.0), 1);
        e.add_activity(ActivityKind::io(d, 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert_eq!((c1.tag, c2.tag), (1, 2));
        assert!(close(c1.time, 1.0));
        assert!(close(c2.time, 2.0), "serialized, not shared: {}", c2.time);
    }

    #[test]
    fn disk_shares_bandwidth_up_to_concurrency() {
        let mut p = Platform::new();
        let d = p.add_disk(100.0, 2);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::io(d, 100.0), 1);
        e.add_activity(ActivityKind::io(d, 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert!(close(c1.time, 2.0));
        assert!(close(c2.time, 2.0));
    }

    #[test]
    fn zero_byte_flow_costs_latency_only() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.25);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 0.0), 1);
        assert!(close(e.step().unwrap().time, 0.25));
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::compute(1.0, 0.0), 1);
        let c = e.step().unwrap();
        assert_eq!(c.time, 0.0);
    }

    #[test]
    fn empty_route_flow_is_instant_after_no_latency() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::flow(vec![], 1e9), 1);
        let c = e.step().unwrap();
        assert!(c.time < 1e-6);
    }

    #[test]
    fn multi_link_route_pays_summed_latency_and_bottleneck() {
        let mut p = Platform::new();
        let a = p.add_link(100.0, 0.1);
        let b = p.add_link(50.0, 0.2);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![a, b], 100.0), 1);
        let c = e.step().unwrap();
        // 0.3 latency + 100/50 transfer.
        assert!(close(c.time, 2.3), "time {}", c.time);
    }

    #[test]
    fn interleaved_kinds_complete_in_time_order() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let d = p.add_disk(100.0, 4);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::compute(10.0, 15.0), 1); // t=1.5
        e.add_activity(ActivityKind::flow(vec![l], 50.0), 2); // t=0.5
        e.add_activity(ActivityKind::io(d, 100.0), 3); // t=1.0
        e.add_activity(ActivityKind::timer(0.25), 4); // t=0.25
        let order: Vec<u64> = e.run_to_completion().iter().map(|c| c.tag).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn run_to_completion_drains_everything() {
        let mut e = Engine::new(Platform::new());
        for i in 0..10 {
            e.add_activity(ActivityKind::timer(i as f64), i);
        }
        assert_eq!(e.run_to_completion().len(), 10);
        assert_eq!(e.active_count(), 0);
    }

    #[test]
    fn latency_phase_does_not_consume_bandwidth() {
        // Flow A has huge latency; flow B should get the full link until
        // A's latency elapses.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let l_lat = p.add_link(1e12, 10.0); // pure-latency hop for A
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l_lat, l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert!(close(c.time, 1.0), "B at full bandwidth: {}", c.time);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 1);
        assert!(close(c.time, 11.0), "A: 10 latency + 1 transfer: {}", c.time);
    }

    #[test]
    fn simultaneous_completions_all_reported() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        e.add_activity(ActivityKind::timer(1.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert!(close(c1.time, 1.0) && close(c2.time, 1.0));
        assert_ne!(c1.tag, c2.tag);
    }

    #[test]
    fn time_is_monotone_nondecreasing() {
        let mut p = Platform::new();
        let l = p.add_link(10.0, 0.01);
        let d = p.add_disk(5.0, 2);
        let mut e = Engine::new(p);
        for i in 0..20 {
            match i % 3 {
                0 => e.add_activity(ActivityKind::flow(vec![l], (i * 7 % 13) as f64), i),
                1 => e.add_activity(ActivityKind::io(d, (i * 5 % 11) as f64), i),
                _ => e.add_activity(ActivityKind::compute(2.0, (i % 9) as f64), i),
            };
        }
        let mut last = 0.0;
        while let Some(c) = e.step() {
            assert!(c.time >= last - 1e-12);
            last = c.time;
        }
    }
}
