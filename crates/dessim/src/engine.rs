//! The discrete-event engine: activities, virtual time, and completions.
//!
//! The engine owns a [`Platform`] and a set of in-flight activities. Each
//! call to [`Engine::step`] advances virtual time to the next activity
//! completion and returns it; the simulator built on top reacts by adding
//! new activities.
//!
//! Unlike the naive fluid-model loop (recompute every rate and scan every
//! activity at every event — see [`crate::reference::ReferenceEngine`]),
//! this engine is built for 10⁶ concurrent activities. Four mechanisms
//! carry the hot path (see DESIGN.md for the per-mechanism O(·) bounds):
//!
//! - **Structure-of-arrays storage.** Activity state is split into a hot
//!   column of 32-byte rows (`remaining`, `rate`, `materialized_at`, heap
//!   position, flags) that the step loop touches, and cold columns
//!   (serial id, tag, route/disk metadata) it mostly doesn't. Slots are
//!   recycled through a free list; the *serial* id handed out as
//!   [`ActivityId`] is never reused, so recycling is invisible to
//!   callers. All route segments live in one shared arena (`Vec<u32>` of
//!   link indices), compacted when more than half is dead — no
//!   per-activity heap allocation survives `add_activity`.
//! - **Addressable event heap.** Predicted completion times live in an
//!   indexed binary min-heap keyed by `(finish, serial)`; each activity's
//!   current heap position is stored in its hot row, so a rate change
//!   *moves* its single entry (sift-up/down) instead of abandoning a
//!   stale one. The heap never holds more entries than live activities.
//! - **Frontier-limited rate recomputation.** An add or completion marks
//!   the links it touches; the re-solve covers only those links, the
//!   flows crossing them, and their *boundary* links (modeled by residual
//!   capacity), expanding outward only when the candidate solution proves
//!   the boundary approximation wrong ([`crate::sharing::Frontier`]).
//!   Whole-component walks — `O(component)` per event on well-connected
//!   platforms — are gone from the hot path.
//! - **Same-instant batch draining.** After popping an event, every
//!   further heap entry provably due at the same timestamp (timers,
//!   zero-remaining activities, anything a pending re-solve cannot move)
//!   is drained into an internal completion queue before the next sharing
//!   flush, so a burst of simultaneous completions costs one
//!   invalidation+re-solve pass instead of one per event.
//!
//! Rate recomputation is deferred and merged: any number of
//! [`Engine::add_activity`] / [`Engine::add_activities`] calls between two
//! events trigger a single incremental re-solve.
//!
//! **Determinism contract:** completion order and times are a function of
//! the platform and the add sequence only — independent of storage
//! layout, slot recycling, and frontier size. Ties at one instant resolve
//! by serial (add) order; residual-capacity sums and commit order are
//! canonicalized by serial so registry order never leaks into float
//! arithmetic.

use crate::platform::{DiskId, LinkId, Platform};
use crate::sharing::{Frontier, Workspace};
use std::collections::VecDeque;

/// Tolerance under which a remaining amount counts as finished.
const EPS: f64 = 1e-9;

/// Sentinel heap position: the activity has no queued prediction.
const NO_HEAP: u32 = u32::MAX;

// Hot-row flag layout: low 3 bits hold the kind, the rest are state bits.
const KIND_MASK: u32 = 0x7;
const KIND_COMPUTE: u32 = 0;
const KIND_IO: u32 = 1;
const KIND_FLOW: u32 = 2;
const KIND_TIMER: u32 = 3;
const KIND_TIMER_AT: u32 = 4;
/// Slot holds a live (not yet completed) activity.
const FLAG_LIVE: u32 = 0x8;
/// Flow still paying its route latency (`remaining` is seconds).
const FLAG_LATENCY: u32 = 0x10;
/// The activity's rate or phase changed after its first prediction; any
/// further schedule is a *re*-insert (mirrors the old generation counter
/// for [`KernelCounters::heap_reinserts`]).
const FLAG_RESCHED: u32 = 0x20;

/// Unique identifier of an activity within one [`Engine`].
///
/// Ids are serial: assigned in add order and never reused, even though
/// the engine recycles internal storage slots of completed activities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) u64);

/// What an activity does. Construct via the helper constructors.
#[derive(Clone, Debug)]
pub enum ActivityKind {
    /// Computation progressing at a fixed caller-chosen rate (ops/s).
    Compute {
        /// Progress rate in operations per second.
        rate: f64,
        /// Total work in operations.
        work: f64,
    },
    /// A disk I/O operation; the disk's bandwidth is shared equally among
    /// the oldest `max_concurrency` pending operations.
    Io {
        /// Target disk.
        disk: DiskId,
        /// Bytes to read or write.
        bytes: f64,
    },
    /// A network flow across a route of links; bandwidth shared max-min
    /// fair with all other active flows. The route's total latency is
    /// charged serially before the transfer starts.
    Flow {
        /// Links traversed, in order.
        route: Vec<LinkId>,
        /// Bytes to transfer.
        bytes: f64,
    },
    /// Fires after a fixed delay (e.g. a scheduler's periodic cycle).
    Timer {
        /// Delay in seconds from the moment the timer is added.
        delay: f64,
    },
    /// Fires at an absolute virtual time (immediately if already past).
    /// Unlike [`ActivityKind::Timer`], the deadline does not depend on
    /// when the activity is added, so schedulers can pre-compute exact
    /// event times.
    TimerAt {
        /// Absolute deadline in seconds of virtual time.
        at: f64,
    },
}

impl ActivityKind {
    /// A fixed-rate computation of `work` operations at `rate` ops/s.
    ///
    /// # Panics
    /// Panics if `rate <= 0`, or if either argument is non-finite or
    /// `work < 0`.
    pub fn compute(rate: f64, work: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "compute rate must be positive"
        );
        assert!(
            work >= 0.0 && work.is_finite(),
            "compute work must be non-negative"
        );
        ActivityKind::Compute { rate, work }
    }

    /// A disk I/O operation of `bytes` bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or non-finite.
    pub fn io(disk: DiskId, bytes: f64) -> Self {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "io bytes must be non-negative"
        );
        ActivityKind::Io { disk, bytes }
    }

    /// A network flow of `bytes` bytes along `route`.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or non-finite.
    pub fn flow(route: Vec<LinkId>, bytes: f64) -> Self {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "flow bytes must be non-negative"
        );
        ActivityKind::Flow { route, bytes }
    }

    /// A timer firing `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative or non-finite.
    pub fn timer(delay: f64) -> Self {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "timer delay must be non-negative"
        );
        ActivityKind::Timer { delay }
    }

    /// A timer firing at absolute virtual time `at` (or immediately if
    /// `at` is already in the past when added).
    ///
    /// # Panics
    /// Panics if `at` is negative or non-finite.
    pub fn timer_at(at: f64) -> Self {
        assert!(
            at >= 0.0 && at.is_finite(),
            "timer deadline must be non-negative"
        );
        ActivityKind::TimerAt { at }
    }
}

/// A finished activity, as returned by [`Engine::step`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// The finished activity.
    pub id: ActivityId,
    /// The caller-supplied tag identifying what this activity meant.
    pub tag: u64,
    /// Virtual time of completion, in seconds.
    pub time: f64,
}

/// Hot per-activity state: everything the step loop reads or writes per
/// event, packed into one 32-byte row (two rows per cache line).
#[derive(Clone, Copy, Debug)]
struct Hot {
    /// Remaining amount in the unit of the current phase, valid as of
    /// `materialized_at`.
    remaining: f64,
    /// Current progress rate; `f64::INFINITY` for unconstrained
    /// (empty-route) flows, which complete at the current instant.
    rate: f64,
    /// Virtual time at which `remaining` was last brought up to date.
    materialized_at: f64,
    /// Index of this activity's entry in the event heap, or [`NO_HEAP`].
    heap_pos: u32,
    /// Kind discriminant and state bits (`KIND_*` / `FLAG_*`).
    flags: u32,
}

/// Bring `remaining` up to date at `now` under the activity's current rate.
fn materialize(h: &mut Hot, now: f64) {
    if now > h.materialized_at {
        if h.rate.is_infinite() {
            h.remaining = 0.0;
        } else if h.rate > 0.0 {
            h.remaining = (h.remaining - h.rate * (now - h.materialized_at)).max(0.0);
        }
    }
    h.materialized_at = now;
}

/// An event-heap entry: a predicted completion (or phase transition).
#[derive(Clone, Copy, Debug)]
struct Ev {
    finish: f64,
    /// Serial id: the tie-break, so simultaneous events fire in add order
    /// (matching the reference engine's scan order).
    serial: u64,
    slot: u32,
}

/// Min-order on `(finish, serial)`; serials are unique, so this is total.
#[inline]
fn ev_lt(a: Ev, b: Ev) -> bool {
    match a.finish.total_cmp(&b.finish) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.serial < b.serial,
    }
}

/// Addressable binary min-heap of predicted completions.
///
/// Each live activity has at most one entry; its position is maintained
/// in the hot row (`heap_pos`), so a rate change relocates the entry in
/// `O(log n)` instead of leaving a stale one behind. Unlike the previous
/// lazily-invalidated heap, size is bounded by the live-activity count —
/// at 1M activities the old design accumulated tens of millions of stale
/// entries.
#[derive(Clone, Debug, Default)]
struct EventHeap {
    v: Vec<Ev>,
}

impl EventHeap {
    fn peek(&self) -> Option<&Ev> {
        self.v.first()
    }

    fn sift_up(&mut self, hot: &mut [Hot], mut i: usize) -> usize {
        while i > 0 {
            let p = (i - 1) / 2;
            if ev_lt(self.v[i], self.v[p]) {
                self.v.swap(i, p);
                hot[self.v[i].slot as usize].heap_pos = i as u32;
                hot[self.v[p].slot as usize].heap_pos = p as u32;
                i = p;
            } else {
                break;
            }
        }
        i
    }

    fn sift_down(&mut self, hot: &mut [Hot], mut i: usize) {
        loop {
            let l = 2 * i + 1;
            if l >= self.v.len() {
                break;
            }
            let r = l + 1;
            let c = if r < self.v.len() && ev_lt(self.v[r], self.v[l]) {
                r
            } else {
                l
            };
            if ev_lt(self.v[c], self.v[i]) {
                self.v.swap(i, c);
                hot[self.v[i].slot as usize].heap_pos = i as u32;
                hot[self.v[c].slot as usize].heap_pos = c as u32;
                i = c;
            } else {
                break;
            }
        }
    }

    /// Insert `e`, or relocate the slot's existing entry to `e`.
    fn upsert(&mut self, hot: &mut [Hot], e: Ev) {
        let pos = hot[e.slot as usize].heap_pos;
        if pos == NO_HEAP {
            let i = self.v.len();
            self.v.push(e);
            hot[e.slot as usize].heap_pos = i as u32;
            self.sift_up(hot, i);
        } else {
            let i = pos as usize;
            self.v[i] = e;
            let j = self.sift_up(hot, i);
            if j == i {
                self.sift_down(hot, i);
            }
        }
    }

    /// Remove the slot's entry, if it has one.
    fn remove(&mut self, hot: &mut [Hot], slot: u32) {
        let pos = hot[slot as usize].heap_pos;
        if pos == NO_HEAP {
            return;
        }
        hot[slot as usize].heap_pos = NO_HEAP;
        let i = pos as usize;
        let last = self.v.pop().expect("non-empty: slot had an entry");
        if i < self.v.len() {
            self.v[i] = last;
            hot[last.slot as usize].heap_pos = i as u32;
            let j = self.sift_up(hot, i);
            if j == i {
                self.sift_down(hot, i);
            }
        }
    }

    /// Pop the minimum entry.
    fn pop_min(&mut self, hot: &mut [Hot]) -> Option<Ev> {
        let min = *self.v.first()?;
        hot[min.slot as usize].heap_pos = NO_HEAP;
        let last = self.v.pop().expect("heap is non-empty");
        if !self.v.is_empty() {
            self.v[0] = last;
            hot[last.slot as usize].heap_pos = 0;
            self.sift_down(hot, 0);
        }
        Some(min)
    }
}

/// Queue (or relocate) the slot's predicted completion, if one is
/// determinable: finished or unconstrained activities complete now;
/// rate-0 activities stay unscheduled — their entry, if any, is removed —
/// until a rate change makes progress possible.
fn schedule(
    hot: &mut [Hot],
    heap: &mut EventHeap,
    serials: &[u64],
    now: f64,
    slot: u32,
    reinserts: &mut u64,
) {
    let h = hot[slot as usize];
    let finish = if h.remaining <= EPS || h.rate.is_infinite() {
        now
    } else if h.rate > 0.0 {
        now + h.remaining / h.rate
    } else {
        heap.remove(hot, slot);
        return;
    };
    if h.flags & FLAG_RESCHED != 0 {
        *reinserts += 1;
    }
    heap.upsert(
        hot,
        Ev {
            finish,
            serial: serials[slot as usize],
            slot,
        },
    );
}

/// Change an activity's rate: materialize progress under the old rate and
/// relocate its queued prediction.
fn set_rate(
    hot: &mut [Hot],
    heap: &mut EventHeap,
    serials: &[u64],
    now: f64,
    slot: u32,
    rate: f64,
    reinserts: &mut u64,
) {
    let h = &mut hot[slot as usize];
    if h.rate == rate {
        return;
    }
    materialize(h, now);
    h.rate = rate;
    h.flags |= FLAG_RESCHED;
    schedule(hot, heap, serials, now, slot, reinserts);
}

/// Deterministic kernel work counters, read via [`Engine::counters`].
///
/// All of these are host-independent measures of simulation effort:
/// identical platforms and workloads produce identical counts on any
/// machine and thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Completions delivered by [`Engine::step`].
    pub events: u64,
    /// Predicted-completion heap updates beyond each activity's first:
    /// every rate change or phase transition relocates the activity's
    /// heap entry to a fresh prediction.
    pub heap_reinserts: u64,
    /// Incremental max-min re-solves: one per touched disk re-share
    /// plus one per candidate frontier solve (expansion iterations
    /// included).
    pub sharing_resolves: u64,
    /// Total links included in committed frontier solves; divided by the
    /// link share of [`KernelCounters::sharing_resolves`] this is the
    /// mean frontier size, the quantity the frontier optimization keeps
    /// small on well-connected platforms.
    pub frontier_links: u64,
    /// Peak bytes allocated to the shared route arena (capacity, not
    /// live length), tracking the storage cost of route metadata.
    pub arena_bytes: u64,
}

impl Drop for Engine {
    /// Flushes this engine's [`KernelCounters`] to the global [`obs`]
    /// recorder (a no-op when none is installed). Clones flush
    /// independently, so counts accumulated before a clone appear once
    /// per surviving copy.
    fn drop(&mut self) {
        if obs::enabled() {
            obs::counter(obs::Counter::KernelEvents, self.events);
            obs::counter(obs::Counter::KernelHeapReinserts, self.heap_reinserts);
            obs::counter(obs::Counter::KernelSharingResolves, self.sharing_resolves);
            obs::counter(obs::Counter::KernelFrontierLinks, self.frontier_links);
            obs::counter(obs::Counter::KernelArenaBytes, self.arena_bytes);
        }
    }
}

/// Flow-level discrete-event simulation engine.
///
/// See the [crate-level docs](crate) for an example and the
/// [module docs](self) for the data structures behind `step`.
#[derive(Clone, Debug)]
pub struct Engine {
    platform: Platform,
    time: f64,
    /// Completions delivered by [`Engine::step`] since construction — a
    /// deterministic measure of how much simulation work this engine
    /// performed, independent of host speed (used by `lodsel` as the
    /// simulation-cost axis of its accuracy×cost trade-off).
    events: u64,
    /// Heap relocations past each activity's first prediction (see
    /// [`KernelCounters::heap_reinserts`]).
    heap_reinserts: u64,
    /// Incremental sharing re-solves (see
    /// [`KernelCounters::sharing_resolves`]).
    sharing_resolves: u64,
    /// Links in committed frontier solves (see
    /// [`KernelCounters::frontier_links`]).
    frontier_links: u64,
    /// Peak route-arena footprint (see [`KernelCounters::arena_bytes`]).
    arena_bytes: u64,
    // --- Structure-of-arrays activity storage, indexed by slot. ---
    /// Hot rows: the only per-activity state the step loop touches.
    hot: Vec<Hot>,
    /// Serial id of the activity occupying each slot.
    serials: Vec<u64>,
    /// Caller-supplied tag of the activity occupying each slot.
    tags: Vec<u64>,
    /// Kind metadata: flows store the arena start index, I/O ops the
    /// disk index.
    m0: Vec<u32>,
    /// Kind metadata: flows store the (deduplicated) arena route length.
    m1: Vec<u32>,
    /// Flows: total transfer bytes, needed at the latency→transfer
    /// transition.
    bytes: Vec<f64>,
    /// Recycled slots (LIFO). Slot reuse is invisible to callers: ids
    /// are serial and never reused.
    free: Vec<u32>,
    /// Next serial id to hand out.
    next_serial: u64,
    /// Number of live slots.
    live: usize,
    // --- Shared route arena. ---
    /// All flow routes, flattened: per-flow segments of link indices,
    /// sorted and deduplicated. Dead segments are reclaimed by
    /// compaction once they outnumber live ones.
    routes: Vec<u32>,
    /// Total length of live segments in `routes`.
    routes_live: usize,
    heap: EventHeap,
    /// Completions drained at the current instant, awaiting delivery.
    ready: VecDeque<Completion>,
    /// Slots of Active-phase flows registered on each link (latency-phase
    /// flows consume no bandwidth and are not listed).
    link_flows: Vec<Vec<u32>>,
    /// Slots of pending I/O ops per disk, in FIFO (insertion) order.
    disk_ops: Vec<Vec<u32>>,
    /// Links/disks whose sharing changed since the last flush.
    touched_links: Vec<usize>,
    link_touched: Vec<bool>,
    touched_disks: Vec<usize>,
    disk_touched: Vec<bool>,
    /// Reusable max-min solver buffers.
    ws: Workspace,
    /// Reusable frontier-expansion state (change-queue, membership masks,
    /// per-link flow counts).
    frontier: Frontier,
}

impl Engine {
    /// Create an engine over `platform`, at virtual time 0.
    pub fn new(platform: Platform) -> Self {
        let nl = platform.num_links();
        let nd = platform.num_disks();
        Self {
            platform,
            time: 0.0,
            events: 0,
            heap_reinserts: 0,
            sharing_resolves: 0,
            frontier_links: 0,
            arena_bytes: 0,
            hot: Vec::new(),
            serials: Vec::new(),
            tags: Vec::new(),
            m0: Vec::new(),
            m1: Vec::new(),
            bytes: Vec::new(),
            free: Vec::new(),
            next_serial: 0,
            live: 0,
            routes: Vec::new(),
            routes_live: 0,
            heap: EventHeap::default(),
            ready: VecDeque::new(),
            link_flows: vec![Vec::new(); nl],
            disk_ops: vec![Vec::new(); nd],
            touched_links: Vec::new(),
            link_touched: vec![false; nl],
            touched_disks: Vec::new(),
            disk_touched: vec![false; nd],
            ws: Workspace::new(),
            frontier: Frontier::new(),
        }
    }

    /// Current virtual time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completions delivered by [`Engine::step`] so far: a deterministic,
    /// host-independent count of the simulation work performed.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Deterministic kernel work counters accumulated since
    /// construction. These are plain field increments on the hot path
    /// (no atomics); they are additionally flushed to the global
    /// [`obs`] recorder — when one is installed — when the engine
    /// drops.
    pub fn counters(&self) -> KernelCounters {
        KernelCounters {
            events: self.events,
            heap_reinserts: self.heap_reinserts,
            sharing_resolves: self.sharing_resolves,
            frontier_links: self.frontier_links,
            arena_bytes: self.arena_bytes,
        }
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of in-flight activities (live plus drained-but-undelivered
    /// completions). O(1): maintained counters, no slab scan.
    pub fn active_count(&self) -> usize {
        self.live + self.ready.len()
    }

    /// Copy `route` into the arena as a sorted, deduplicated segment,
    /// compacting first when dead segments dominate. Returns
    /// `(start, len)`.
    fn arena_push(&mut self, route: &[LinkId]) -> (u32, u32) {
        if self.routes.len() >= 1024 && self.routes_live * 2 < self.routes.len() {
            self.compact_arena();
        }
        let start = self.routes.len();
        self.routes.extend(route.iter().map(|l| l.index() as u32));
        self.routes[start..].sort_unstable();
        let mut w = start;
        for r in start..self.routes.len() {
            if w == start || self.routes[r] != self.routes[w - 1] {
                self.routes[w] = self.routes[r];
                w += 1;
            }
        }
        self.routes.truncate(w);
        let len = w - start;
        self.routes_live += len;
        self.arena_bytes = self
            .arena_bytes
            .max((self.routes.capacity() * std::mem::size_of::<u32>()) as u64);
        (start as u32, len as u32)
    }

    /// Rewrite the arena with only live segments, updating each flow's
    /// start index. Runs when the arena is more than half dead, so its
    /// O(slots + live-routes) cost is amortized against the adds that
    /// created the garbage.
    fn compact_arena(&mut self) {
        let mut fresh = Vec::with_capacity(self.routes_live.max(64));
        for si in 0..self.hot.len() {
            let flags = self.hot[si].flags;
            if flags & FLAG_LIVE != 0 && flags & KIND_MASK == KIND_FLOW {
                let start = self.m0[si] as usize;
                let len = self.m1[si] as usize;
                self.m0[si] = fresh.len() as u32;
                fresh.extend_from_slice(&self.routes[start..start + len]);
            }
        }
        self.routes = fresh;
    }

    /// Add an activity; `tag` is echoed back in its [`Completion`].
    ///
    /// Rate recomputation is deferred until the next [`Engine::step`] /
    /// [`Engine::peek_time`], so consecutive adds at one instant cost a
    /// single incremental re-solve.
    pub fn add_activity(&mut self, kind: ActivityKind, tag: u64) -> ActivityId {
        let now = self.time;
        let serial = self.next_serial;
        self.next_serial += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.hot.len() as u32;
                self.hot.push(Hot {
                    remaining: 0.0,
                    rate: 0.0,
                    materialized_at: 0.0,
                    heap_pos: NO_HEAP,
                    flags: 0,
                });
                self.serials.push(0);
                self.tags.push(0);
                self.m0.push(0);
                self.m1.push(0);
                self.bytes.push(0.0);
                s
            }
        };
        let si = slot as usize;
        self.serials[si] = serial;
        self.tags[si] = tag;

        let mut exact_deadline = None;
        let (flags, remaining, rate) = match &kind {
            ActivityKind::Compute { work, rate } => (KIND_COMPUTE, *work, *rate),
            ActivityKind::Io { disk, bytes } => {
                let d = disk.index();
                self.m0[si] = d as u32;
                self.disk_ops[d].push(slot);
                if !self.disk_touched[d] {
                    self.disk_touched[d] = true;
                    self.touched_disks.push(d);
                }
                (KIND_IO, *bytes, 0.0)
            }
            ActivityKind::Flow { route, bytes } => {
                // Latency is summed over the route as given (duplicates
                // charge twice); sharing counts each link once, so the
                // arena keeps the deduplicated form.
                let lat = self.platform.route_latency(route);
                let (start, len) = self.arena_push(route);
                self.m0[si] = start;
                self.m1[si] = len;
                self.bytes[si] = *bytes;
                if lat > 0.0 {
                    (KIND_FLOW | FLAG_LATENCY, lat, 1.0)
                } else if len == 0 {
                    // Unconstrained: completes at the current instant.
                    (KIND_FLOW, *bytes, f64::INFINITY)
                } else {
                    for k in start as usize..(start + len) as usize {
                        let l = self.routes[k] as usize;
                        self.link_flows[l].push(slot);
                        if !self.link_touched[l] {
                            self.link_touched[l] = true;
                            self.touched_links.push(l);
                        }
                    }
                    (KIND_FLOW, *bytes, 0.0)
                }
            }
            ActivityKind::Timer { delay } => (KIND_TIMER, *delay, 1.0),
            ActivityKind::TimerAt { at } => {
                // An absolute timer fires at exactly `at`, not
                // `now + (at - now)` (which differs in the last ulps).
                if *at > now {
                    exact_deadline = Some(*at);
                }
                (KIND_TIMER_AT, (*at - now).max(0.0), 1.0)
            }
        };
        self.hot[si] = Hot {
            remaining,
            rate,
            materialized_at: now,
            heap_pos: NO_HEAP,
            flags: flags | FLAG_LIVE,
        };
        self.live += 1;
        match exact_deadline {
            Some(at) => self.heap.upsert(
                &mut self.hot,
                Ev {
                    finish: at,
                    serial,
                    slot,
                },
            ),
            None => schedule(
                &mut self.hot,
                &mut self.heap,
                &self.serials,
                now,
                slot,
                &mut self.heap_reinserts,
            ),
        }
        ActivityId(serial)
    }

    /// Add a batch of activities released at the same instant, e.g. a
    /// scheduler dispatching many ready tasks at once. Equivalent to
    /// calling [`Engine::add_activity`] in order — rates are recomputed
    /// once, at the next event — but states the intent and returns all ids.
    pub fn add_activities(
        &mut self,
        batch: impl IntoIterator<Item = (ActivityKind, u64)>,
    ) -> Vec<ActivityId> {
        batch
            .into_iter()
            .map(|(kind, tag)| self.add_activity(kind, tag))
            .collect()
    }

    /// Re-share every touched disk and run a frontier-limited re-solve
    /// around the touched links.
    fn flush_touched(&mut self) {
        if self.touched_disks.is_empty() && self.touched_links.is_empty() {
            return;
        }
        let now = self.time;
        if !self.touched_disks.is_empty() {
            // Disks: each disk is its own sharing domain. The oldest
            // `max_concurrency` ops split the bandwidth; younger ops wait.
            let Engine {
                platform,
                hot,
                serials,
                heap,
                heap_reinserts,
                sharing_resolves,
                disk_ops,
                touched_disks,
                disk_touched,
                ..
            } = self;
            for &d in touched_disks.iter() {
                disk_touched[d] = false;
                let disk = platform.disk(DiskId(d));
                let ops = &disk_ops[d];
                let served = ops.len().min(disk.max_concurrency as usize);
                let share = if served > 0 {
                    disk.bandwidth / served as f64
                } else {
                    0.0
                };
                for (i, &s) in ops.iter().enumerate() {
                    set_rate(
                        hot,
                        heap,
                        serials,
                        now,
                        s,
                        if i < served { share } else { 0.0 },
                        heap_reinserts,
                    );
                }
                *sharing_resolves += 1;
            }
            touched_disks.clear();
        }
        if !self.touched_links.is_empty() {
            self.solve_links(now);
        }
    }

    /// Frontier-limited incremental max-min re-solve.
    ///
    /// Seeds the dirty set *D* with the touched links, collects the flows
    /// *F* crossing them and the boundary links *B* those flows also
    /// cross, and solves the candidate problem over *D ∪ B* where each
    /// boundary link's capacity is its *residual* (full capacity minus
    /// the frozen rates of flows outside *F*). A boundary link is
    /// promoted to dirty — and the solve repeated over the grown frontier
    /// — iff it has outside flows and either was binding in the candidate
    /// or carries an *F*-flow whose rate changed; in both cases its
    /// frozen outside rates are suspect. On commit, the *F*-rates equal a
    /// full-component solve (see [`Frontier`]); flows outside *F* keep
    /// their rates without being visited, which is what makes events
    /// local on platforms whose flow–link graph is one giant component.
    ///
    /// Touched links that share no flow are solved as *separate* problems
    /// rather than one merged one: progressive filling is superlinear in
    /// problem size, so a batch release touching every link (e.g. the
    /// initial workload) must decompose into its natural clusters. Seeds
    /// stay marked in `link_touched` until absorbed; a pending seed
    /// reached through a shared flow is folded into the active problem
    /// (the two clusters genuinely interact), everything else starts its
    /// own problem in touch order.
    fn solve_links(&mut self, now: f64) {
        let Engine {
            platform,
            hot,
            serials,
            m0,
            m1,
            routes,
            heap,
            heap_reinserts,
            sharing_resolves,
            frontier_links,
            link_flows,
            touched_links,
            link_touched,
            ws,
            frontier: fr,
            ..
        } = self;
        fr.ensure_links(platform.num_links());
        fr.ensure_slots(hot.len());
        // `link_touched[l]` now means "seed not yet absorbed by a problem".
        for &seed in touched_links.iter() {
            if !link_touched[seed] {
                continue; // absorbed by an earlier problem
            }
            link_touched[seed] = false;
            fr.in_dirty[seed] = true;
            fr.dirty.push(seed);

            let mut d_cursor = 0usize;
            let mut f_cursor = 0usize;
            'expand: loop {
                // Pull the flows of newly-dirty links into F.
                while d_cursor < fr.dirty.len() {
                    let l = fr.dirty[d_cursor];
                    d_cursor += 1;
                    for &s in &link_flows[l] {
                        if !fr.in_flows[s as usize] {
                            fr.in_flows[s as usize] = true;
                            fr.flows.push(s);
                        }
                    }
                }
                // Pull the other links of newly-added flows into B,
                // counting F-crossings per link (arena segments are
                // deduplicated, so the count compares directly with the
                // registry length). A pending seed reached here belongs
                // to this cluster: fold it straight into D.
                while f_cursor < fr.flows.len() {
                    let s = fr.flows[f_cursor] as usize;
                    f_cursor += 1;
                    let start = m0[s] as usize;
                    for &lu in &routes[start..start + m1[s] as usize] {
                        let l = lu as usize;
                        fr.f_count[l] += 1;
                        if fr.in_dirty[l] {
                            continue;
                        }
                        if link_touched[l] {
                            link_touched[l] = false;
                            fr.in_dirty[l] = true;
                            fr.dirty.push(l);
                        } else if !fr.in_boundary[l] {
                            fr.in_boundary[l] = true;
                            fr.boundary.push(l);
                        }
                    }
                }
                if d_cursor < fr.dirty.len() {
                    continue; // folded-in seeds bring new flows
                }
                if fr.flows.is_empty() {
                    // A touched link with no remaining flows: nothing to
                    // share, move on to the next seed.
                    fr.reset();
                    break 'expand;
                }

                // Candidate problem: links ascending, flows in serial order —
                // the canonical order a full solve would use, so freeze
                // sequences (and hence float results) are reproducible.
                fr.links_sorted.clear();
                fr.links_sorted.extend_from_slice(&fr.dirty);
                for &l in &fr.boundary {
                    if !fr.in_dirty[l] {
                        fr.links_sorted.push(l);
                    }
                }
                fr.links_sorted.sort_unstable();
                fr.flows_sorted.clear();
                fr.flows_sorted.extend_from_slice(&fr.flows);
                fr.flows_sorted
                    .sort_unstable_by_key(|&s| serials[s as usize]);

                ws.clear();
                for &l in &fr.links_sorted {
                    let cap = platform.link(LinkId(l)).bandwidth;
                    let outside = link_flows[l].len() - fr.f_count[l] as usize;
                    let c = if outside == 0 {
                        cap
                    } else {
                        // Residual capacity: subtract outside flows' frozen
                        // rates in serial order, so the sum never depends on
                        // registry (slot) order.
                        fr.outside.clear();
                        for &s in &link_flows[l] {
                            if !fr.in_flows[s as usize] {
                                fr.outside.push((serials[s as usize], hot[s as usize].rate));
                            }
                        }
                        fr.outside.sort_unstable_by_key(|&(ser, _)| ser);
                        let mut c = cap;
                        for &(_, r) in fr.outside.iter() {
                            c -= r;
                        }
                        c
                    };
                    fr.local[l] = ws.push_capacity(c);
                }
                for &s in &fr.flows_sorted {
                    let start = m0[s as usize] as usize;
                    ws.push_route(
                        routes[start..start + m1[s as usize] as usize]
                            .iter()
                            .map(|&lu| fr.local[lu as usize]),
                    );
                }
                ws.solve();
                *sharing_resolves += 1;
                let rates = ws.rates();

                // Expansion check: which boundary links invalidate their
                // residual approximation?
                for (i, &s) in fr.flows_sorted.iter().enumerate() {
                    fr.changed[s as usize] = rates[i] != hot[s as usize].rate;
                }
                let mut expanded = false;
                for bi in 0..fr.boundary.len() {
                    let l = fr.boundary[bi];
                    if fr.in_dirty[l] {
                        continue;
                    }
                    if link_flows[l].len() == fr.f_count[l] as usize {
                        // No outside flows: the full capacity was used, the
                        // candidate is exact here.
                        continue;
                    }
                    let promote = ws.was_binding(fr.local[l])
                        || link_flows[l]
                            .iter()
                            .any(|&s| fr.in_flows[s as usize] && fr.changed[s as usize]);
                    if promote {
                        fr.in_dirty[l] = true;
                        fr.dirty.push(l);
                        expanded = true;
                    }
                }
                if !expanded {
                    *frontier_links += fr.links_sorted.len() as u64;
                    for (i, &s) in fr.flows_sorted.iter().enumerate() {
                        set_rate(hot, heap, serials, now, s, rates[i], heap_reinserts);
                    }
                    fr.reset();
                    break 'expand;
                }
            }
        }
        touched_links.clear();
    }

    /// Can the pending flush change this entry's completion? `true` when
    /// provably not: only Active-phase flows and disk ops have
    /// flush-mutable rates, and even those are pinned once their
    /// effective remaining is zero (they complete *now* under any rate).
    fn drain_safe(&self, slot: u32) -> bool {
        let h = &self.hot[slot as usize];
        let kind = h.flags & KIND_MASK;
        let shared = (kind == KIND_FLOW && h.flags & FLAG_LATENCY == 0) || kind == KIND_IO;
        if !shared || h.rate.is_infinite() {
            return true;
        }
        let rem = if self.time > h.materialized_at && h.rate > 0.0 {
            (h.remaining - h.rate * (self.time - h.materialized_at)).max(0.0)
        } else {
            h.remaining
        };
        rem <= EPS
    }

    /// Handle a due heap entry: either an internal latency→transfer
    /// transition or a completion queued for delivery.
    fn dispatch(&mut self, slot: u32) {
        let si = slot as usize;
        let now = self.time;
        if self.hot[si].flags & FLAG_LATENCY != 0 {
            // Latency paid: start the transfer phase. The rate is
            // assigned by the next flush.
            let h = &mut self.hot[si];
            h.flags = (h.flags & !FLAG_LATENCY) | FLAG_RESCHED;
            h.remaining = self.bytes[si];
            h.materialized_at = now;
            h.rate = 0.0;
            schedule(
                &mut self.hot,
                &mut self.heap,
                &self.serials,
                now,
                slot,
                &mut self.heap_reinserts,
            ); // queues only if bytes ~ 0
            let start = self.m0[si] as usize;
            let len = self.m1[si] as usize;
            for k in start..start + len {
                let l = self.routes[k] as usize;
                self.link_flows[l].push(slot);
                if !self.link_touched[l] {
                    self.link_touched[l] = true;
                    self.touched_links.push(l);
                }
            }
            return;
        }

        // A completion: unregister from sharing domains and queue it.
        match self.hot[si].flags & KIND_MASK {
            KIND_FLOW => {
                let start = self.m0[si] as usize;
                let len = self.m1[si] as usize;
                for k in start..start + len {
                    let l = self.routes[k] as usize;
                    let lf = &mut self.link_flows[l];
                    if let Some(pos) = lf.iter().position(|&s| s == slot) {
                        lf.swap_remove(pos);
                    }
                    if !self.link_touched[l] {
                        self.link_touched[l] = true;
                        self.touched_links.push(l);
                    }
                }
                self.routes_live -= len;
            }
            KIND_IO => {
                let d = self.m0[si] as usize;
                if let Some(pos) = self.disk_ops[d].iter().position(|&s| s == slot) {
                    self.disk_ops[d].remove(pos); // preserve FIFO order
                }
                if !self.disk_touched[d] {
                    self.disk_touched[d] = true;
                    self.touched_disks.push(d);
                }
            }
            _ => {}
        }
        self.hot[si].flags &= !FLAG_LIVE;
        self.free.push(slot);
        self.live -= 1;
        self.ready.push_back(Completion {
            id: ActivityId(self.serials[si]),
            tag: self.tags[si],
            time: now,
        });
    }

    /// Virtual time of the next internal event (completion or phase
    /// transition) without advancing to it. `None` when idle; may also be
    /// `None` if every in-flight activity is stalled at rate 0.
    pub fn peek_time(&mut self) -> Option<f64> {
        if !self.ready.is_empty() {
            return Some(self.time);
        }
        if self.live == 0 {
            return None;
        }
        self.flush_touched();
        self.heap.peek().map(|e| e.finish.max(self.time))
    }

    /// Advance to the next completion and return it, or `None` when no
    /// activities remain. Internal phase transitions (a flow finishing its
    /// latency and starting to consume bandwidth) are handled
    /// transparently. All completions sharing one timestamp are drained
    /// in a single batch (one sharing re-solve), then delivered one per
    /// call in serial order.
    pub fn step(&mut self) -> Option<Completion> {
        if let Some(c) = self.ready.pop_front() {
            self.events += 1;
            return Some(c);
        }
        loop {
            if self.live == 0 {
                return None;
            }
            self.flush_touched();
            let Some(ev) = self.heap.pop_min(&mut self.hot) else {
                panic!(
                    "deadlock: every in-flight activity has rate 0 (time {})",
                    self.time
                )
            };
            self.time = self.time.max(ev.finish);
            self.dispatch(ev.slot);
            // Drain everything else due at this instant. Entries a
            // pending re-solve could still move force a flush first;
            // after it, predictions are current and the peek decides.
            while let Some(&next) = self.heap.peek() {
                if next.finish > self.time {
                    break;
                }
                if (!self.touched_links.is_empty() || !self.touched_disks.is_empty())
                    && !self.drain_safe(next.slot)
                {
                    self.flush_touched();
                    continue;
                }
                let ev = self.heap.pop_min(&mut self.hot).expect("peeked entry");
                self.dispatch(ev.slot);
            }
            if let Some(c) = self.ready.pop_front() {
                self.events += 1;
                return Some(c);
            }
            // Only phase transitions fired; flush and pop again.
        }
    }

    /// Run until no activities remain, returning every completion in order.
    pub fn run_to_completion(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.step() {
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_flow_latency_plus_transfer() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.5);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 200.0), 1);
        let c = e.step().unwrap();
        assert!(close(c.time, 0.5 + 2.0), "time {}", c.time);
        assert!(e.step().is_none());
    }

    #[test]
    fn two_equal_flows_share_bandwidth() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        // Each gets 50 B/s: both finish at t=2.
        assert!(close(c1.time, 2.0));
        assert!(close(c2.time, 2.0));
    }

    #[test]
    fn short_flow_completion_speeds_up_long_flow() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 50.0), 1); // short
        e.add_activity(ActivityKind::flow(vec![l], 150.0), 2); // long
        let c1 = e.step().unwrap();
        assert_eq!(c1.tag, 1);
        assert!(close(c1.time, 1.0)); // 50 bytes at 50 B/s
        let c2 = e.step().unwrap();
        assert_eq!(c2.tag, 2);
        // Long flow: 50 bytes at 50 B/s (t in [0,1]) + 100 bytes at 100 B/s.
        assert!(close(c2.time, 2.0), "time {}", c2.time);
    }

    #[test]
    fn compute_activity_runs_at_given_rate() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::compute(4.0, 10.0), 9);
        let c = e.step().unwrap();
        assert!(close(c.time, 2.5));
        assert_eq!(c.tag, 9);
    }

    #[test]
    fn timer_fires_at_absolute_delay() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(3.0), 5);
        let c = e.step().unwrap();
        assert!(close(c.time, 3.0));
    }

    #[test]
    fn timer_added_later_fires_relative_to_add_time() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        assert!(close(e.step().unwrap().time, 1.0));
        e.add_activity(ActivityKind::timer(2.0), 2);
        assert!(close(e.step().unwrap().time, 3.0));
    }

    #[test]
    fn timer_at_fires_at_exact_absolute_time() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(0.1), 1);
        assert!(close(e.step().unwrap().time, 0.1));
        // Relative arithmetic (0.1 + (0.3 - 0.1)) would land one ulp off;
        // the absolute deadline must be hit exactly.
        e.add_activity(ActivityKind::timer_at(0.3), 2);
        assert_eq!(e.step().unwrap().time, 0.3);
    }

    #[test]
    fn timer_at_in_the_past_fires_immediately() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(2.0), 1);
        assert!(close(e.step().unwrap().time, 2.0));
        e.add_activity(ActivityKind::timer_at(1.0), 2);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert_eq!(c.time, 2.0);
    }

    #[test]
    fn disk_concurrency_limit_queues_ops() {
        let mut p = Platform::new();
        let d = p.add_disk(100.0, 1); // one op at a time
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::io(d, 100.0), 1);
        e.add_activity(ActivityKind::io(d, 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert_eq!((c1.tag, c2.tag), (1, 2));
        assert!(close(c1.time, 1.0));
        assert!(close(c2.time, 2.0), "serialized, not shared: {}", c2.time);
    }

    #[test]
    fn disk_shares_bandwidth_up_to_concurrency() {
        let mut p = Platform::new();
        let d = p.add_disk(100.0, 2);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::io(d, 100.0), 1);
        e.add_activity(ActivityKind::io(d, 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert!(close(c1.time, 2.0));
        assert!(close(c2.time, 2.0));
    }

    #[test]
    fn zero_byte_flow_costs_latency_only() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.25);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 0.0), 1);
        assert!(close(e.step().unwrap().time, 0.25));
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::compute(1.0, 0.0), 1);
        let c = e.step().unwrap();
        assert_eq!(c.time, 0.0);
    }

    #[test]
    fn empty_route_flow_is_instant_after_no_latency() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::flow(vec![], 1e9), 1);
        let c = e.step().unwrap();
        assert!(c.time < 1e-6);
    }

    #[test]
    fn empty_route_flow_added_later_completes_at_current_instant() {
        // Regression for the old `f64::MAX` rate sentinel: an unconstrained
        // flow must complete at exactly the current virtual time, with no
        // sentinel arithmetic skewing it (1e300 bytes / f64::MAX would have
        // taken ~5.6e-9 simulated seconds) or perturbing other activities.
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        assert_eq!(e.step().unwrap().time, 1.0);
        e.add_activity(ActivityKind::flow(vec![], 1e300), 2);
        e.add_activity(ActivityKind::timer(1.0), 3);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert_eq!(c.time, 1.0, "unconstrained flow completes at add time");
        let c = e.step().unwrap();
        assert_eq!(c.tag, 3);
        assert_eq!(c.time, 2.0, "follow-up timer unperturbed");
    }

    #[test]
    fn multi_link_route_pays_summed_latency_and_bottleneck() {
        let mut p = Platform::new();
        let a = p.add_link(100.0, 0.1);
        let b = p.add_link(50.0, 0.2);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![a, b], 100.0), 1);
        let c = e.step().unwrap();
        // 0.3 latency + 100/50 transfer.
        assert!(close(c.time, 2.3), "time {}", c.time);
    }

    #[test]
    fn duplicate_route_links_share_once_but_charge_latency_twice() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.1);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l, l], 100.0), 1);
        let c = e.step().unwrap();
        // Latency 0.2 (per occurrence) + 100/100 transfer (link counted
        // once for sharing).
        assert!(close(c.time, 1.2), "time {}", c.time);
    }

    #[test]
    fn interleaved_kinds_complete_in_time_order() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let d = p.add_disk(100.0, 4);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::compute(10.0, 15.0), 1); // t=1.5
        e.add_activity(ActivityKind::flow(vec![l], 50.0), 2); // t=0.5
        e.add_activity(ActivityKind::io(d, 100.0), 3); // t=1.0
        e.add_activity(ActivityKind::timer(0.25), 4); // t=0.25
        let order: Vec<u64> = e.run_to_completion().iter().map(|c| c.tag).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn run_to_completion_drains_everything() {
        let mut e = Engine::new(Platform::new());
        for i in 0..10 {
            e.add_activity(ActivityKind::timer(i as f64), i);
        }
        assert_eq!(e.run_to_completion().len(), 10);
        assert_eq!(e.active_count(), 0);
        assert_eq!(e.events_processed(), 10);
    }

    #[test]
    fn events_processed_counts_completions_not_phase_transitions() {
        // A flow with latency goes through an internal latency→transfer
        // transition; only the final completion counts as an event.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.5);
        let mut e = Engine::new(p);
        assert_eq!(e.events_processed(), 0);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 1);
        e.step().unwrap();
        assert_eq!(e.events_processed(), 1);
    }

    #[test]
    fn counters_track_reinserts_and_sharing_resolves() {
        // Two flows sharing one link: the arrivals re-share the link
        // (frontier re-solve) and relocate the flows' predictions. Both
        // completions land at one instant, so the same-instant batch
        // drains them under a single invalidation — exactly one resolve,
        // where per-event flushing would have paid two.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        e.run_to_completion();
        let c = e.counters();
        assert_eq!(c.events, 2);
        assert!(c.heap_reinserts >= 1, "counters: {c:?}");
        assert!(c.sharing_resolves >= 1, "counters: {c:?}");
        assert!(c.frontier_links >= 1, "counters: {c:?}");
        assert!(c.arena_bytes >= 8, "counters: {c:?}");

        // A lone timer needs neither re-inserts nor sharing nor routes.
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        e.run_to_completion();
        let c = e.counters();
        assert_eq!(
            c,
            KernelCounters {
                events: 1,
                heap_reinserts: 0,
                sharing_resolves: 0,
                frontier_links: 0,
                arena_bytes: 0,
            }
        );
    }

    #[test]
    fn latency_phase_does_not_consume_bandwidth() {
        // Flow A has huge latency; flow B should get the full link until
        // A's latency elapses.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let l_lat = p.add_link(1e12, 10.0); // pure-latency hop for A
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l_lat, l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert!(close(c.time, 1.0), "B at full bandwidth: {}", c.time);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 1);
        assert!(
            close(c.time, 11.0),
            "A: 10 latency + 1 transfer: {}",
            c.time
        );
    }

    #[test]
    fn simultaneous_completions_all_reported() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        e.add_activity(ActivityKind::timer(1.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert!(close(c1.time, 1.0) && close(c2.time, 1.0));
        assert_ne!(c1.tag, c2.tag);
    }

    #[test]
    fn simultaneous_completions_deliver_in_add_order() {
        // A same-instant burst (timers, computes, flows reaching zero at
        // one timestamp) drains as one batch but must still be delivered
        // in serial (add) order — the reference engine's tie-break.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 0); // t=1 alone? no: shares
        e.add_activity(ActivityKind::timer(1.0), 1);
        e.add_activity(ActivityKind::compute(1.0, 1.0), 2);
        // Flow shares nothing (only flow on l): rate 100, finishes t=1.
        let order: Vec<u64> = e.run_to_completion().iter().map(|c| c.tag).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn time_is_monotone_nondecreasing() {
        let mut p = Platform::new();
        let l = p.add_link(10.0, 0.01);
        let d = p.add_disk(5.0, 2);
        let mut e = Engine::new(p);
        for i in 0..20 {
            match i % 3 {
                0 => e.add_activity(ActivityKind::flow(vec![l], (i * 7 % 13) as f64), i),
                1 => e.add_activity(ActivityKind::io(d, (i * 5 % 11) as f64), i),
                _ => e.add_activity(ActivityKind::compute(2.0, (i % 9) as f64), i),
            };
        }
        let mut last = 0.0;
        while let Some(c) = e.step() {
            assert!(c.time >= last - 1e-12);
            last = c.time;
        }
    }

    #[test]
    fn add_activities_batches_one_release() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        let ids = e.add_activities(vec![
            (ActivityKind::flow(vec![l], 100.0), 1),
            (ActivityKind::flow(vec![l], 100.0), 2),
            (ActivityKind::timer(0.5), 3),
        ]);
        assert_eq!(ids.len(), 3);
        assert_eq!(e.active_count(), 3);
        let order: Vec<(u64, f64)> = e
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.time))
            .collect();
        assert_eq!(order[0].0, 3);
        assert!(close(order[0].1, 0.5));
        // Both flows share the link throughout: each finishes at t=2.
        assert!(close(order[1].1, 2.0) && close(order[2].1, 2.0));
    }

    #[test]
    fn peek_time_previews_next_event_without_advancing() {
        let mut e = Engine::new(Platform::new());
        assert_eq!(e.peek_time(), None);
        e.add_activity(ActivityKind::timer(2.0), 1);
        e.add_activity(ActivityKind::timer(1.0), 2);
        assert!(close(e.peek_time().unwrap(), 1.0));
        assert_eq!(e.time(), 0.0, "peek must not advance time");
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert!(close(e.peek_time().unwrap(), 2.0));
        e.step();
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn disjoint_components_do_not_disturb_each_other() {
        // Two independent link pairs: completing a flow on one component
        // must leave the other component's predicted times untouched.
        let mut p = Platform::new();
        let a = p.add_link(100.0, 0.0);
        let b = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![a], 50.0), 1);
        e.add_activity(ActivityKind::flow(vec![a], 150.0), 2);
        e.add_activity(ActivityKind::flow(vec![b], 100.0), 3);
        e.add_activity(ActivityKind::flow(vec![b], 100.0), 4);
        let order: Vec<(u64, f64)> = e
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.time))
            .collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0].0, 1);
        assert!(close(order[0].1, 1.0));
        // Flows 3 and 4 split link b 50/50 the whole way: t=2 each,
        // unaffected by the re-solve of link a at t=1.
        for &(tag, t) in &order[1..] {
            assert!(close(t, 2.0), "tag {tag} at {t}");
        }
    }

    #[test]
    fn frontier_stops_at_backbone_bottleneck() {
        // Star-over-backbone: cross flows from every leaf link share a
        // low-capacity backbone, so leaf-local churn never changes a
        // cross flow's rate. Results must match physics regardless.
        let mut p = Platform::new();
        let bb = p.add_link(2.0, 0.0); // cross flows bottleneck here at 1.0
        let leaf_a = p.add_link(100.0, 0.0);
        let leaf_b = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![bb, leaf_a], 10.0), 1); // rate 1
        e.add_activity(ActivityKind::flow(vec![bb, leaf_b], 10.0), 2); // rate 1
        e.add_activity(ActivityKind::flow(vec![leaf_a], 99.0), 3); // rate 99
        let order: Vec<(u64, f64)> = e
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.time))
            .collect();
        assert_eq!(order[0].0, 3);
        assert!(close(order[0].1, 1.0), "local flow: {}", order[0].1);
        // Cross flows: 1 B/s throughout (backbone-bound), 10s each. The
        // local completion at t=1 must not have perturbed them.
        assert!(close(order[1].1, 10.0), "cross: {}", order[1].1);
        assert!(close(order[2].1, 10.0), "cross: {}", order[2].1);
    }

    #[test]
    fn frontier_expands_when_boundary_becomes_binding() {
        // l1 (cap 2): flows f and g. l2 (cap 10): flows f and o.
        // Initially f=1, g=1 (l1 binding), o=9. When g completes, f's
        // true rate rises to 2, so o must drop to 8 — the re-solve
        // touching only l1 must expand across l2 to fix o.
        let mut p = Platform::new();
        let l1 = p.add_link(2.0, 0.0);
        let l2 = p.add_link(10.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l1, l2], 20.0), 1); // f
        e.add_activity(ActivityKind::flow(vec![l1], 1.0), 2); // g: done t=1
        e.add_activity(ActivityKind::flow(vec![l2], 90.0), 3); // o
        let order: Vec<(u64, f64)> = e
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.time))
            .collect();
        assert_eq!(order[0], (2, order[0].1));
        assert!(close(order[0].1, 1.0), "g: {}", order[0].1);
        // f: 1 B/s for 1s, then 2 B/s for 19/2 s => t = 10.5.
        let f = order.iter().find(|&&(tag, _)| tag == 1).unwrap();
        assert!(close(f.1, 10.5), "f: {}", f.1);
        // o: 9 B/s for 1s (81 left), 8 B/s until f is done at 10.5
        // (76 more, 5 left), then the full 10 B/s => t = 11.0.
        let o = order.iter().find(|&&(tag, _)| tag == 3).unwrap();
        assert!(close(o.1, 11.0), "o: {}", o.1);
    }

    #[test]
    fn free_list_recycles_slots_but_never_ids() {
        let mut e = Engine::new(Platform::new());
        let a = e.add_activity(ActivityKind::timer(1.0), 1);
        let b = e.add_activity(ActivityKind::timer(1.0), 2);
        e.run_to_completion();
        assert_eq!(e.hot.len(), 2, "two slots allocated");
        // Both slots are free; new adds must reuse them, not grow.
        let c = e.add_activity(ActivityKind::timer(1.0), 3);
        let d = e.add_activity(ActivityKind::timer(1.0), 4);
        assert_eq!(e.hot.len(), 2, "slots recycled, no growth");
        let ids = [a, b, c, d];
        for (i, x) in ids.iter().enumerate() {
            for y in &ids[i + 1..] {
                assert_ne!(x, y, "ids must never alias");
            }
        }
        assert!(c > b && d > c, "ids are serial");
        let done = e.run_to_completion();
        let got: Vec<ActivityId> = done.iter().map(|c| c.id).collect();
        assert_eq!(got, vec![c, d], "completions carry the serial ids");
    }

    #[test]
    fn live_ids_never_aliased_while_slots_recycle() {
        // Churn adds/completions so slots recycle heavily; every live id
        // must stay distinct from every other live id at all times.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        let mut live: std::collections::HashSet<ActivityId> = std::collections::HashSet::new();
        let mut next_tag = 0u64;
        for round in 0..50 {
            for _ in 0..3 {
                let id = e.add_activity(
                    ActivityKind::flow(vec![l], 10.0 + (next_tag % 7) as f64),
                    next_tag,
                );
                assert!(live.insert(id), "id {id:?} aliased a live activity");
                next_tag += 1;
            }
            // Complete a couple to free slots for the next round.
            for _ in 0..2 {
                if let Some(c) = e.step() {
                    assert!(live.remove(&c.id), "completion for unknown id");
                }
            }
            assert!(e.hot.len() <= 3 * (round + 1), "slab growth is bounded");
        }
        while let Some(c) = e.step() {
            assert!(live.remove(&c.id));
        }
        assert!(live.is_empty());
    }

    #[test]
    fn arena_grows_then_compacts_under_churn() {
        let mut p = Platform::new();
        let links: Vec<_> = (0..8).map(|_| p.add_link(1e6, 0.0)).collect();
        let mut e = Engine::new(p);
        // Many short-lived 4-link flows: dead segments accumulate, so the
        // arena must compact rather than grow linearly with total adds.
        for i in 0..2000usize {
            let route = vec![
                links[i % 8],
                links[(i + 1) % 8],
                links[(i + 2) % 8],
                links[(i + 3) % 8],
            ];
            e.add_activity(ActivityKind::flow(route, 100.0), i as u64);
            if i % 2 == 1 {
                // Keep at most ~2 flows in flight.
                e.step().unwrap();
                e.step().unwrap();
            }
        }
        e.run_to_completion();
        assert_eq!(e.routes_live, 0, "all segments dead after drain");
        assert!(
            e.routes.len() < 2000,
            "arena compacted: {} entries for 2000 four-link flows",
            e.routes.len()
        );
        let c = e.counters();
        assert!(c.arena_bytes > 0);
        assert!(
            c.arena_bytes < (2000 * 4 * 4) as u64,
            "peak arena {} must stay well under the no-compaction total",
            c.arena_bytes
        );
    }

    #[test]
    fn heap_never_exceeds_live_activities() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        for i in 0..64 {
            e.add_activity(ActivityKind::flow(vec![l], 10.0 + i as f64), i);
        }
        while e.step().is_some() {
            assert!(
                e.heap.v.len() <= e.live,
                "addressable heap holds at most one entry per live activity"
            );
        }
        assert!(e.heap.v.is_empty());
    }
}
