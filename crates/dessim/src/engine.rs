//! The discrete-event engine: activities, virtual time, and completions.
//!
//! The engine owns a [`Platform`] and a set of in-flight activities. Each
//! call to [`Engine::step`] advances virtual time to the next activity
//! completion and returns it; the simulator built on top reacts by adding
//! new activities.
//!
//! Unlike the naive fluid-model loop (recompute every rate and scan every
//! activity at every event — see [`crate::reference::ReferenceEngine`]),
//! this engine is built for large concurrent activity counts:
//!
//! - **Indexed event selection.** Predicted completion times live in a
//!   min-heap keyed by `(finish, id, generation)`. A rate change bumps the
//!   activity's generation, lazily invalidating any queued entry; stale
//!   entries are skipped on pop. Picking the next event is `O(log n)`
//!   instead of an `O(n)` scan.
//! - **Incremental rate recomputation.** An add or completion marks the
//!   links/disks it touches; before the next event is selected, only the
//!   connected component(s) of the flow–link sharing graph containing
//!   touched links are re-solved (max-min fair sharing decomposes exactly
//!   by connected component), reusing a [`Workspace`] so the hot loop is
//!   allocation-free. Disks are independent sharing domains and are
//!   re-shared individually.
//! - **Lazy progress materialization.** An activity's `remaining` amount
//!   is only brought up to date when its rate changes; unaffected
//!   activities are never rewritten, so a completion costs work
//!   proportional to its sharing component, not to the total activity
//!   count.
//!
//! Rate recomputation is deferred and merged: any number of
//! [`Engine::add_activity`] / [`Engine::add_activities`] calls between two
//! events trigger a single incremental re-solve.

use crate::platform::{DiskId, LinkId, Platform};
use crate::sharing::Workspace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tolerance under which a remaining amount counts as finished.
const EPS: f64 = 1e-9;

/// Unique identifier of an activity within one [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) u64);

/// What an activity does. Construct via the helper constructors.
#[derive(Clone, Debug)]
pub enum ActivityKind {
    /// Computation progressing at a fixed caller-chosen rate (ops/s).
    Compute {
        /// Progress rate in operations per second.
        rate: f64,
        /// Total work in operations.
        work: f64,
    },
    /// A disk I/O operation; the disk's bandwidth is shared equally among
    /// the oldest `max_concurrency` pending operations.
    Io {
        /// Target disk.
        disk: DiskId,
        /// Bytes to read or write.
        bytes: f64,
    },
    /// A network flow across a route of links; bandwidth shared max-min
    /// fair with all other active flows. The route's total latency is
    /// charged serially before the transfer starts.
    Flow {
        /// Links traversed, in order.
        route: Vec<LinkId>,
        /// Bytes to transfer.
        bytes: f64,
    },
    /// Fires after a fixed delay (e.g. a scheduler's periodic cycle).
    Timer {
        /// Delay in seconds from the moment the timer is added.
        delay: f64,
    },
    /// Fires at an absolute virtual time (immediately if already past).
    /// Unlike [`ActivityKind::Timer`], the deadline does not depend on
    /// when the activity is added, so schedulers can pre-compute exact
    /// event times.
    TimerAt {
        /// Absolute deadline in seconds of virtual time.
        at: f64,
    },
}

impl ActivityKind {
    /// A fixed-rate computation of `work` operations at `rate` ops/s.
    ///
    /// # Panics
    /// Panics if `rate <= 0`, or if either argument is non-finite or
    /// `work < 0`.
    pub fn compute(rate: f64, work: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "compute rate must be positive"
        );
        assert!(
            work >= 0.0 && work.is_finite(),
            "compute work must be non-negative"
        );
        ActivityKind::Compute { rate, work }
    }

    /// A disk I/O operation of `bytes` bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or non-finite.
    pub fn io(disk: DiskId, bytes: f64) -> Self {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "io bytes must be non-negative"
        );
        ActivityKind::Io { disk, bytes }
    }

    /// A network flow of `bytes` bytes along `route`.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or non-finite.
    pub fn flow(route: Vec<LinkId>, bytes: f64) -> Self {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "flow bytes must be non-negative"
        );
        ActivityKind::Flow { route, bytes }
    }

    /// A timer firing `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative or non-finite.
    pub fn timer(delay: f64) -> Self {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "timer delay must be non-negative"
        );
        ActivityKind::Timer { delay }
    }

    /// A timer firing at absolute virtual time `at` (or immediately if
    /// `at` is already in the past when added).
    ///
    /// # Panics
    /// Panics if `at` is negative or non-finite.
    pub fn timer_at(at: f64) -> Self {
        assert!(
            at >= 0.0 && at.is_finite(),
            "timer deadline must be non-negative"
        );
        ActivityKind::TimerAt { at }
    }
}

/// A finished activity, as returned by [`Engine::step`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// The finished activity.
    pub id: ActivityId,
    /// The caller-supplied tag identifying what this activity meant.
    pub tag: u64,
    /// Virtual time of completion, in seconds.
    pub time: f64,
}

#[derive(Clone, Debug, PartialEq)]
enum Phase {
    /// Flow still paying its route latency (`remaining` is seconds).
    Latency,
    /// Transferring / computing / waiting (`remaining` is bytes, ops, or
    /// seconds depending on the kind).
    Active,
}

/// `f64` ordered by `total_cmp` so predicted finish times can key a heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Heap entry: `(predicted finish, activity id, generation at insertion)`.
/// Reversed into a min-heap; ties break toward the lowest id, matching the
/// reference engine's scan order.
type HeapEntry = Reverse<(OrdF64, usize, u32)>;

#[derive(Clone, Debug)]
struct Act {
    kind: ActivityKind,
    tag: u64,
    phase: Phase,
    /// Remaining amount in the unit of the current phase, valid as of
    /// `materialized_at`.
    remaining: f64,
    /// Current progress rate; `f64::INFINITY` for unconstrained
    /// (empty-route) flows, which complete at the current instant.
    rate: f64,
    /// Virtual time at which `remaining` was last brought up to date.
    materialized_at: f64,
    /// Bumped on every rate/phase change; heap entries carrying an older
    /// generation are stale and skipped.
    generation: u32,
}

/// Bring `remaining` up to date at `now` under the activity's current rate.
fn materialize(a: &mut Act, now: f64) {
    if now > a.materialized_at {
        if a.rate.is_infinite() {
            a.remaining = 0.0;
        } else if a.rate > 0.0 {
            a.remaining = (a.remaining - a.rate * (now - a.materialized_at)).max(0.0);
        }
    }
    a.materialized_at = now;
}

/// Schedule `a`'s predicted completion, if one is determinable: finished or
/// unconstrained activities complete now; rate-0 activities stay
/// unscheduled until a rate change makes progress possible.
fn push_finish(
    a: &Act,
    heap: &mut BinaryHeap<HeapEntry>,
    now: f64,
    id: usize,
    reinserts: &mut u64,
) {
    let finish = if a.remaining <= EPS || a.rate.is_infinite() {
        now
    } else if a.rate > 0.0 {
        now + a.remaining / a.rate
    } else {
        return;
    };
    heap.push(Reverse((OrdF64(finish), id, a.generation)));
    // Generation 0 is an activity's very first prediction; any later
    // generation means a stale entry was left behind for lazy skipping.
    if a.generation > 0 {
        *reinserts += 1;
    }
}

/// Change an activity's rate: materialize progress under the old rate,
/// invalidate any queued prediction, and schedule the new one.
fn set_rate(
    acts: &mut [Option<Act>],
    heap: &mut BinaryHeap<HeapEntry>,
    now: f64,
    id: usize,
    rate: f64,
    reinserts: &mut u64,
) {
    let a = acts[id]
        .as_mut()
        .expect("rate change targets a live activity");
    if a.rate == rate {
        return;
    }
    materialize(a, now);
    a.rate = rate;
    a.generation += 1;
    push_finish(a, heap, now, id, reinserts);
}

/// Deterministic kernel work counters, read via [`Engine::counters`].
///
/// All three are host-independent measures of simulation effort:
/// identical platforms and workloads produce identical counts on any
/// machine and thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Completions delivered by [`Engine::step`].
    pub events: u64,
    /// Predicted-completion heap pushes beyond each activity's first:
    /// every rate change or phase transition leaves a stale heap entry
    /// behind and re-inserts a fresh prediction.
    pub heap_reinserts: u64,
    /// Incremental max-min re-solves: one per touched disk re-share
    /// plus one per connected-component link solve.
    pub sharing_resolves: u64,
}

impl Drop for Engine {
    /// Flushes this engine's [`KernelCounters`] to the global [`obs`]
    /// recorder (a no-op when none is installed). Clones flush
    /// independently, so counts accumulated before a clone appear once
    /// per surviving copy.
    fn drop(&mut self) {
        if obs::enabled() {
            obs::counter(obs::Counter::KernelEvents, self.events);
            obs::counter(obs::Counter::KernelHeapReinserts, self.heap_reinserts);
            obs::counter(obs::Counter::KernelSharingResolves, self.sharing_resolves);
        }
    }
}

/// Flow-level discrete-event simulation engine.
///
/// See the [crate-level docs](crate) for an example and the
/// [module docs](self) for the data structures behind `step`.
#[derive(Clone, Debug)]
pub struct Engine {
    platform: Platform,
    time: f64,
    /// Completions delivered by [`Engine::step`] since construction — a
    /// deterministic measure of how much simulation work this engine
    /// performed, independent of host speed (used by `lodsel` as the
    /// simulation-cost axis of its accuracy×cost trade-off).
    events: u64,
    /// Heap pushes past each activity's first prediction (see
    /// [`KernelCounters::heap_reinserts`]).
    heap_reinserts: u64,
    /// Incremental sharing re-solves (see
    /// [`KernelCounters::sharing_resolves`]).
    sharing_resolves: u64,
    /// Slab of activities keyed by id; ids are sequential and never
    /// reused, completed slots become `None`.
    acts: Vec<Option<Act>>,
    /// Number of `Some` slots in `acts`.
    live: usize,
    heap: BinaryHeap<HeapEntry>,
    /// Ids of Active-phase flows registered on each link (latency-phase
    /// flows consume no bandwidth and are not listed).
    link_flows: Vec<Vec<usize>>,
    /// Ids of pending I/O ops per disk, in FIFO (insertion) order.
    disk_ops: Vec<Vec<usize>>,
    /// Links/disks whose sharing changed since the last flush.
    touched_links: Vec<usize>,
    link_touched: Vec<bool>,
    touched_disks: Vec<usize>,
    disk_touched: Vec<bool>,
    /// Reusable max-min solver buffers.
    ws: Workspace,
    // Scratch for the component walk; cleared incrementally after use.
    comp_links: Vec<usize>,
    comp_flows: Vec<usize>,
    link_seen: Vec<bool>,
    flow_seen: Vec<bool>,
    link_local: Vec<usize>,
    walk_stack: Vec<usize>,
}

impl Engine {
    /// Create an engine over `platform`, at virtual time 0.
    pub fn new(platform: Platform) -> Self {
        let nl = platform.num_links();
        let nd = platform.num_disks();
        Self {
            platform,
            time: 0.0,
            events: 0,
            heap_reinserts: 0,
            sharing_resolves: 0,
            acts: Vec::new(),
            live: 0,
            heap: BinaryHeap::new(),
            link_flows: vec![Vec::new(); nl],
            disk_ops: vec![Vec::new(); nd],
            touched_links: Vec::new(),
            link_touched: vec![false; nl],
            touched_disks: Vec::new(),
            disk_touched: vec![false; nd],
            ws: Workspace::new(),
            comp_links: Vec::new(),
            comp_flows: Vec::new(),
            link_seen: vec![false; nl],
            flow_seen: Vec::new(),
            link_local: vec![0; nl],
            walk_stack: Vec::new(),
        }
    }

    /// Current virtual time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completions delivered by [`Engine::step`] so far: a deterministic,
    /// host-independent count of the simulation work performed.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Deterministic kernel work counters accumulated since
    /// construction. These are plain field increments on the hot path
    /// (no atomics); they are additionally flushed to the global
    /// [`obs`] recorder — when one is installed — when the engine
    /// drops.
    pub fn counters(&self) -> KernelCounters {
        KernelCounters {
            events: self.events,
            heap_reinserts: self.heap_reinserts,
            sharing_resolves: self.sharing_resolves,
        }
    }

    /// The platform this engine simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of in-flight activities.
    pub fn active_count(&self) -> usize {
        self.live
    }

    /// Add an activity; `tag` is echoed back in its [`Completion`].
    ///
    /// Rate recomputation is deferred until the next [`Engine::step`] /
    /// [`Engine::peek_time`], so consecutive adds at one instant cost a
    /// single incremental re-solve.
    pub fn add_activity(&mut self, kind: ActivityKind, tag: u64) -> ActivityId {
        let id = self.acts.len();
        let now = self.time;
        let (phase, remaining, rate) = match &kind {
            ActivityKind::Compute { work, rate } => (Phase::Active, *work, *rate),
            ActivityKind::Io { disk, bytes } => {
                let d = disk.index();
                self.disk_ops[d].push(id);
                if !self.disk_touched[d] {
                    self.disk_touched[d] = true;
                    self.touched_disks.push(d);
                }
                (Phase::Active, *bytes, 0.0)
            }
            ActivityKind::Flow { route, bytes } => {
                let lat = self.platform.route_latency(route);
                if lat > 0.0 {
                    (Phase::Latency, lat, 1.0)
                } else if route.is_empty() {
                    // Unconstrained: completes at the current instant.
                    (Phase::Active, *bytes, f64::INFINITY)
                } else {
                    for lid in route {
                        let l = lid.index();
                        self.link_flows[l].push(id);
                        if !self.link_touched[l] {
                            self.link_touched[l] = true;
                            self.touched_links.push(l);
                        }
                    }
                    (Phase::Active, *bytes, 0.0)
                }
            }
            ActivityKind::Timer { delay } => (Phase::Active, *delay, 1.0),
            ActivityKind::TimerAt { at } => (Phase::Active, (*at - now).max(0.0), 1.0),
        };
        // An absolute timer fires at exactly `at`, not `now + (at - now)`
        // (which differs in the last ulps).
        let exact_deadline = match &kind {
            ActivityKind::TimerAt { at } if *at > now => Some(*at),
            _ => None,
        };
        let act = Act {
            kind,
            tag,
            phase,
            remaining,
            rate,
            materialized_at: now,
            generation: 0,
        };
        match exact_deadline {
            Some(at) => self.heap.push(Reverse((OrdF64(at), id, 0))),
            None => push_finish(&act, &mut self.heap, now, id, &mut self.heap_reinserts),
        }
        self.acts.push(Some(act));
        self.flow_seen.push(false);
        self.live += 1;
        ActivityId(id as u64)
    }

    /// Add a batch of activities released at the same instant, e.g. a
    /// scheduler dispatching many ready tasks at once. Equivalent to
    /// calling [`Engine::add_activity`] in order — rates are recomputed
    /// once, at the next event — but states the intent and returns all ids.
    pub fn add_activities(
        &mut self,
        batch: impl IntoIterator<Item = (ActivityKind, u64)>,
    ) -> Vec<ActivityId> {
        batch
            .into_iter()
            .map(|(kind, tag)| self.add_activity(kind, tag))
            .collect()
    }

    /// Re-share every touched disk and re-solve the connected component(s)
    /// of the flow–link graph containing touched links.
    fn flush_touched(&mut self) {
        if self.touched_disks.is_empty() && self.touched_links.is_empty() {
            return;
        }
        let now = self.time;
        let Engine {
            platform,
            acts,
            heap,
            heap_reinserts,
            sharing_resolves,
            link_flows,
            disk_ops,
            touched_links,
            link_touched,
            touched_disks,
            disk_touched,
            ws,
            comp_links,
            comp_flows,
            link_seen,
            flow_seen,
            link_local,
            walk_stack,
            ..
        } = self;

        // Disks: each disk is its own sharing domain. The oldest
        // `max_concurrency` ops split the bandwidth; younger ops wait.
        for &d in touched_disks.iter() {
            disk_touched[d] = false;
            let disk = platform.disk(DiskId(d));
            let ops = &disk_ops[d];
            let served = ops.len().min(disk.max_concurrency as usize);
            let share = if served > 0 {
                disk.bandwidth / served as f64
            } else {
                0.0
            };
            for (i, &id) in ops.iter().enumerate() {
                set_rate(
                    acts,
                    heap,
                    now,
                    id,
                    if i < served { share } else { 0.0 },
                    heap_reinserts,
                );
            }
            *sharing_resolves += 1;
        }
        touched_disks.clear();

        // Links: collect the union of connected components containing the
        // touched links. Max-min fair sharing decomposes exactly by
        // connected component, so solving these components with their full
        // link capacities reproduces the global allocation; flows outside
        // them keep their frozen rates.
        comp_links.clear();
        comp_flows.clear();
        walk_stack.clear();
        for &l in touched_links.iter() {
            link_touched[l] = false;
            if !link_seen[l] {
                link_seen[l] = true;
                comp_links.push(l);
                walk_stack.push(l);
            }
        }
        touched_links.clear();
        while let Some(l) = walk_stack.pop() {
            for &fid in &link_flows[l] {
                if flow_seen[fid] {
                    continue;
                }
                flow_seen[fid] = true;
                comp_flows.push(fid);
                let a = acts[fid].as_ref().expect("registered flow is live");
                if let ActivityKind::Flow { route, .. } = &a.kind {
                    for lid in route {
                        let m = lid.index();
                        if !link_seen[m] {
                            link_seen[m] = true;
                            comp_links.push(m);
                            walk_stack.push(m);
                        }
                    }
                }
            }
        }
        if comp_links.is_empty() {
            return;
        }

        // Canonical order: the incremental solve must freeze flows in the
        // same sequence a full solve would, so results match it exactly.
        comp_links.sort_unstable();
        comp_flows.sort_unstable();

        ws.clear();
        for &l in comp_links.iter() {
            link_local[l] = ws.push_capacity(platform.link(LinkId(l)).bandwidth);
        }
        for &fid in comp_flows.iter() {
            let a = acts[fid].as_ref().expect("component flow is live");
            if let ActivityKind::Flow { route, .. } = &a.kind {
                ws.push_route(route.iter().map(|lid| link_local[lid.index()]));
            }
        }
        let rates = ws.solve();
        *sharing_resolves += 1;
        for (&fid, &rate) in comp_flows.iter().zip(rates) {
            set_rate(acts, heap, now, fid, rate, heap_reinserts);
        }

        for &l in comp_links.iter() {
            link_seen[l] = false;
        }
        for &fid in comp_flows.iter() {
            flow_seen[fid] = false;
        }
    }

    /// Pop heap entries until the next valid one; `None` means no activity
    /// has a determinable completion (all rates are 0).
    fn pop_next(&mut self) -> Option<(f64, usize)> {
        while let Some(Reverse((OrdF64(finish), id, generation))) = self.heap.pop() {
            if let Some(a) = &self.acts[id] {
                if a.generation == generation {
                    return Some((finish, id));
                }
            }
        }
        None
    }

    /// Virtual time of the next internal event (completion or phase
    /// transition) without advancing to it. `None` when idle; may also be
    /// `None` if every in-flight activity is stalled at rate 0.
    pub fn peek_time(&mut self) -> Option<f64> {
        if self.live == 0 {
            return None;
        }
        self.flush_touched();
        loop {
            match self.heap.peek() {
                Some(&Reverse((OrdF64(finish), id, generation))) => match &self.acts[id] {
                    Some(a) if a.generation == generation => return Some(finish.max(self.time)),
                    _ => {
                        self.heap.pop();
                    }
                },
                None => return None,
            }
        }
    }

    /// Advance to the next completion and return it, or `None` when no
    /// activities remain. Internal phase transitions (a flow finishing its
    /// latency and starting to consume bandwidth) are handled transparently.
    pub fn step(&mut self) -> Option<Completion> {
        loop {
            if self.live == 0 {
                return None;
            }
            self.flush_touched();
            let Some((finish, id)) = self.pop_next() else {
                panic!(
                    "deadlock: every in-flight activity has rate 0 (time {})",
                    self.time
                )
            };
            self.time = self.time.max(finish);
            let now = self.time;

            if self.acts[id]
                .as_ref()
                .expect("popped activity is live")
                .phase
                == Phase::Latency
            {
                // Latency paid: start the transfer phase. The rate is
                // assigned by the flush at the top of the next iteration.
                let Engine {
                    acts,
                    heap,
                    heap_reinserts,
                    link_flows,
                    touched_links,
                    link_touched,
                    ..
                } = self;
                let a = acts[id].as_mut().expect("latency flow is live");
                let bytes = match &a.kind {
                    ActivityKind::Flow { bytes, .. } => *bytes,
                    _ => unreachable!("only flows have a latency phase"),
                };
                a.phase = Phase::Active;
                a.remaining = bytes;
                a.materialized_at = now;
                a.rate = 0.0;
                a.generation += 1;
                push_finish(a, heap, now, id, heap_reinserts); // schedules only if bytes ~ 0
                let a = acts[id].as_ref().expect("latency flow is live");
                if let ActivityKind::Flow { route, .. } = &a.kind {
                    for lid in route {
                        let l = lid.index();
                        link_flows[l].push(id);
                        if !link_touched[l] {
                            link_touched[l] = true;
                            touched_links.push(l);
                        }
                    }
                }
                continue;
            }

            // A completion: unregister from sharing domains and report.
            let act = self.acts[id].take().expect("completed activity was live");
            self.live -= 1;
            match &act.kind {
                ActivityKind::Flow { route, .. } => {
                    // Registered once per route occurrence; remove all.
                    for lid in route {
                        let l = lid.index();
                        self.link_flows[l].retain(|&f| f != id);
                        if !self.link_touched[l] {
                            self.link_touched[l] = true;
                            self.touched_links.push(l);
                        }
                    }
                }
                ActivityKind::Io { disk, .. } => {
                    let d = disk.index();
                    if let Some(pos) = self.disk_ops[d].iter().position(|&f| f == id) {
                        self.disk_ops[d].remove(pos); // preserve FIFO order
                    }
                    if !self.disk_touched[d] {
                        self.disk_touched[d] = true;
                        self.touched_disks.push(d);
                    }
                }
                _ => {}
            }
            self.events += 1;
            return Some(Completion {
                id: ActivityId(id as u64),
                tag: act.tag,
                time: now,
            });
        }
    }

    /// Run until no activities remain, returning every completion in order.
    pub fn run_to_completion(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.step() {
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_flow_latency_plus_transfer() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.5);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 200.0), 1);
        let c = e.step().unwrap();
        assert!(close(c.time, 0.5 + 2.0), "time {}", c.time);
        assert!(e.step().is_none());
    }

    #[test]
    fn two_equal_flows_share_bandwidth() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        // Each gets 50 B/s: both finish at t=2.
        assert!(close(c1.time, 2.0));
        assert!(close(c2.time, 2.0));
    }

    #[test]
    fn short_flow_completion_speeds_up_long_flow() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 50.0), 1); // short
        e.add_activity(ActivityKind::flow(vec![l], 150.0), 2); // long
        let c1 = e.step().unwrap();
        assert_eq!(c1.tag, 1);
        assert!(close(c1.time, 1.0)); // 50 bytes at 50 B/s
        let c2 = e.step().unwrap();
        assert_eq!(c2.tag, 2);
        // Long flow: 50 bytes at 50 B/s (t in [0,1]) + 100 bytes at 100 B/s.
        assert!(close(c2.time, 2.0), "time {}", c2.time);
    }

    #[test]
    fn compute_activity_runs_at_given_rate() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::compute(4.0, 10.0), 9);
        let c = e.step().unwrap();
        assert!(close(c.time, 2.5));
        assert_eq!(c.tag, 9);
    }

    #[test]
    fn timer_fires_at_absolute_delay() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(3.0), 5);
        let c = e.step().unwrap();
        assert!(close(c.time, 3.0));
    }

    #[test]
    fn timer_added_later_fires_relative_to_add_time() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        assert!(close(e.step().unwrap().time, 1.0));
        e.add_activity(ActivityKind::timer(2.0), 2);
        assert!(close(e.step().unwrap().time, 3.0));
    }

    #[test]
    fn timer_at_fires_at_exact_absolute_time() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(0.1), 1);
        assert!(close(e.step().unwrap().time, 0.1));
        // Relative arithmetic (0.1 + (0.3 - 0.1)) would land one ulp off;
        // the absolute deadline must be hit exactly.
        e.add_activity(ActivityKind::timer_at(0.3), 2);
        assert_eq!(e.step().unwrap().time, 0.3);
    }

    #[test]
    fn timer_at_in_the_past_fires_immediately() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(2.0), 1);
        assert!(close(e.step().unwrap().time, 2.0));
        e.add_activity(ActivityKind::timer_at(1.0), 2);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert_eq!(c.time, 2.0);
    }

    #[test]
    fn disk_concurrency_limit_queues_ops() {
        let mut p = Platform::new();
        let d = p.add_disk(100.0, 1); // one op at a time
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::io(d, 100.0), 1);
        e.add_activity(ActivityKind::io(d, 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert_eq!((c1.tag, c2.tag), (1, 2));
        assert!(close(c1.time, 1.0));
        assert!(close(c2.time, 2.0), "serialized, not shared: {}", c2.time);
    }

    #[test]
    fn disk_shares_bandwidth_up_to_concurrency() {
        let mut p = Platform::new();
        let d = p.add_disk(100.0, 2);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::io(d, 100.0), 1);
        e.add_activity(ActivityKind::io(d, 100.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert!(close(c1.time, 2.0));
        assert!(close(c2.time, 2.0));
    }

    #[test]
    fn zero_byte_flow_costs_latency_only() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.25);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 0.0), 1);
        assert!(close(e.step().unwrap().time, 0.25));
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::compute(1.0, 0.0), 1);
        let c = e.step().unwrap();
        assert_eq!(c.time, 0.0);
    }

    #[test]
    fn empty_route_flow_is_instant_after_no_latency() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::flow(vec![], 1e9), 1);
        let c = e.step().unwrap();
        assert!(c.time < 1e-6);
    }

    #[test]
    fn empty_route_flow_added_later_completes_at_current_instant() {
        // Regression for the old `f64::MAX` rate sentinel: an unconstrained
        // flow must complete at exactly the current virtual time, with no
        // sentinel arithmetic skewing it (1e300 bytes / f64::MAX would have
        // taken ~5.6e-9 simulated seconds) or perturbing other activities.
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        assert_eq!(e.step().unwrap().time, 1.0);
        e.add_activity(ActivityKind::flow(vec![], 1e300), 2);
        e.add_activity(ActivityKind::timer(1.0), 3);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert_eq!(c.time, 1.0, "unconstrained flow completes at add time");
        let c = e.step().unwrap();
        assert_eq!(c.tag, 3);
        assert_eq!(c.time, 2.0, "follow-up timer unperturbed");
    }

    #[test]
    fn multi_link_route_pays_summed_latency_and_bottleneck() {
        let mut p = Platform::new();
        let a = p.add_link(100.0, 0.1);
        let b = p.add_link(50.0, 0.2);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![a, b], 100.0), 1);
        let c = e.step().unwrap();
        // 0.3 latency + 100/50 transfer.
        assert!(close(c.time, 2.3), "time {}", c.time);
    }

    #[test]
    fn interleaved_kinds_complete_in_time_order() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let d = p.add_disk(100.0, 4);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::compute(10.0, 15.0), 1); // t=1.5
        e.add_activity(ActivityKind::flow(vec![l], 50.0), 2); // t=0.5
        e.add_activity(ActivityKind::io(d, 100.0), 3); // t=1.0
        e.add_activity(ActivityKind::timer(0.25), 4); // t=0.25
        let order: Vec<u64> = e.run_to_completion().iter().map(|c| c.tag).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn run_to_completion_drains_everything() {
        let mut e = Engine::new(Platform::new());
        for i in 0..10 {
            e.add_activity(ActivityKind::timer(i as f64), i);
        }
        assert_eq!(e.run_to_completion().len(), 10);
        assert_eq!(e.active_count(), 0);
        assert_eq!(e.events_processed(), 10);
    }

    #[test]
    fn events_processed_counts_completions_not_phase_transitions() {
        // A flow with latency goes through an internal latency→transfer
        // transition; only the final completion counts as an event.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.5);
        let mut e = Engine::new(p);
        assert_eq!(e.events_processed(), 0);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 1);
        e.step().unwrap();
        assert_eq!(e.events_processed(), 1);
    }

    #[test]
    fn counters_track_reinserts_and_sharing_resolves() {
        // Two flows sharing one link: the second arrival re-shares the
        // link (component re-solve) and re-inserts the first flow's
        // prediction; each completion re-shares again.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        e.run_to_completion();
        let c = e.counters();
        assert_eq!(c.events, 2);
        assert!(c.heap_reinserts >= 1, "counters: {c:?}");
        assert!(c.sharing_resolves >= 2, "counters: {c:?}");

        // A lone timer needs neither re-inserts nor sharing.
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        e.run_to_completion();
        let c = e.counters();
        assert_eq!(
            c,
            KernelCounters {
                events: 1,
                heap_reinserts: 0,
                sharing_resolves: 0
            }
        );
    }

    #[test]
    fn latency_phase_does_not_consume_bandwidth() {
        // Flow A has huge latency; flow B should get the full link until
        // A's latency elapses.
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let l_lat = p.add_link(1e12, 10.0); // pure-latency hop for A
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![l_lat, l], 100.0), 1);
        e.add_activity(ActivityKind::flow(vec![l], 100.0), 2);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert!(close(c.time, 1.0), "B at full bandwidth: {}", c.time);
        let c = e.step().unwrap();
        assert_eq!(c.tag, 1);
        assert!(
            close(c.time, 11.0),
            "A: 10 latency + 1 transfer: {}",
            c.time
        );
    }

    #[test]
    fn simultaneous_completions_all_reported() {
        let mut e = Engine::new(Platform::new());
        e.add_activity(ActivityKind::timer(1.0), 1);
        e.add_activity(ActivityKind::timer(1.0), 2);
        let c1 = e.step().unwrap();
        let c2 = e.step().unwrap();
        assert!(close(c1.time, 1.0) && close(c2.time, 1.0));
        assert_ne!(c1.tag, c2.tag);
    }

    #[test]
    fn time_is_monotone_nondecreasing() {
        let mut p = Platform::new();
        let l = p.add_link(10.0, 0.01);
        let d = p.add_disk(5.0, 2);
        let mut e = Engine::new(p);
        for i in 0..20 {
            match i % 3 {
                0 => e.add_activity(ActivityKind::flow(vec![l], (i * 7 % 13) as f64), i),
                1 => e.add_activity(ActivityKind::io(d, (i * 5 % 11) as f64), i),
                _ => e.add_activity(ActivityKind::compute(2.0, (i % 9) as f64), i),
            };
        }
        let mut last = 0.0;
        while let Some(c) = e.step() {
            assert!(c.time >= last - 1e-12);
            last = c.time;
        }
    }

    #[test]
    fn add_activities_batches_one_release() {
        let mut p = Platform::new();
        let l = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        let ids = e.add_activities(vec![
            (ActivityKind::flow(vec![l], 100.0), 1),
            (ActivityKind::flow(vec![l], 100.0), 2),
            (ActivityKind::timer(0.5), 3),
        ]);
        assert_eq!(ids.len(), 3);
        assert_eq!(e.active_count(), 3);
        let order: Vec<(u64, f64)> = e
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.time))
            .collect();
        assert_eq!(order[0].0, 3);
        assert!(close(order[0].1, 0.5));
        // Both flows share the link throughout: each finishes at t=2.
        assert!(close(order[1].1, 2.0) && close(order[2].1, 2.0));
    }

    #[test]
    fn peek_time_previews_next_event_without_advancing() {
        let mut e = Engine::new(Platform::new());
        assert_eq!(e.peek_time(), None);
        e.add_activity(ActivityKind::timer(2.0), 1);
        e.add_activity(ActivityKind::timer(1.0), 2);
        assert!(close(e.peek_time().unwrap(), 1.0));
        assert_eq!(e.time(), 0.0, "peek must not advance time");
        let c = e.step().unwrap();
        assert_eq!(c.tag, 2);
        assert!(close(e.peek_time().unwrap(), 2.0));
        e.step();
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn disjoint_components_do_not_disturb_each_other() {
        // Two independent link pairs: completing a flow on one component
        // must leave the other component's predicted times untouched.
        let mut p = Platform::new();
        let a = p.add_link(100.0, 0.0);
        let b = p.add_link(100.0, 0.0);
        let mut e = Engine::new(p);
        e.add_activity(ActivityKind::flow(vec![a], 50.0), 1);
        e.add_activity(ActivityKind::flow(vec![a], 150.0), 2);
        e.add_activity(ActivityKind::flow(vec![b], 100.0), 3);
        e.add_activity(ActivityKind::flow(vec![b], 100.0), 4);
        let order: Vec<(u64, f64)> = e
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.time))
            .collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0].0, 1);
        assert!(close(order[0].1, 1.0));
        // Flows 3 and 4 split link b 50/50 the whole way: t=2 each,
        // unaffected by the re-solve of link a at t=1.
        for &(tag, t) in &order[1..] {
            assert!(close(t, 2.0), "tag {tag} at {t}");
        }
    }
}
