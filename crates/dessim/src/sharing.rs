//! Max-min fair bandwidth sharing via progressive filling.
//!
//! Given a set of flows, each traversing a set of links, and per-link
//! capacities, progressive filling raises every flow's rate uniformly until
//! some link saturates, freezes the flows crossing that link at their
//! current rate, removes the consumed capacity, and repeats. The result is
//! the unique max-min fair allocation, the same sharing model SimGrid's
//! fluid network model (and hence SMPI and WRENCH) uses.

/// Compute the max-min fair allocation.
///
/// `capacities[l]` is the capacity of link `l`; `flow_routes[f]` lists the
/// link indices flow `f` traverses (duplicates are permitted and count
/// once). Returns one rate per flow. A flow with an empty route is
/// unconstrained and gets `f64::INFINITY` — callers model such flows
/// (e.g. intra-host transfers) with an explicit bound elsewhere.
///
/// This is a thin delegation to [`Workspace::solve`] — the single
/// progressive-filling implementation in the workspace is the only solver
/// in the crate, so the free function, the engine's frontier-limited
/// incremental re-solves, and direct `Workspace` users (e.g. `mpisim`)
/// all share one set of bits. Callers with a hot loop should hold a
/// [`Workspace`] so repeated solves reuse buffers instead of allocating.
///
/// # Panics
/// Panics if any route references a link index out of bounds.
pub fn max_min_fair_share(capacities: &[f64], flow_routes: &[Vec<usize>]) -> Vec<f64> {
    let mut ws = Workspace::new();
    ws.load(capacities, flow_routes);
    ws.solve().to_vec()
}

/// Reusable buffers for progressive-filling solves.
///
/// A solve has three steps: [`Workspace::clear`], then a build phase
/// ([`Workspace::push_capacity`] for every link, [`Workspace::push_route`]
/// for every flow, in order), then [`Workspace::solve`]. Every buffer is
/// retained across solves, so a warm workspace performs no allocation —
/// this is what makes the engine's per-event rate updates allocation-free.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Link capacities for the current problem.
    caps: Vec<f64>,
    /// Deduplicated, sorted routes, flattened back to back.
    route_flat: Vec<usize>,
    /// Exclusive end offset of each flow's route in `route_flat`.
    route_ends: Vec<usize>,
    /// Scratch: capacity left on each link.
    remaining: Vec<f64>,
    /// Scratch: unfrozen flows crossing each link.
    crossing: Vec<usize>,
    /// Scratch: which flows have been frozen.
    frozen: Vec<bool>,
    /// Output rates, one per flow.
    rates: Vec<f64>,
    /// Output: which links were selected as a bottleneck in some filling
    /// round of the last solve (the *binding* links). Rates are a pure
    /// function of the binding links' capacities and crossing counts;
    /// capacities of non-binding links never enter the rate arithmetic.
    binding: Vec<bool>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the current problem, keeping all buffer capacity.
    pub fn clear(&mut self) {
        self.caps.clear();
        self.route_flat.clear();
        self.route_ends.clear();
    }

    /// Add a link with capacity `cap`; returns its index in this problem.
    pub fn push_capacity(&mut self, cap: f64) -> usize {
        self.caps.push(cap);
        self.caps.len() - 1
    }

    /// Add a flow crossing `links` (workspace link indices; duplicates
    /// count once); returns its index in this problem.
    ///
    /// # Panics
    /// Panics if a link index is out of bounds for the pushed capacities.
    pub fn push_route(&mut self, links: impl IntoIterator<Item = usize>) -> usize {
        let start = self.route_flat.len();
        self.route_flat.extend(links);
        let nl = self.caps.len();
        let segment = &mut self.route_flat[start..];
        segment.sort_unstable();
        for &l in segment.iter() {
            assert!(
                l < nl,
                "route references link {l} but only {nl} links exist"
            );
        }
        // In-place dedup of the just-added segment.
        let mut w = start;
        for r in start..self.route_flat.len() {
            if w == start || self.route_flat[r] != self.route_flat[w - 1] {
                self.route_flat[w] = self.route_flat[r];
                w += 1;
            }
        }
        self.route_flat.truncate(w);
        self.route_ends.push(w);
        self.route_ends.len() - 1
    }

    /// Number of flows pushed since the last [`Workspace::clear`].
    pub fn num_flows(&self) -> usize {
        self.route_ends.len()
    }

    /// `clear` + build in one call, for slice-shaped inputs.
    pub fn load(&mut self, capacities: &[f64], flow_routes: &[Vec<usize>]) {
        self.clear();
        for &cap in capacities {
            self.push_capacity(cap);
        }
        for route in flow_routes {
            self.push_route(route.iter().copied());
        }
    }

    /// Run progressive filling on the current problem and return one rate
    /// per flow (in push order). Flows with empty routes get
    /// `f64::INFINITY`. The result stays valid until the next `clear`.
    pub fn solve(&mut self) -> &[f64] {
        let Self {
            caps,
            route_flat,
            route_ends,
            remaining,
            crossing,
            frozen,
            rates,
            binding,
        } = self;
        let nf = route_ends.len();
        let nl = caps.len();
        let route = |f: usize| {
            let start = if f == 0 { 0 } else { route_ends[f - 1] };
            &route_flat[start..route_ends[f]]
        };

        rates.clear();
        rates.resize(nf, f64::INFINITY);
        binding.clear();
        binding.resize(nl, false);
        if nf == 0 {
            return rates;
        }

        remaining.clear();
        remaining.extend_from_slice(caps);
        crossing.clear();
        crossing.resize(nl, 0);
        frozen.clear();
        frozen.resize(nf, false);

        // Flows with empty routes are unconstrained; leave their rate
        // infinite. Count the rest.
        let mut unfrozen_constrained = 0usize;
        for (f, fz) in frozen.iter_mut().enumerate() {
            if route(f).is_empty() {
                *fz = true;
            } else {
                unfrozen_constrained += 1;
                for &l in route(f) {
                    crossing[l] += 1;
                }
            }
        }

        // Progressive filling: at most one link saturates per round.
        while unfrozen_constrained > 0 {
            // Bottleneck link: minimal fair share among crossed links.
            let mut best: Option<(usize, f64)> = None;
            for l in 0..nl {
                if crossing[l] == 0 {
                    continue;
                }
                let share = remaining[l].max(0.0) / crossing[l] as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((l, share));
                }
            }
            let (bottleneck, share) = best.expect("unfrozen flows imply a crossed link");
            binding[bottleneck] = true;

            // Freeze every unfrozen flow crossing the bottleneck at
            // `share`, and release the capacity they consume elsewhere.
            for f in 0..nf {
                if frozen[f] || !route(f).contains(&bottleneck) {
                    continue;
                }
                frozen[f] = true;
                unfrozen_constrained -= 1;
                rates[f] = share;
                for &l in route(f) {
                    remaining[l] -= share;
                    crossing[l] -= 1;
                }
            }
        }
        rates
    }

    /// Whether link `link` (workspace index) was selected as a bottleneck
    /// in the last [`Workspace::solve`]. Only meaningful after a solve.
    ///
    /// A non-binding link's capacity never entered the rate arithmetic:
    /// every flow crossing it was frozen by some *other* link first. This
    /// is what lets the engine's frontier-limited re-solve prove a
    /// boundary link's residual-capacity approximation exact.
    pub fn was_binding(&self, link: usize) -> bool {
        self.binding.get(link).copied().unwrap_or(false)
    }

    /// The rates computed by the last [`Workspace::solve`], one per flow
    /// in push order. Unlike the slice `solve` returns, this borrows the
    /// workspace immutably, so it can coexist with
    /// [`Workspace::was_binding`] queries.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

/// Reusable state for frontier-limited incremental re-solves.
///
/// The engine seeds the change-queue with the links whose flow set changed
/// (`dirty` set *D*), pulls in the flows crossing them (*F*), and the
/// other links those flows cross (`boundary` set *B*). Boundary links are
/// modeled by their *residual* capacity (full capacity minus the current
/// rates of flows outside *F*). After a candidate solve over *D ∪ B*, a
/// boundary link must be promoted to dirty — expanding the frontier — iff
/// it has outside flows and either (a) it was binding in the candidate
/// solve, or (b) some *F*-flow crossing it changed rate: in either case
/// the frozen outside rates baked into its residual may no longer be the
/// true max-min rates. When no promotion fires, the candidate rates are
/// bitwise identical to a full-component solve and can be committed.
///
/// All fields are buffers retained across solves; [`Frontier::new`] plus
/// the engine-side reset protocol keep the hot path allocation-free once
/// warm. The fields are crate-internal: this type exists so the engine's
/// change-queue state lives beside the solver it feeds.
#[derive(Clone, Debug, Default)]
pub struct Frontier {
    /// Dirty links *D*, in discovery order.
    pub(crate) dirty: Vec<usize>,
    /// Per-link membership mask for `dirty`.
    pub(crate) in_dirty: Vec<bool>,
    /// Boundary links *B*, in discovery order (may contain links later
    /// promoted to dirty; `in_dirty` takes precedence).
    pub(crate) boundary: Vec<usize>,
    /// Per-link membership mask for `boundary`.
    pub(crate) in_boundary: Vec<bool>,
    /// Flows *F* (engine slot indices), in discovery order.
    pub(crate) flows: Vec<u32>,
    /// Per-slot membership mask for `flows`.
    pub(crate) in_flows: Vec<bool>,
    /// Per-link count of *F*-flows crossing it (routes are deduplicated,
    /// so this compares directly against the engine's per-link flow
    /// registry length to detect outside flows).
    pub(crate) f_count: Vec<u32>,
    /// Per-slot scratch: did this flow's rate change in the candidate?
    pub(crate) changed: Vec<bool>,
    /// Per-link map to the candidate problem's workspace index.
    pub(crate) local: Vec<usize>,
    /// Sorted link set of the candidate problem.
    pub(crate) links_sorted: Vec<usize>,
    /// Flows sorted by serial id (canonical commit order).
    pub(crate) flows_sorted: Vec<u32>,
    /// Scratch for canonical (serial-ordered) residual summation.
    pub(crate) outside: Vec<(u64, f64)>,
}

impl Frontier {
    /// An empty frontier; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow per-link buffers to cover `num_links` links.
    pub(crate) fn ensure_links(&mut self, num_links: usize) {
        if self.in_dirty.len() < num_links {
            self.in_dirty.resize(num_links, false);
            self.in_boundary.resize(num_links, false);
            self.f_count.resize(num_links, 0);
            self.local.resize(num_links, usize::MAX);
        }
    }

    /// Grow per-slot buffers to cover `num_slots` activity slots.
    pub(crate) fn ensure_slots(&mut self, num_slots: usize) {
        if self.in_flows.len() < num_slots {
            self.in_flows.resize(num_slots, false);
            self.changed.resize(num_slots, false);
        }
    }

    /// Clear membership masks and counts touched by the last solve, then
    /// drop the discovery lists. O(|D| + |B| + |F| + links in problem).
    pub(crate) fn reset(&mut self) {
        for &l in &self.dirty {
            self.in_dirty[l] = false;
        }
        for &l in &self.boundary {
            self.in_boundary[l] = false;
        }
        for &l in &self.links_sorted {
            self.f_count[l] = 0;
        }
        for &s in &self.flows {
            self.in_flows[s as usize] = false;
        }
        self.dirty.clear();
        self.boundary.clear();
        self.flows.clear();
        self.links_sorted.clear();
        self.flows_sorted.clear();
        self.outside.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_flow_gets_full_link() {
        let rates = max_min_fair_share(&[100.0], &[vec![0]]);
        assert!(close(rates[0], 100.0));
    }

    #[test]
    fn two_flows_split_evenly() {
        let rates = max_min_fair_share(&[100.0], &[vec![0], vec![0]]);
        assert!(close(rates[0], 50.0));
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn bottleneck_frees_capacity_elsewhere() {
        // Link 0: cap 100 shared by flows A and B. Link 1: cap 30, only B.
        // B is bottlenecked at 30 on link 1, so A gets 70 on link 0.
        let rates = max_min_fair_share(&[100.0, 30.0], &[vec![0], vec![0, 1]]);
        assert!(close(rates[1], 30.0), "B: {}", rates[1]);
        assert!(close(rates[0], 70.0), "A: {}", rates[0]);
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Line of 2 links, cap 1 each. Flow 0 uses both; flows 1 and 2 use
        // one link each. Max-min: flow 0 gets 0.5, flows 1 and 2 get 0.5.
        let rates = max_min_fair_share(&[1.0, 1.0], &[vec![0, 1], vec![0], vec![1]]);
        assert!(close(rates[0], 0.5));
        assert!(close(rates[1], 0.5));
        assert!(close(rates[2], 0.5));
    }

    #[test]
    fn heterogeneous_line_network() {
        // Link caps 1 and 2. Long flow + one local flow per link.
        // Bottleneck is link 0: share 0.5 freezes long flow and flow 1.
        // Flow 2 then gets 2 - 0.5 = 1.5.
        let rates = max_min_fair_share(&[1.0, 2.0], &[vec![0, 1], vec![0], vec![1]]);
        assert!(close(rates[0], 0.5));
        assert!(close(rates[1], 0.5));
        assert!(close(rates[2], 1.5));
    }

    #[test]
    fn empty_route_is_unconstrained() {
        let rates = max_min_fair_share(&[10.0], &[vec![], vec![0]]);
        assert_eq!(rates[0], f64::INFINITY);
        assert!(close(rates[1], 10.0));
    }

    #[test]
    fn duplicate_links_in_route_count_once() {
        let rates = max_min_fair_share(&[100.0], &[vec![0, 0], vec![0]]);
        assert!(close(rates[0], 50.0));
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn no_flows_yields_empty() {
        assert!(max_min_fair_share(&[1.0, 2.0], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "references link")]
    fn out_of_bounds_route_panics() {
        max_min_fair_share(&[1.0], &[vec![3]]);
    }

    proptest! {
        /// No link is over-subscribed by the computed allocation.
        #[test]
        fn prop_capacity_never_exceeded(
            caps in proptest::collection::vec(0.1f64..100.0, 1..6),
            routes in proptest::collection::vec(
                proptest::collection::vec(0usize..6, 1..4), 1..12),
        ) {
            let nl = caps.len();
            let routes: Vec<Vec<usize>> = routes
                .into_iter()
                .map(|r| r.into_iter().map(|l| l % nl).collect())
                .collect();
            let rates = max_min_fair_share(&caps, &routes);
            for (l, &cap) in caps.iter().enumerate() {
                let used: f64 = routes
                    .iter()
                    .zip(&rates)
                    .filter(|(route, _)| route.contains(&l))
                    .map(|(_, r)| r)
                    .sum();
                prop_assert!(used <= cap * (1.0 + 1e-9) + 1e-9,
                    "link {l}: used {used} > cap {cap}");
            }
        }

        /// Every flow has a saturated bottleneck link: the allocation is
        /// Pareto-efficient (no single flow's rate can increase).
        #[test]
        fn prop_every_flow_has_saturated_bottleneck(
            caps in proptest::collection::vec(0.1f64..100.0, 1..5),
            routes in proptest::collection::vec(
                proptest::collection::vec(0usize..5, 1..3), 1..8),
        ) {
            let nl = caps.len();
            let routes: Vec<Vec<usize>> = routes
                .into_iter()
                .map(|r| r.into_iter().map(|l| l % nl).collect())
                .collect();
            let rates = max_min_fair_share(&caps, &routes);
            let used: Vec<f64> = (0..nl)
                .map(|l| routes.iter().zip(&rates)
                    .filter(|(route, _)| route.contains(&l))
                    .map(|(_, r)| r)
                    .sum())
                .collect();
            for route in &routes {
                let saturated = route
                    .iter()
                    .any(|&l| used[l] >= caps[l] * (1.0 - 1e-6));
                prop_assert!(saturated, "flow has slack on all its links");
            }
        }

        /// All rates are non-negative and finite for non-empty routes.
        #[test]
        fn prop_rates_valid(
            caps in proptest::collection::vec(0.1f64..100.0, 1..5),
            routes in proptest::collection::vec(
                proptest::collection::vec(0usize..5, 1..3), 0..8),
        ) {
            let nl = caps.len();
            let routes: Vec<Vec<usize>> = routes
                .into_iter()
                .map(|r| r.into_iter().map(|l| l % nl).collect())
                .collect();
            let rates = max_min_fair_share(&caps, &routes);
            for r in &rates {
                prop_assert!(*r >= 0.0 && r.is_finite());
            }
        }
    }
}
