//! Max-min fair bandwidth sharing via progressive filling.
//!
//! Given a set of flows, each traversing a set of links, and per-link
//! capacities, progressive filling raises every flow's rate uniformly until
//! some link saturates, freezes the flows crossing that link at their
//! current rate, removes the consumed capacity, and repeats. The result is
//! the unique max-min fair allocation, the same sharing model SimGrid's
//! fluid network model (and hence SMPI and WRENCH) uses.

/// Compute the max-min fair allocation.
///
/// `capacities[l]` is the capacity of link `l`; `flow_routes[f]` lists the
/// link indices flow `f` traverses (duplicates are permitted and count
/// once). Returns one rate per flow. A flow with an empty route is
/// unconstrained and gets `f64::INFINITY` — callers model such flows
/// (e.g. intra-host transfers) with an explicit bound elsewhere.
///
/// # Panics
/// Panics if any route references a link index out of bounds.
pub fn max_min_fair_share(capacities: &[f64], flow_routes: &[Vec<usize>]) -> Vec<f64> {
    let nf = flow_routes.len();
    let nl = capacities.len();
    let mut rates = vec![f64::INFINITY; nf];
    if nf == 0 {
        return rates;
    }

    // Number of unfrozen flows crossing each link, and remaining capacity.
    let mut remaining = capacities.to_vec();
    let mut crossing = vec![0usize; nl];
    // Deduplicated routes so a flow listed twice on a link counts once.
    let deduped: Vec<Vec<usize>> = flow_routes
        .iter()
        .map(|route| {
            let mut r = route.clone();
            r.sort_unstable();
            r.dedup();
            for &l in &r {
                assert!(l < nl, "route references link {l} but only {nl} links exist");
            }
            r
        })
        .collect();
    for route in &deduped {
        for &l in route {
            crossing[l] += 1;
        }
    }

    let mut frozen = vec![false; nf];
    // Flows with empty routes are unconstrained; leave their rate infinite.
    let mut unfrozen_constrained: usize = deduped
        .iter()
        .enumerate()
        .filter(|(f, route)| {
            if route.is_empty() {
                frozen[*f] = true;
                false
            } else {
                true
            }
        })
        .count();

    // Progressive filling: at most one link saturates per round.
    while unfrozen_constrained > 0 {
        // Bottleneck link: minimal fair share among links with unfrozen flows.
        let mut best: Option<(usize, f64)> = None;
        for l in 0..nl {
            if crossing[l] == 0 {
                continue;
            }
            let share = remaining[l].max(0.0) / crossing[l] as f64;
            if best.is_none_or(|(_, s)| share < s) {
                best = Some((l, share));
            }
        }
        let (bottleneck, share) = best.expect("unfrozen flows imply a crossed link");

        // Freeze every unfrozen flow crossing the bottleneck at `share`,
        // and release the capacity they consume on their other links.
        for f in 0..nf {
            if frozen[f] || !deduped[f].contains(&bottleneck) {
                continue;
            }
            frozen[f] = true;
            unfrozen_constrained -= 1;
            rates[f] = share;
            for &l in &deduped[f] {
                remaining[l] -= share;
                crossing[l] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_flow_gets_full_link() {
        let rates = max_min_fair_share(&[100.0], &[vec![0]]);
        assert!(close(rates[0], 100.0));
    }

    #[test]
    fn two_flows_split_evenly() {
        let rates = max_min_fair_share(&[100.0], &[vec![0], vec![0]]);
        assert!(close(rates[0], 50.0));
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn bottleneck_frees_capacity_elsewhere() {
        // Link 0: cap 100 shared by flows A and B. Link 1: cap 30, only B.
        // B is bottlenecked at 30 on link 1, so A gets 70 on link 0.
        let rates = max_min_fair_share(&[100.0, 30.0], &[vec![0], vec![0, 1]]);
        assert!(close(rates[1], 30.0), "B: {}", rates[1]);
        assert!(close(rates[0], 70.0), "A: {}", rates[0]);
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Line of 2 links, cap 1 each. Flow 0 uses both; flows 1 and 2 use
        // one link each. Max-min: flow 0 gets 0.5, flows 1 and 2 get 0.5.
        let rates = max_min_fair_share(&[1.0, 1.0], &[vec![0, 1], vec![0], vec![1]]);
        assert!(close(rates[0], 0.5));
        assert!(close(rates[1], 0.5));
        assert!(close(rates[2], 0.5));
    }

    #[test]
    fn heterogeneous_line_network() {
        // Link caps 1 and 2. Long flow + one local flow per link.
        // Bottleneck is link 0: share 0.5 freezes long flow and flow 1.
        // Flow 2 then gets 2 - 0.5 = 1.5.
        let rates = max_min_fair_share(&[1.0, 2.0], &[vec![0, 1], vec![0], vec![1]]);
        assert!(close(rates[0], 0.5));
        assert!(close(rates[1], 0.5));
        assert!(close(rates[2], 1.5));
    }

    #[test]
    fn empty_route_is_unconstrained() {
        let rates = max_min_fair_share(&[10.0], &[vec![], vec![0]]);
        assert_eq!(rates[0], f64::INFINITY);
        assert!(close(rates[1], 10.0));
    }

    #[test]
    fn duplicate_links_in_route_count_once() {
        let rates = max_min_fair_share(&[100.0], &[vec![0, 0], vec![0]]);
        assert!(close(rates[0], 50.0));
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn no_flows_yields_empty() {
        assert!(max_min_fair_share(&[1.0, 2.0], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "references link")]
    fn out_of_bounds_route_panics() {
        max_min_fair_share(&[1.0], &[vec![3]]);
    }

    proptest! {
        /// No link is over-subscribed by the computed allocation.
        #[test]
        fn prop_capacity_never_exceeded(
            caps in proptest::collection::vec(0.1f64..100.0, 1..6),
            routes in proptest::collection::vec(
                proptest::collection::vec(0usize..6, 1..4), 1..12),
        ) {
            let nl = caps.len();
            let routes: Vec<Vec<usize>> = routes
                .into_iter()
                .map(|r| r.into_iter().map(|l| l % nl).collect())
                .collect();
            let rates = max_min_fair_share(&caps, &routes);
            for (l, &cap) in caps.iter().enumerate() {
                let used: f64 = routes
                    .iter()
                    .zip(&rates)
                    .filter(|(route, _)| route.contains(&l))
                    .map(|(_, r)| r)
                    .sum();
                prop_assert!(used <= cap * (1.0 + 1e-9) + 1e-9,
                    "link {l}: used {used} > cap {cap}");
            }
        }

        /// Every flow has a saturated bottleneck link: the allocation is
        /// Pareto-efficient (no single flow's rate can increase).
        #[test]
        fn prop_every_flow_has_saturated_bottleneck(
            caps in proptest::collection::vec(0.1f64..100.0, 1..5),
            routes in proptest::collection::vec(
                proptest::collection::vec(0usize..5, 1..3), 1..8),
        ) {
            let nl = caps.len();
            let routes: Vec<Vec<usize>> = routes
                .into_iter()
                .map(|r| r.into_iter().map(|l| l % nl).collect())
                .collect();
            let rates = max_min_fair_share(&caps, &routes);
            let used: Vec<f64> = (0..nl)
                .map(|l| routes.iter().zip(&rates)
                    .filter(|(route, _)| route.contains(&l))
                    .map(|(_, r)| r)
                    .sum())
                .collect();
            for route in &routes {
                let saturated = route
                    .iter()
                    .any(|&l| used[l] >= caps[l] * (1.0 - 1e-6));
                prop_assert!(saturated, "flow has slack on all its links");
            }
        }

        /// All rates are non-negative and finite for non-empty routes.
        #[test]
        fn prop_rates_valid(
            caps in proptest::collection::vec(0.1f64..100.0, 1..5),
            routes in proptest::collection::vec(
                proptest::collection::vec(0usize..5, 1..3), 0..8),
        ) {
            let nl = caps.len();
            let routes: Vec<Vec<usize>> = routes
                .into_iter()
                .map(|r| r.into_iter().map(|l| l % nl).collect())
                .collect();
            let rates = max_min_fair_share(&caps, &routes);
            for r in &rates {
                prop_assert!(*r >= 0.0 && r.is_finite());
            }
        }
    }
}
