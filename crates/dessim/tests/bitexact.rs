//! Bit-for-bit oracle: on workloads whose arithmetic is *exactly
//! representable* in f64, the optimized [`Engine`] must match the
//! full-recompute [`ReferenceEngine`] bitwise — identical completion
//! times (`==`, not within tolerance), identical ids, identical order.
//!
//! The tolerance-based oracle (`tests/oracle.rs`) leaves room for the two
//! engines to accumulate different rounding noise; this test removes that
//! room. Every rate is a dyadic rational (link bandwidth 1024 split among
//! a power-of-two cohort), every duration an integer, and every byte
//! count a multiple of the rate — so materialization
//! (`remaining - rate·dt`), finish prediction (`remaining / rate`), and
//! the max-min solve are all exact no matter how many times or in which
//! order they run. Any bitwise divergence therefore exposes a real
//! semantic difference (wrong sharing, wrong tie-break, wrong batch
//! order), not float noise. This pins the determinism contract:
//! completion streams are independent of storage layout, slot recycling,
//! frontier size, and same-instant batch draining.
//!
//! Cohorts are deliberately homogeneous (one fresh link/disk per cohort,
//! all members the same size) so the per-resource flow count is always a
//! power of two and shares stay dyadic for the whole run.

use dessim::{ActivityKind, Engine, Platform, ReferenceEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BW: f64 = 1024.0;

/// One same-instant release of activities (a cohort plus loose extras).
type Batch = Vec<(ActivityKind, u64)>;

/// Pre-generate the platform and all batches: resources must exist before
/// either engine is constructed, and both engines must see identical adds.
fn build_workload(rng: &mut StdRng) -> (Platform, Vec<Batch>) {
    let mut p = Platform::new();
    let mut batches = Vec::new();
    let mut next_tag = 0u64;
    let n_batches = rng.gen_range(3usize..8);
    for _ in 0..n_batches {
        let mut batch: Batch = Vec::new();
        let n_cohorts = rng.gen_range(1usize..4);
        for _ in 0..n_cohorts {
            let k = 1usize << rng.gen_range(0u32..4); // cohort size: 1,2,4,8
            let m = rng.gen_range(1u64..9); // integer duration in seconds
            match rng.gen_range(0u32..6) {
                0 | 1 => {
                    // k equal flows on a fresh link: each runs at the
                    // dyadic rate BW/k for exactly m seconds.
                    let lat = rng.gen_range(0u64..3) as f64; // integer latency
                    let link = p.add_link(BW, lat);
                    let bytes = m as f64 * (BW / k as f64);
                    for _ in 0..k {
                        next_tag += 1;
                        batch.push((ActivityKind::flow(vec![link], bytes), next_tag));
                    }
                }
                2 => {
                    // Two-hop route over fresh links; the first is the
                    // (tied) bottleneck, shares stay dyadic.
                    let a = p.add_link(BW, 0.0);
                    let b = p.add_link(BW, rng.gen_range(0u64..2) as f64);
                    let bytes = m as f64 * (BW / k as f64);
                    for _ in 0..k {
                        next_tag += 1;
                        batch.push((ActivityKind::flow(vec![a, b], bytes), next_tag));
                    }
                }
                3 => {
                    // k equal ops on a fresh disk with power-of-two
                    // concurrency ≥ k: all served at the dyadic BW/k.
                    let disk = p.add_disk(BW, 8);
                    let bytes = m as f64 * (BW / k as f64);
                    for _ in 0..k {
                        next_tag += 1;
                        batch.push((ActivityKind::io(disk, bytes), next_tag));
                    }
                }
                4 => {
                    // Computes at a power-of-two rate, integer duration.
                    let rate = (1u64 << rng.gen_range(0u32..5)) as f64;
                    for _ in 0..k {
                        next_tag += 1;
                        batch.push((ActivityKind::compute(rate, m as f64 * rate), next_tag));
                    }
                }
                _ => {
                    // Timers with integer delays / deadlines, plus the
                    // occasional unconstrained (empty-route) flow.
                    for _ in 0..k {
                        next_tag += 1;
                        let kind = match rng.gen_range(0u32..3) {
                            0 => ActivityKind::timer(rng.gen_range(0u64..10) as f64),
                            1 => ActivityKind::timer_at(rng.gen_range(0u64..30) as f64),
                            _ => ActivityKind::flow(vec![], rng.gen_range(0u64..1000) as f64),
                        };
                        batch.push((kind, next_tag));
                    }
                }
            }
        }
        batches.push(batch);
    }
    (p, batches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lock-step run over an exactly-representable workload: every
    /// completion must agree bitwise in time, id, and tag, in the same
    /// order, with batches released mid-run after identical completions.
    #[test]
    fn exact_workloads_match_reference_bitwise(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (platform, mut batches) = build_workload(&mut rng);
        let mut opt = Engine::new(platform.clone());
        let mut refr = ReferenceEngine::new(platform);

        batches.reverse(); // pop from the back in release order
        let first = batches.pop().expect("at least one batch");
        opt.add_activities(first.clone());
        refr.add_activities(first);

        let mut done = 0usize;
        loop {
            match (opt.step(), refr.step()) {
                (None, None) => {
                    // Drained with batches pending: release the next one
                    // (both engines sit at the same integer time).
                    match batches.pop() {
                        Some(batch) => {
                            opt.add_activities(batch.clone());
                            refr.add_activities(batch);
                            continue;
                        }
                        None => break,
                    }
                }
                (Some(o), Some(r)) => {
                    // Bitwise: f64 `==`, no tolerance.
                    prop_assert_eq!(o, r, "completion {} diverged", done);
                    done += 1;
                }
                (o, r) => {
                    return Err(TestCaseError::fail(format!(
                        "one engine drained early: optimized {o:?}, reference {r:?}"
                    )));
                }
            }
            // Same-completion-count release points keep both engines'
            // add times identical (and integral: completions happen at
            // integer times by construction).
            if done.is_multiple_of(4) {
                if let Some(batch) = batches.pop() {
                    opt.add_activities(batch.clone());
                    refr.add_activities(batch);
                }
            }
        }
        prop_assert_eq!(opt.time().to_bits(), refr.time().to_bits(),
            "final times diverge: {} vs {}", opt.time(), refr.time());
    }
}
