//! Oracle property test: the optimized incremental [`Engine`] must emit
//! the same completion sequence as the full-recompute
//! [`ReferenceEngine`] on randomized mixed workloads, including batches
//! of activities added mid-run.
//!
//! The two engines do their floating-point arithmetic in different orders
//! (the reference rewrites every `remaining` at every event; the
//! optimized engine materializes progress lazily, only on rate changes),
//! so completion times agree only up to accumulated rounding noise, and
//! near-simultaneous completions may swap order. The comparison therefore
//! checks times element-wise within a relative tolerance, and compares
//! the sets of (activity, tag) per *cluster* of indistinguishable times
//! rather than demanding a bit-identical order.

use dessim::{ActivityKind, Completion, DiskId, Engine, LinkId, Platform, ReferenceEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative tolerance for comparing completion times across engines.
const TOL: f64 = 1e-6;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

fn build_platform(rng: &mut StdRng) -> (Platform, Vec<LinkId>, Vec<DiskId>) {
    let mut p = Platform::new();
    let links: Vec<LinkId> = (0..rng.gen_range(2usize..6))
        .map(|_| {
            let lat = rng.gen_range(0.0..0.05);
            // Mix zero-latency links in so Active-on-add flows occur.
            p.add_link(
                rng.gen_range(10.0..100.0),
                if lat < 0.02 { 0.0 } else { lat },
            )
        })
        .collect();
    let disks: Vec<DiskId> = (0..rng.gen_range(1usize..3))
        .map(|_| p.add_disk(rng.gen_range(20.0..80.0), rng.gen_range(1u32..4)))
        .collect();
    (p, links, disks)
}

fn random_kind(rng: &mut StdRng, links: &[LinkId], disks: &[DiskId]) -> ActivityKind {
    match rng.gen_range(0u32..12) {
        0..=2 => ActivityKind::compute(rng.gen_range(1.0..50.0), rng.gen_range(0.0..100.0)),
        3..=4 => {
            let d = disks[rng.gen_range(0..disks.len())];
            ActivityKind::io(d, rng.gen_range(0.0..200.0))
        }
        5..=8 => {
            let hops = rng.gen_range(1usize..=3.min(links.len()));
            let route = (0..hops)
                .map(|_| links[rng.gen_range(0..links.len())])
                .collect();
            ActivityKind::flow(route, rng.gen_range(0.0..300.0))
        }
        9 => ActivityKind::flow(vec![], rng.gen_range(0.0..1e9)),
        10 => ActivityKind::timer(rng.gen_range(0.0..5.0)),
        _ => ActivityKind::timer_at(rng.gen_range(0.0..20.0)),
    }
}

/// Compare two completion sequences: same length, element-wise close
/// times, and identical (id, tag) multisets within each cluster of
/// indistinguishable times.
fn compare_sequences(opt: &[Completion], refr: &[Completion]) -> Result<(), TestCaseError> {
    prop_assert_eq!(opt.len(), refr.len(), "completion counts differ");
    for (k, (o, r)) in opt.iter().zip(refr).enumerate() {
        prop_assert!(
            close(o.time, r.time),
            "completion {k}: optimized at {} vs reference at {}",
            o.time,
            r.time
        );
    }
    let mut i = 0;
    while i < opt.len() {
        // Extend the cluster while consecutive times are indistinguishable.
        let mut j = i + 1;
        while j < opt.len() && close(opt[j].time, opt[j - 1].time) {
            j += 1;
        }
        let mut a: Vec<_> = opt[i..j].iter().map(|c| (c.id, c.tag)).collect();
        let mut b: Vec<_> = refr[i..j].iter().map(|c| (c.id, c.tag)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "cluster at t~{} differs", opt[i].time);
        i = j;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both engines, fed the identical workload (initial batch plus
    /// batches released after every few completions), produce the same
    /// completion sequence and final virtual time.
    #[test]
    fn incremental_engine_matches_reference(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (platform, links, disks) = build_platform(&mut rng);
        let mut opt = Engine::new(platform.clone());
        let mut refr = ReferenceEngine::new(platform);

        let mut next_tag = 0u64;
        let mut make_batch = |rng: &mut StdRng, n: usize| -> Vec<(ActivityKind, u64)> {
            (0..n)
                .map(|_| {
                    next_tag += 1;
                    (random_kind(rng, &links, &disks), next_tag)
                })
                .collect()
        };

        let n0 = rng.gen_range(10usize..40);
        let initial = make_batch(&mut rng, n0);
        opt.add_activities(initial.clone());
        refr.add_activities(initial);

        let mut batches_left = rng.gen_range(2usize..6);
        let mut opt_done = Vec::new();
        let mut refr_done = Vec::new();
        loop {
            match (opt.step(), refr.step()) {
                (None, None) => break,
                (Some(o), Some(r)) => {
                    opt_done.push(o);
                    refr_done.push(r);
                }
                (o, r) => {
                    return Err(TestCaseError::fail(format!(
                        "one engine drained early: optimized {o:?}, reference {r:?}"
                    )));
                }
            }
            // Mid-run releases: both engines get the same batch after the
            // same completion, exercising incremental re-solves against
            // already-in-flight activities.
            if batches_left > 0 && opt_done.len() % 5 == 0 {
                batches_left -= 1;
                let n = rng.gen_range(2usize..8);
                let batch = make_batch(&mut rng, n);
                opt.add_activities(batch.clone());
                refr.add_activities(batch);
            }
        }
        compare_sequences(&opt_done, &refr_done)?;
        prop_assert!(close(opt.time(), refr.time()),
            "final times: {} vs {}", opt.time(), refr.time());
    }
}
