//! Observability integration tests: the JSONL trace a real sweep records
//! (golden schema), the guarantee that tracing never perturbs sweep
//! results, and span collection under the work-stealing pool.

mod common;

use common::ToyFamily;
use lodsel::prelude::*;
use obs::{Counter, Hist, TraceRecorder};
use serde::Value;
use simcal::prelude::Budget;
use std::sync::{Arc, Mutex, MutexGuard};

fn config() -> SweepConfig {
    SweepConfig::per_run(Budget::Evaluations(8), 2, 42)
}

/// The obs recorder is process-global; tests that install one serialize
/// on this lock (and tolerate poisoning from an unrelated panic).
fn global_recorder_lock() -> MutexGuard<'static, ()> {
    static GLOBAL: Mutex<()> = Mutex::new(());
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one toy sweep with a fresh global recorder installed; return the
/// recorder (uninstalled again) and the sweep outcome.
fn traced_sweep() -> (Arc<TraceRecorder>, SweepOutcome) {
    let rec = Arc::new(TraceRecorder::new());
    obs::install(rec.clone());
    let outcome = run_sweep(&ToyFamily::new(false), &config(), None);
    obs::uninstall();
    (rec, outcome)
}

#[test]
fn recorded_trace_matches_the_documented_schema() {
    let _guard = global_recorder_lock();
    let (rec, _) = traced_sweep();
    let text = rec.to_jsonl();

    // Every line is standalone JSON; the first is the versioned header.
    let lines: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("trace line parses as JSON"))
        .collect();
    assert_eq!(
        lines[0].get("schema").and_then(Value::as_str),
        Some(obs::trace::SCHEMA_NAME)
    );
    assert_eq!(
        lines[0].get("version").and_then(Value::as_f64),
        Some(obs::trace::SCHEMA_VERSION as f64)
    );

    let mut span_names = Vec::new();
    let mut counter_names = Vec::new();
    let mut hist_names = Vec::new();
    for line in &lines[1..] {
        let event = line.get("event").and_then(Value::as_str);
        let name = line
            .get("name")
            .and_then(Value::as_str)
            .expect("event line has a name")
            .to_string();
        match event {
            Some("span") => {
                // Required span fields; all times are epoch-relative integers.
                for field in ["id", "parent", "thread", "start_us", "dur_us"] {
                    assert!(line.get(field).is_some(), "span {name} missing {field}");
                }
                span_names.push(name);
            }
            Some("counter") => {
                assert!(line.get("value").is_some(), "counter {name} missing value");
                counter_names.push(name);
            }
            Some("histogram") => {
                for field in ["count", "sum_secs", "bounds_secs", "counts"] {
                    assert!(
                        line.get(field).is_some(),
                        "histogram {name} missing {field}"
                    );
                }
                hist_names.push(name);
            }
            _ => panic!("unrecognized trace line: {line:?}"),
        }
    }

    // Phase and pool spans of the sweep hierarchy are all present.
    for name in ["sweep", "plan", "calibrate", "evaluate", "reduce", "run"] {
        assert!(span_names.iter().any(|n| n == name), "no {name} span");
    }
    // All counters are emitted (zeros included), each exactly once.
    let mut expected: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    expected.sort_unstable();
    counter_names.sort_unstable();
    assert_eq!(counter_names, expected);
    assert_eq!(hist_names, vec![Hist::EvalLatency.name()]);

    // The file round-trips through the --trace-report parser and the
    // per-phase rows cover the root span's wall time.
    let trace = parse_trace(&text).expect("schema round-trips");
    assert_eq!(trace.version, obs::trace::SCHEMA_VERSION);
    let report = render_report(&trace);
    assert!(report.contains("root span: sweep"));
    for phase in ["plan", "calibrate", "evaluate", "reduce"] {
        assert!(report.contains(phase), "report missing phase {phase}");
    }
}

#[test]
fn tracing_does_not_change_the_sweep_digest() {
    let _guard = global_recorder_lock();

    obs::uninstall();
    let untraced = run_sweep(&ToyFamily::new(true), &config(), None);
    let (_, traced) = traced_sweep();
    // ToyFamily::new(true) vs (false): evaluation is perturbed by the
    // calibrated value only in the first, so compare like with like.
    let traced_dependent = {
        let rec = Arc::new(TraceRecorder::new());
        obs::install(rec.clone());
        let outcome = run_sweep(&ToyFamily::new(true), &config(), None);
        obs::uninstall();
        outcome
    };

    assert_eq!(untraced.digest(), traced_dependent.digest());
    // And the independent toy geometry agrees on the decision either way.
    assert_eq!(
        untraced.recommendation.unwrap().chosen,
        traced.recommendation.unwrap().chosen
    );
}

#[test]
fn pool_spans_close_and_parent_correctly_under_the_pool() {
    let _guard = global_recorder_lock();
    let (rec, _) = traced_sweep();
    let spans = rec.spans();

    // Every span the sweep opened was closed (end recorded after start).
    assert!(!spans.is_empty());
    for s in &spans {
        assert!(s.end_ns >= s.start_ns, "span {} never closed", s.name);
    }

    let sweep = spans.iter().find(|s| s.name == "sweep").unwrap();
    let calibrate = spans
        .iter()
        .find(|s| s.name == "calibrate" && s.parent == Some(sweep.id))
        .unwrap();

    // 4 units x 2 restarts fanned onto the pool, each under "calibrate"
    // even when executed by a different worker thread.
    let runs: Vec<_> = spans.iter().filter(|s| s.name == "run").collect();
    assert_eq!(runs.len(), 8);
    for r in &runs {
        assert_eq!(r.parent, Some(calibrate.id), "run not under calibrate");
        assert!(r.start_ns >= calibrate.start_ns && r.end_ns <= calibrate.end_ns);
    }

    // The pool really ran them (thread ids recorded per span), and the
    // kernel/evaluator counters flowed through the same recorder.
    let threads: std::collections::HashSet<u64> = runs.iter().map(|s| s.thread).collect();
    assert!(!threads.is_empty());
    assert!(rec.counter_value(Counter::EvalCacheMisses) > 0);
    assert!(rec.histogram(Hist::EvalLatency).count > 0);
}
