//! Sweep-level tests for the data-grid family: the golden digest of a
//! tiny sweep is pinned bit-for-bit, the recommendation is finite over
//! all 8 versions, and the resumability contract (interrupt after k
//! units, resume, equals fresh) holds with a *real* simulator family —
//! not just the toy one — behind the ledger.

mod common;

use common::tmp_ledger;
use gridsim::prelude::{dataset, GridEmulatorConfig, GridSpec, GridVersion};
use lodsel::prelude::*;
use simcal::prelude::{Agg, Budget, ElementMix, StructuredLoss};

/// A deliberately tiny family so the sweep finishes in well under a
/// second: 16-job workloads, one repetition, all 8 versions.
fn tiny_family(seed: u64) -> GridFamily {
    let cfg = GridEmulatorConfig::default();
    let specs = [
        GridSpec {
            jobs: 16,
            files: 24,
            mean_interarrival: 4.0,
            seed,
            ..GridSpec::default()
        },
        GridSpec {
            jobs: 16,
            files: 24,
            mean_interarrival: 12.0,
            skew: 1.8,
            seed: seed ^ 0x100,
            ..GridSpec::default()
        },
    ];
    let train = dataset(&specs[..1], &cfg, 1, seed);
    let test = dataset(&specs[1..], &cfg, 1, seed);
    GridFamily::new(
        GridVersion::all(),
        train,
        test,
        StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3"),
        "L3",
    )
}

fn config() -> SweepConfig {
    SweepConfig::per_run(Budget::Evaluations(8), 2, 42)
}

#[test]
fn grid_sweep_digest_is_pinned_bit_for_bit() {
    // Pinned at introduction. Any change to the workload generator, the
    // simulator, the calibration pipeline, or the digest itself shows up
    // here — bump deliberately, never accidentally.
    let outcome = run_sweep(&tiny_family(42), &config(), None);
    assert!(outcome.complete);
    assert!(outcome.failures.is_empty());
    assert_eq!(outcome.digest(), "4d7808acb8091cf5");
}

#[test]
fn grid_sweep_recommends_over_all_eight_versions() {
    let outcome = run_sweep(&tiny_family(42), &config(), None);
    assert_eq!(outcome.versions.len(), 8);
    for v in &outcome.versions {
        assert!(v.test_error.is_finite());
        assert!(
            v.work_units > 0,
            "{}: deterministic cost must be counted",
            v.label
        );
    }
    let rec = outcome.recommendation.expect("complete sweep recommends");
    assert!(rec.best_error.is_finite());
    assert_eq!(rec.scores.len(), 8);
    assert!(
        outcome.versions.iter().any(|v| v.label == rec.chosen),
        "recommendation must name a swept version"
    );
}

#[test]
fn grid_resume_equals_fresh_bit_for_bit() {
    let fresh = run_sweep(&tiny_family(42), &config(), None);

    for k in [0usize, 3, 5] {
        let path = tmp_ledger(&format!("grid-resume-{k}"));
        let mut interrupted_cfg = config();
        interrupted_cfg.max_units = Some(k);
        let ledger = Ledger::open(&path).unwrap();
        let interrupted = run_sweep(&tiny_family(42), &interrupted_cfg, Some(&ledger));
        assert!(!interrupted.complete);
        assert_eq!(interrupted.versions.len(), k);
        drop(ledger);

        let reopened = Ledger::open(&path).unwrap();
        let resumed = run_sweep(&tiny_family(42), &config(), Some(&reopened));
        drop(reopened);

        assert_eq!(resumed.digest(), fresh.digest(), "k = {k}");
        assert_eq!(resumed.recommendation, fresh.recommendation, "k = {k}");
        let _ = std::fs::remove_file(&path);
    }
}
