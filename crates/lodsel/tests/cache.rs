//! The persistent-cache contract at the sweep level: a repeated sweep
//! against the same cache directory is served entirely from disk (zero
//! objective invocations, bit-for-bit identical digest), and warm-started
//! calibrations change only how the budget is spent — never the losses
//! recorded at shared calibration points.

mod common;

use common::ToyFamily;
use lodsel::prelude::*;
use simcal::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The cache directory is process-global state; serialize the tests that
/// install one.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

/// Collision-free temp cache directory (tests run concurrently).
fn tmp_cache_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lodsel-cache-{tag}-{}-{n}", std::process::id()))
}

fn config(dir: &std::path::Path) -> SweepConfig {
    SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: Budget::Evaluations(6),
        },
        restarts: 2,
        seed: 42,
        epsilon: 0.1,
        max_units: None,
        max_fault_retries: 2,
        cache: Some(dir.to_path_buf()),
    }
}

#[test]
fn repeated_sweep_is_served_entirely_from_the_disk_cache() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let dir = tmp_cache_dir("sweep-twice");

    let cold_family = ToyFamily::new(true);
    let cold = run_sweep(&cold_family, &config(&dir), None);
    assert!(
        cold_family.objective_evaluations() > 0,
        "the first pass must really evaluate"
    );

    // Second pass, fresh family, same cache directory and no ledger:
    // every calibration re-runs, but every evaluation replays from disk.
    let warm_family = ToyFamily::new(true);
    let warm = run_sweep(&warm_family, &config(&dir), None);
    assert_eq!(
        warm_family.objective_evaluations(),
        0,
        "second pass must not invoke the objective at all"
    );
    assert_eq!(
        warm_family.calibration_runs(),
        cold_family.calibration_runs(),
        "without a ledger, every calibration still runs (against the cache)"
    );
    assert_eq!(warm.digest(), cold.digest(), "replay must be bit-for-bit");

    // The scope restored the process-global state.
    assert!(simcal::cache::installed().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_changes_only_budget_spent_never_recorded_losses() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let dir = tmp_cache_dir("warm-vs-fresh");
    simcal::cache::install(&dir);

    let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
    let f = |x: f64| (x - 0.6).powi(2);
    let fingerprint = CacheFingerprint::of("toy-warm", "target", 0x7a57);
    let obj = FnObjective::new(space, move |c: &Calibration| f(c.values[0]))
        .with_cache_fingerprint(fingerprint);
    let calibrator = Calibrator::bo_gp(Budget::Evaluations(30), 9);

    let fresh = calibrator.calibrate(&obj);
    // Warm observations from a "neighbouring" calibration: near the
    // optimum, plus one deliberately wrong pair the fit must survive.
    let warm_points = vec![(vec![0.62], f(0.62)), (vec![0.5], 0.5)];
    let algorithm = BayesianOpt::new(SurrogateKind::GaussianProcess).with_warm_start(warm_points);
    let warmed = calibrator
        .try_calibrate_with(&algorithm, &obj)
        .expect("warm-started calibration must find a finite loss");
    simcal::cache::uninstall();

    // Same budget consumed; both incumbents really evaluated.
    assert_eq!(warmed.evaluations, fresh.evaluations);
    assert_eq!(
        warmed.loss.to_bits(),
        f(warmed.calibration.values[0]).to_bits(),
        "the warm incumbent must come from an evaluated point, not a warm pair"
    );

    // Both runs recorded into one shard. Every surviving entry still
    // holds the objective's own loss — the warm start never rewrote a
    // recorded loss, at shared keys or anywhere else.
    let recorded = simcal::cache::load_finite_observations(&dir, fingerprint, 9);
    assert!(!recorded.is_empty());
    for (values, loss) in &recorded {
        assert_eq!(
            loss.to_bits(),
            f(values[0]).to_bits(),
            "cached loss at x={} drifted",
            values[0]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
