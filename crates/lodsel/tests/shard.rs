//! Sharded-sweep determinism and shard-merge robustness.
//!
//! The golden property pinned here is the one the calibd daemon relies
//! on: an N-shard execution merged back together produces a
//! `SweepOutcome` digest bit-for-bit equal to a single-process
//! `run_sweep`, with zero calibration re-runs during the final replay.

mod common;

use common::{tmp_ledger, ToyFamily};
use lodsel::prelude::*;
use lodsel::shard::{merge_shards, run_shard, run_sweep_sharded, shard_path, ShardError};
use simcal::prelude::Budget;

fn toy_config(seed: u64) -> SweepConfig {
    SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: Budget::Evaluations(4),
        },
        restarts: 2,
        seed,
        epsilon: 0.1,
        max_units: None,
        max_fault_retries: 2,
        cache: None,
    }
}

/// A collision-free temp directory for a sharded sweep.
fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = tmp_ledger(tag).with_extension("d");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sharded_digest_equals_single_process_digest() {
    // Single-process reference run.
    let reference_family = ToyFamily::new(true);
    let config = toy_config(11);
    let reference = run_sweep(&reference_family, &config, None);
    let plan_runs = 4 * 2; // units × restarts
    assert_eq!(reference_family.calibration_runs(), plan_runs);

    for shards in [1, 2, 3, 8] {
        let dir = tmp_dir(&format!("golden-{shards}"));
        let family = ToyFamily::new(true);
        let outcome = run_sweep_sharded(&family, &config, shards, &dir).unwrap();
        // Exactly the full plan was calibrated once across all shards —
        // the final merged replay re-ran nothing.
        assert_eq!(
            family.calibration_runs(),
            plan_runs,
            "{shards}-shard run must calibrate each plan entry exactly once"
        );
        assert_eq!(
            outcome.digest(),
            reference.digest(),
            "{shards}-shard digest must be bit-for-bit equal to single-process"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn interrupted_shard_resumes_without_recalibrating_completed_runs() {
    let config = toy_config(23);
    let dir = tmp_dir("resume");

    // "First process": complete shard 0 of 2, then die before shard 1.
    let first = ToyFamily::new(true);
    let done = run_shard(&first, &config, 0, 2, &dir).unwrap();
    assert_eq!(done, 4, "shard 0 owns half of the 8-run plan");
    assert_eq!(first.calibration_runs(), 4);

    // "Restarted process": re-runs both shards from the same directory.
    let second = ToyFamily::new(true);
    assert_eq!(run_shard(&second, &config, 0, 2, &dir).unwrap(), 0);
    assert_eq!(
        second.calibration_runs(),
        0,
        "shard 0 is fully checkpointed; resume must not re-consume budget"
    );
    assert_eq!(run_shard(&second, &config, 1, 2, &dir).unwrap(), 4);
    assert_eq!(second.calibration_runs(), 4);

    let merged = merge_shards(
        &[shard_path(&dir, 0), shard_path(&dir, 1)],
        &dir.join("merged.jsonl"),
    )
    .unwrap();
    let outcome = run_sweep(&second, &config, Some(&merged));
    assert_eq!(
        second.calibration_runs(),
        4,
        "final replay serves every run from a checkpoint"
    );

    let fresh = ToyFamily::new(true);
    assert_eq!(outcome.digest(), run_sweep(&fresh, &config, None).digest());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_shard_tail_heals_and_merge_succeeds() {
    let config = toy_config(31);
    let dir = tmp_dir("torn");
    let family = ToyFamily::new(true);
    run_shard(&family, &config, 0, 2, &dir).unwrap();
    run_shard(&family, &config, 1, 2, &dir).unwrap();

    // Simulate a kill mid-append on shard 1: a torn trailing line.
    let path1 = shard_path(&dir, 1);
    let intact = Ledger::read(&path1).unwrap().len();
    let mut text = std::fs::read_to_string(&path1).unwrap();
    text.push_str("{\"RunCompleted\":{\"record\":{\"key\":99,\"un");
    std::fs::write(&path1, &text).unwrap();

    // The torn fragment is skipped; every intact record still merges.
    assert_eq!(Ledger::read(&path1).unwrap().len(), intact);
    let merged = merge_shards(&[shard_path(&dir, 0), path1], &dir.join("merged.jsonl")).unwrap();
    let runs = merged.checkpoints().0.len();
    assert_eq!(runs, 8, "all intact run checkpoints survive a torn tail");

    let outcome = run_sweep(&family, &config, Some(&merged));
    let fresh = ToyFamily::new(true);
    assert_eq!(outcome.digest(), run_sweep(&fresh, &config, None).digest());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_foreign_fingerprints_with_typed_error() {
    let dir = tmp_dir("foreign");
    let family = ToyFamily::new(true);
    // Two shards from sweeps that differ only by seed: different plans,
    // different fingerprints.
    run_shard(&family, &toy_config(1), 0, 2, &dir).unwrap();
    let other = shard_path(&dir, 9);
    std::fs::rename(
        {
            let other_dir = tmp_dir("foreign-other");
            run_shard(&family, &toy_config(2), 1, 2, &other_dir).unwrap();
            shard_path(&other_dir, 1)
        },
        &other,
    )
    .unwrap();

    let err = match merge_shards(
        &[shard_path(&dir, 0), other.clone()],
        &dir.join("merged.jsonl"),
    ) {
        Err(e) => e,
        Ok(_) => panic!("merging foreign shards must fail"),
    };
    match err {
        ShardError::FingerprintMismatch {
            path,
            expected,
            found,
        } => {
            assert_eq!(path, other);
            assert_ne!(expected, found);
        }
        other => panic!("expected FingerprintMismatch, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_headerless_files_with_typed_error() {
    let dir = tmp_dir("headerless");
    // A plain (unsharded) sweep ledger has no ShardStarted header.
    let plain = dir.join("plain.jsonl");
    let family = ToyFamily::new(true);
    let ledger = Ledger::open(&plain).unwrap();
    run_sweep(&family, &toy_config(5), Some(&ledger));
    drop(ledger);

    let err = match merge_shards(std::slice::from_ref(&plain), &dir.join("merged.jsonl")) {
        Err(e) => e,
        Ok(_) => panic!("merging a headerless file must fail"),
    };
    match err {
        ShardError::MissingHeader { path } => assert_eq!(path, plain),
        other => panic!("expected MissingHeader, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_shard_refuses_a_shard_file_from_another_sweep() {
    let dir = tmp_dir("stale");
    let family = ToyFamily::new(true);
    run_shard(&family, &toy_config(7), 0, 2, &dir).unwrap();
    let err = run_shard(&family, &toy_config(8), 0, 2, &dir).unwrap_err();
    assert!(matches!(err, ShardError::FingerprintMismatch { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_is_idempotent() {
    let config = toy_config(13);
    let dir = tmp_dir("idempotent");
    let family = ToyFamily::new(true);
    run_shard(&family, &config, 0, 2, &dir).unwrap();
    run_shard(&family, &config, 1, 2, &dir).unwrap();
    let paths = [shard_path(&dir, 0), shard_path(&dir, 1)];
    let target = dir.join("merged.jsonl");
    let first = merge_shards(&paths, &target).unwrap().events().len();
    let second = merge_shards(&paths, &target).unwrap().events().len();
    assert_eq!(first, second, "re-merging must not duplicate events");
    let _ = std::fs::remove_dir_all(&dir);
}
