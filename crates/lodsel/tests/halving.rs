//! Successive-halving properties: the pinned golden digest of an SH
//! sweep, kill-and-resume-mid-rung bit-for-bit equality, the
//! fewer-evaluations-same-recommendation contract the ablation relies
//! on, and subset-loss unbiasedness on the real workflow objective.

mod common;

use common::{tmp_ledger, ToyFamily};
use lodsel::families::wf::WfFamily;
use lodsel::prelude::*;
use proptest::prelude::*;
use simcal::prelude::{Agg, Budget, ElementMix, Objective, StructuredLoss, SubsampledObjective};
use wfsim::prelude::{
    dataset_for, objective, AppKind, DatasetOptions, SimulatorVersion, WfScenario,
    WorkflowSimulator,
};

/// 8 runs (4 units × 2 restarts) under a 48-evaluation total: a 4-rung
/// ladder with entrants 8/4/2/1, per-run budgets 1/3/6/12, and a planned
/// spend of 44 evaluations.
fn sh_config() -> SweepConfig {
    SweepConfig {
        budget: BudgetPolicy::SuccessiveHalving {
            total: 48,
            eta: 2,
            min_scenarios: 1,
        },
        restarts: 2,
        seed: 42,
        epsilon: 0.1,
        max_units: None,
        max_fault_retries: 2,
        cache: None,
    }
}

#[test]
fn sh_schedule_is_the_documented_ladder() {
    let s = ShSchedule::plan(8, 48, 2, 1).unwrap();
    let entrants: Vec<usize> = s.rungs.iter().map(|r| r.survivors).collect();
    let budgets: Vec<usize> = s.rungs.iter().map(|r| r.budget).collect();
    let denoms: Vec<usize> = s.rungs.iter().map(|r| r.scenario_denom).collect();
    assert_eq!(entrants, vec![8, 4, 2, 1]);
    assert_eq!(budgets, vec![1, 3, 6, 12]);
    assert_eq!(denoms, vec![8, 4, 2, 1], "final rung is always full set");
    assert_eq!(s.total_evaluations(), 44);

    // Starved totals fail typed with the exact threshold.
    assert_eq!(
        ShSchedule::plan(8, 31, 2, 1),
        Err(SweepError::BudgetTooSmall {
            total: 31,
            runs: 8,
            needed: 32,
        })
    );
    assert!(ShSchedule::plan(8, 32, 2, 1).is_ok());
}

#[test]
fn sh_digest_is_pinned_bit_for_bit() {
    // Captured when successive halving landed. The SH report extends the
    // digest input, so any drift in subset membership, rung budgets, or
    // promotion order shows up here.
    let outcome = run_sweep(&ToyFamily::new(true), &sh_config(), None);
    let report = outcome.sh.as_ref().expect("SH sweeps carry a report");
    assert_eq!(report.planned_evaluations, 44);
    assert_eq!(report.rungs.len(), 4);
    let entrants: Vec<usize> = report.rungs.iter().map(|r| r.entrants).collect();
    let promoted: Vec<usize> = report.rungs.iter().map(|r| r.promoted).collect();
    assert_eq!(entrants, vec![8, 4, 2, 1]);
    assert_eq!(promoted, vec![4, 2, 1, 1]);
    assert!(report.rungs.iter().all(|r| r.failed == 0));
    assert_eq!(outcome.digest(), "1ead715d560ee4d4");

    // And stable across runs, like every digest.
    let again = run_sweep(&ToyFamily::new(true), &sh_config(), None);
    assert_eq!(again.digest(), outcome.digest());
}

#[test]
fn sh_reaches_the_fixed_budget_recommendation_with_fewer_evaluations() {
    // The ablation's claim in miniature: a fixed shared budget of 96
    // evaluations (12 per run) and an SH ladder capped at half that
    // total agree on the recommendation, with SH spending strictly less.
    let fixed_family = ToyFamily::new(false);
    let fixed_config = SweepConfig {
        budget: BudgetPolicy::TotalEvaluations { total: 96 },
        ..sh_config()
    };
    let fixed = run_sweep(&fixed_family, &fixed_config, None);
    let sh_family = ToyFamily::new(false);
    let sh = run_sweep(&sh_family, &sh_config(), None);

    let fixed_rec = fixed.recommendation.expect("fixed sweep completes");
    let sh_rec = sh.recommendation.expect("SH sweep completes");
    assert_eq!(sh_rec.chosen, fixed_rec.chosen);
    assert_eq!(sh_rec.chosen, "v2");
    assert!(
        sh_family.objective_evaluations() < fixed_family.objective_evaluations(),
        "SH spent {} objective evaluations, fixed spent {}",
        sh_family.objective_evaluations(),
        fixed_family.objective_evaluations()
    );
}

#[test]
fn kill_and_resume_mid_rung_equals_fresh_at_every_prefix() {
    let fresh_family = ToyFamily::new(true);
    let fresh = run_sweep(&fresh_family, &sh_config(), None);

    // One complete recorded execution to slice prefixes from.
    let recorded = tmp_ledger("halving-recorded");
    {
        let ledger = Ledger::open(&recorded).unwrap();
        run_sweep(&ToyFamily::new(true), &sh_config(), Some(&ledger));
    }
    let text = std::fs::read_to_string(&recorded).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let _ = std::fs::remove_file(&recorded);

    // Cut the ledger after every prefix — inside rung records, between a
    // rung's records and its decisions, halfway through a decision set —
    // and resume. Sealed decisions must replay, unsealed rungs must
    // re-rank to the identical field, and the digest must never move.
    for cut in (0..=lines.len()).step_by(2) {
        let path = tmp_ledger("halving-resume");
        let mut prefix: String = lines[..cut].join("\n");
        if cut > 0 {
            prefix.push('\n');
        }
        std::fs::write(&path, prefix).unwrap();

        let resumed_family = ToyFamily::new(true);
        let ledger = Ledger::open(&path).unwrap();
        let resumed = run_sweep(&resumed_family, &sh_config(), Some(&ledger));
        drop(ledger);
        assert_eq!(
            resumed.digest(),
            fresh.digest(),
            "resume from a {cut}-line prefix diverged"
        );
        assert_eq!(resumed.recommendation, fresh.recommendation);
        assert!(
            resumed_family.calibration_runs() <= fresh_family.calibration_runs(),
            "resume must never exceed a fresh sweep's calibration work"
        );

        // A second resume finds every rung checkpointed and runs nothing.
        let idle_family = ToyFamily::new(true);
        let again = Ledger::open(&path).unwrap();
        let third = run_sweep(&idle_family, &sh_config(), Some(&again));
        assert_eq!(idle_family.calibration_runs(), 0);
        assert_eq!(third.digest(), fresh.digest());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn sh_ledger_records_rungs_and_decisions() {
    let path = tmp_ledger("halving-ledger");
    let ledger = Ledger::open(&path).unwrap();
    run_sweep(&ToyFamily::new(true), &sh_config(), Some(&ledger));
    drop(ledger);

    let status = ledger_status(&Ledger::read(&path).unwrap());
    // 8 + 4 + 2 + 1 rung executions; 8 + 4 + 2 decisions (the final rung
    // decides nothing); promotions are the next rung's entrants.
    assert_eq!(status.rungs_done, 15);
    assert_eq!(status.promotions, 7);
    assert_eq!(status.eliminations, 7);
    assert_eq!(status.runs_done, 0, "SH runs checkpoint as rungs, not runs");
    assert!(status.completed.is_some());
    let _ = std::fs::remove_file(&path);
}

/// A handful of real Montage scenarios: one workflow shape at four
/// worker counts.
fn tiny_wf_scenarios() -> Vec<WfScenario> {
    let opts = DatasetOptions {
        repetitions: 1,
        seed: 3,
        size_indices: vec![0],
        work_indices: vec![1],
        footprint_indices: vec![1],
        worker_counts: vec![1, 2, 4, 6],
        ..Default::default()
    };
    WfScenario::from_records(&dataset_for(AppKind::Montage, &opts))
}

/// All k-combinations of 0..n, in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k == 0 || k > n {
        return out;
    }
    let mut combo: Vec<usize> = (0..k).collect();
    loop {
        out.push(combo.clone());
        let mut i = k;
        while i > 0 && combo[i - 1] == i - 1 + n - k {
            i -= 1;
        }
        if i == 0 {
            return out;
        }
        combo[i - 1] += 1;
        for j in i..k {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The unbiasedness contract on the *real* workflow objective, not a
    /// toy: over every C(n, k) scenario subset, the mean of the subset
    /// losses equals the full-set loss for the mean-aggregating L1 the
    /// paper selects — at any calibration in the version's space.
    #[test]
    fn wf_subset_losses_are_unbiased(
        unit in proptest::collection::vec(0.0f64..=1.0, 16),
        high_detail in prop_oneof![Just(true), Just(false)],
        k in 1usize..=4,
    ) {
        let version = if high_detail {
            SimulatorVersion::highest_detail()
        } else {
            SimulatorVersion::lowest_detail()
        };
        let scenarios = tiny_wf_scenarios();
        prop_assert_eq!(scenarios.len(), 4);
        let sim = WorkflowSimulator::new(version);
        let loss = StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1");
        let space = version.parameter_space();
        let calibration = space.denormalize(&unit[..space.dim()]);

        let full = objective(&sim, &scenarios, loss.clone());
        let full_loss = full.loss(&calibration);
        prop_assert!(full_loss.is_finite());

        let mut total = 0.0;
        let mut count = 0usize;
        for combo in combinations(scenarios.len(), k) {
            let sub = SubsampledObjective::new(
                &sim,
                &scenarios,
                &combo,
                loss.clone(),
                version.parameter_space(),
            );
            total += sub.loss(&calibration);
            count += 1;
        }
        let expected = total / count as f64;
        let tolerance = 1e-9 * full_loss.abs().max(1.0);
        prop_assert!(
            (expected - full_loss).abs() <= tolerance,
            "k={}: E[subset loss]={} != full {}", k, expected, full_loss
        );
    }
}

/// The family-level subset path stays bit-for-bit consistent with the
/// schedule: a full-fidelity rung delegates to the plain calibration (so
/// it shares its cache entries), and the subset path is deterministic.
#[test]
fn wf_calibrate_at_full_fidelity_matches_calibrate() {
    let family = WfFamily::paper(true, 7);
    let unit = &family.units()[0];
    let budget = Budget::Evaluations(4);
    let plain = family.calibrate(unit, budget, 11);
    let full = family.calibrate_at(unit, budget, 11, &simcal::prelude::Fidelity::full());
    assert_eq!(plain.calibration, full.calibration);
    assert_eq!(plain.loss, full.loss);

    let fidelity = simcal::prelude::Fidelity {
        rung: 0,
        scenario_denom: 4,
        min_scenarios: 1,
    };
    let a = family.calibrate_at(unit, budget, 11, &fidelity);
    let b = family.calibrate_at(unit, budget, 11, &fidelity);
    assert_eq!(a.calibration, b.calibration);
    assert_eq!(a.loss, b.loss);
}
