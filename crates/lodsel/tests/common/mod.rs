//! Shared toy [`VersionFamily`] for the golden and resume tests: four
//! one-parameter versions whose calibration is a real (cheap, fully
//! deterministic) BO run, and whose held-out "evaluation" is synthetic so
//! the expected Pareto geometry is known exactly.
#![allow(dead_code)]

use lodsel::prelude::*;
use simcal::prelude::{
    Budget, CacheFingerprint, Calibration, CalibrationResult, Calibrator, FnObjective, ParamKind,
    ParameterSpace,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-version held-out errors: v1 is best, v2 is within 10% of it.
pub const TOY_ERRORS: [f64; 4] = [0.30, 0.10, 0.105, 0.35];
/// Per-version simulation work: v2 is 10x cheaper than v1.
pub const TOY_WORKS: [u64; 4] = [1, 100, 10, 5];

pub struct ToyFamily {
    /// Counts real calibration runs, so tests can prove a resumed sweep
    /// never re-consumes budget.
    pub calibrations: AtomicUsize,
    /// Counts objective invocations across all runs, so tests can prove
    /// a persistent-cache replay skipped the objective entirely.
    pub evaluations: AtomicUsize,
    /// When set, evaluation samples depend on the winning calibration's
    /// parameter value — any drift in calibration or winner selection
    /// between fresh and resumed sweeps then changes the digest.
    pub calibration_dependent: bool,
}

impl ToyFamily {
    pub fn new(calibration_dependent: bool) -> Self {
        Self {
            calibrations: AtomicUsize::new(0),
            evaluations: AtomicUsize::new(0),
            calibration_dependent,
        }
    }

    pub fn calibration_runs(&self) -> usize {
        self.calibrations.load(Ordering::SeqCst)
    }

    pub fn objective_evaluations(&self) -> usize {
        self.evaluations.load(Ordering::SeqCst)
    }
}

impl VersionFamily for ToyFamily {
    fn name(&self) -> &str {
        "toy"
    }

    fn fingerprint(&self) -> u64 {
        0x70f0_70f0_70f0_70f0
    }

    fn version_labels(&self) -> Vec<String> {
        (0..4).map(|i| format!("v{i}")).collect()
    }

    fn dim(&self, _version: usize) -> usize {
        1
    }

    fn units(&self) -> Vec<SweepUnit> {
        (0..4)
            .map(|v| SweepUnit {
                version: v,
                slot: 0,
                label: format!("v{v}"),
            })
            .collect()
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        self.calibrations.fetch_add(1, Ordering::SeqCst);
        let target = 0.2 * (unit.version as f64 + 1.0);
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let evals = &self.evaluations;
        let obj = FnObjective::new(space, move |c: &Calibration| {
            evals.fetch_add(1, Ordering::SeqCst);
            (c.values[0] - target).powi(2)
        })
        .with_cache_fingerprint(CacheFingerprint::of(
            "toy",
            &unit.label,
            self.fingerprint(),
        ));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, calibration: &Calibration) -> UnitEval {
        let mut sample = TOY_ERRORS[unit.version];
        if self.calibration_dependent {
            sample += calibration.values[0] * 1e-6;
        }
        UnitEval {
            samples: vec![sample],
            work_units: TOY_WORKS[unit.version],
        }
    }
}

/// A collision-free temp ledger path (tests run concurrently).
pub fn tmp_ledger(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lodsel-it-{tag}-{}-{n}.jsonl", std::process::id()))
}
