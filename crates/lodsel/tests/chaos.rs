//! Chaos tests: sweeps must survive failing simulator versions.
//!
//! The deterministic [`simcal::fault`] harness injects panics and NaN
//! losses at exact (seed, evaluation-index) coordinates, so every test
//! here is reproducible — including across thread counts (CI runs this
//! suite under both the default pool and `CALIB_THREADS=1`).
//!
//! The fault plan is process-global, so every test that installs one
//! serializes on [`FAULTS`].

mod common;

use common::{tmp_ledger, TOY_ERRORS, TOY_WORKS};
use lodsel::ledger::fnv1a;
use lodsel::prelude::*;
use proptest::prelude::*;
use simcal::fault;
use simcal::prelude::{
    Budget, Calibration, CalibrationResult, Calibrator, FaultKind, FnObjective, ParamKind,
    ParameterSpace,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

/// Serializes tests that install a global fault plan. `std::sync::Mutex`
/// (not parking_lot) so a panicking test poisons visibly instead of
/// deadlocking the rest of the suite.
static FAULTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(|poison| poison.into_inner())
}

const EVALS: usize = 8;

fn config() -> SweepConfig {
    SweepConfig::per_run(Budget::Evaluations(EVALS), 2, 42)
}

/// The seed a [`ChaosFamily`] calibration run actually hands to its
/// evaluator: unique per (unit, restart), so a seeded fault spec can
/// target exactly one run of the sweep.
fn unit_run_seed(label: &str, restart: usize) -> u64 {
    restart_seed(42, restart) ^ fnv1a(label.as_bytes())
}

/// The toy grid, except each run's evaluator seed is derived per unit
/// (see [`unit_run_seed`]) so seeded fault injection is run-precise.
struct ChaosFamily;

impl VersionFamily for ChaosFamily {
    fn name(&self) -> &str {
        "chaos"
    }

    fn fingerprint(&self) -> u64 {
        0xc4a0_5c4a_05c4_a05c
    }

    fn version_labels(&self) -> Vec<String> {
        (0..4).map(|i| format!("v{i}")).collect()
    }

    fn dim(&self, _version: usize) -> usize {
        1
    }

    fn units(&self) -> Vec<SweepUnit> {
        (0..4)
            .map(|v| SweepUnit {
                version: v,
                slot: 0,
                label: format!("v{v}"),
            })
            .collect()
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        let target = 0.2 * (unit.version as f64 + 1.0);
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, move |c: &Calibration| (c.values[0] - target).powi(2));
        // The restart index is recoverable from the plan seed because
        // restart_seed() only touches the high half of the word.
        let restart = ((seed ^ 42) >> 32) as usize;
        Calibrator::bo_gp(budget, unit_run_seed(&unit.label, restart)).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, _calibration: &Calibration) -> UnitEval {
        UnitEval {
            samples: vec![TOY_ERRORS[unit.version]],
            work_units: TOY_WORKS[unit.version],
        }
    }
}

/// Completed run results keyed by (unit, restart), serialized with the
/// wall-clock fields zeroed — string equality is then bit-for-bit
/// equality of everything deterministic.
fn run_records(path: &Path) -> HashMap<(String, usize), String> {
    Ledger::read(path)
        .unwrap()
        .into_iter()
        .filter_map(|event| match event {
            LedgerEvent::RunCompleted { mut record } => {
                record.result.elapsed_secs = 0.0;
                for point in &mut record.result.trace {
                    point.elapsed_secs = 0.0;
                }
                Some((
                    (record.unit.clone(), record.restart),
                    serde_json::to_string(&record.result).unwrap(),
                ))
            }
            _ => None,
        })
        .collect()
}

fn run_failed_events(path: &Path) -> Vec<(String, usize, String)> {
    Ledger::read(path)
        .unwrap()
        .into_iter()
        .filter_map(|event| match event {
            LedgerEvent::RunFailed {
                unit,
                restart,
                stage,
                ..
            } => Some((unit, restart, stage)),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A single injected evaluation panic is quarantined inside the
    /// targeted run: the sweep completes with no failed runs, the
    /// targeted run records the panic, and every other run is
    /// bit-for-bit equal to the fault-free sweep.
    #[test]
    fn one_eval_panic_perturbs_only_the_targeted_run(
        k in 0usize..EVALS,
        restart in 0usize..2,
        version in 0usize..4,
    ) {
        let _guard = lock();
        fault::uninstall();
        let label = format!("v{version}");

        let clean_path = tmp_ledger("chaos-clean");
        let clean = run_sweep(&ChaosFamily, &config(), Some(&Ledger::open(&clean_path).unwrap()));
        prop_assert!(clean.failures.is_empty());

        fault::install(fault::FaultPlan::new().with_seeded_fault(
            FaultKind::Panic,
            k,
            unit_run_seed(&label, restart),
        ));
        let faulty_path = tmp_ledger("chaos-faulty");
        let faulty = run_sweep(&ChaosFamily, &config(), Some(&Ledger::open(&faulty_path).unwrap()));
        fault::uninstall();

        prop_assert!(faulty.complete);
        prop_assert!(faulty.failures.is_empty(), "a quarantined eval must not fail the run");
        prop_assert!(faulty.recommendation.is_some());

        let clean_runs = run_records(&clean_path);
        let faulty_runs = run_records(&faulty_path);
        prop_assert_eq!(clean_runs.len(), 8);
        prop_assert_eq!(faulty_runs.len(), 8);
        for (key, json) in &clean_runs {
            if key == &(label.clone(), restart) {
                prop_assert!(
                    faulty_runs[key].contains("\"eval_panics\":1"),
                    "targeted run must record the quarantined panic"
                );
            } else {
                prop_assert_eq!(&faulty_runs[key], json, "untargeted run drifted: {:?}", key);
            }
        }
        std::fs::remove_file(&clean_path).ok();
        std::fs::remove_file(&faulty_path).ok();
    }
}

/// Panicking every evaluation of one run fails exactly that run: the
/// sweep completes in degraded mode, reports the (version, unit, restart)
/// triple, keeps every other run bit-for-bit intact, and still recommends
/// (every version retains a surviving restart). Running the same faulted
/// sweep twice digests identically — injected faults are deterministic.
#[test]
fn a_fully_failing_run_degrades_the_sweep_but_nothing_else() {
    let _guard = lock();
    fault::uninstall();
    let (label, restart) = ("v2".to_string(), 1usize);

    let clean_path = tmp_ledger("chaos-allfail-clean");
    run_sweep(
        &ChaosFamily,
        &config(),
        Some(&Ledger::open(&clean_path).unwrap()),
    );

    let seed = unit_run_seed(&label, restart);
    let plan = (0..EVALS).fold(fault::FaultPlan::new(), |p, k| {
        p.with_seeded_fault(FaultKind::Panic, k, seed)
    });
    fault::install(plan);
    let digests: Vec<String> = (0..2)
        .map(|i| {
            let path = tmp_ledger(&format!("chaos-allfail-{i}"));
            let outcome = run_sweep(&ChaosFamily, &config(), Some(&Ledger::open(&path).unwrap()));

            assert!(outcome.complete);
            assert_eq!(outcome.failures.len(), 1);
            let f = &outcome.failures[0];
            assert_eq!((f.version.as_str(), f.unit.as_str()), ("v2", "v2"));
            assert_eq!(f.restart, restart);
            assert_eq!(f.stage, "calibrate");
            assert_eq!(f.attempt, 1);
            assert!(f.retriable);
            assert!(f.reason.contains("no finite loss"), "{}", f.reason);

            // Exactly one RunFailed event, and the other seven runs are
            // bit-for-bit what the fault-free sweep produced.
            assert_eq!(
                run_failed_events(&path),
                vec![(label.clone(), restart, "calibrate".to_string())]
            );
            let runs = run_records(&path);
            assert_eq!(runs.len(), 7);
            for (key, json) in &runs {
                assert_eq!(json, &run_records(&clean_path)[key]);
            }

            // v2 still has restart 0, so every version survives and the
            // recommendation stands.
            assert_eq!(outcome.versions.len(), 4);
            assert_eq!(outcome.recommendation.as_ref().unwrap().chosen, "v2");
            std::fs::remove_file(&path).ok();
            outcome.digest()
        })
        .collect();
    fault::uninstall();
    assert_eq!(
        digests[0], digests[1],
        "injected faults must be deterministic"
    );

    let clean = run_sweep(&ChaosFamily, &config(), None);
    assert_ne!(
        digests[0],
        clean.digest(),
        "a degraded outcome must not impersonate a healthy one"
    );
    std::fs::remove_file(&clean_path).ok();
}

/// Per-rung ledger geometry of a successive-halving sweep: which
/// `(base, rung)` pairs hold rung checkpoints, which were promoted, and
/// the unit labels that ever produced a rung record.
struct ShLedgerSets {
    completed: std::collections::HashSet<(u64, usize)>,
    promoted: std::collections::HashSet<(u64, usize)>,
    units: std::collections::HashSet<(String, usize)>,
}

fn sh_ledger_sets(path: &Path) -> ShLedgerSets {
    let mut sets = ShLedgerSets {
        completed: std::collections::HashSet::new(),
        promoted: std::collections::HashSet::new(),
        units: std::collections::HashSet::new(),
    };
    for event in Ledger::read(path).unwrap() {
        match event {
            LedgerEvent::RungCompleted { base, rung, record } => {
                sets.completed.insert((base, rung));
                sets.units.insert((record.unit, record.restart));
            }
            LedgerEvent::RunPromoted { key, rung } => {
                sets.promoted.insert((key, rung));
            }
            _ => {}
        }
    }
    sets
}

/// Injected panics under successive halving: a run whose every
/// evaluation panics fails its first rung, is eliminated there, and is
/// never promoted — every promotion in the ledger points at a run that
/// holds a rung checkpoint for that rung. The sweep still completes,
/// keeps all four versions (the target's sibling restart survives), and
/// digests deterministically.
#[test]
fn sh_eliminates_a_panicking_run_and_never_promotes_it() {
    let _guard = lock();
    fault::uninstall();
    let sh_config = SweepConfig {
        budget: BudgetPolicy::SuccessiveHalving {
            total: 48,
            eta: 2,
            min_scenarios: 1,
        },
        ..config()
    };
    let (label, restart) = ("v2".to_string(), 1usize);

    let clean_path = tmp_ledger("chaos-sh-clean");
    let clean = run_sweep(
        &ChaosFamily,
        &sh_config,
        Some(&Ledger::open(&clean_path).unwrap()),
    );
    assert!(clean.failures.is_empty());
    std::fs::remove_file(&clean_path).ok();

    // Panic every evaluation the targeted run could ever make (the
    // deepest rung budgets 12), so no rung of it can produce a loss.
    let seed = unit_run_seed(&label, restart);
    let plan = (0..12).fold(fault::FaultPlan::new(), |p, k| {
        p.with_seeded_fault(FaultKind::Panic, k, seed)
    });
    fault::install(plan);
    let digests: Vec<String> = (0..2)
        .map(|i| {
            let path = tmp_ledger(&format!("chaos-sh-{i}"));
            let outcome = run_sweep(
                &ChaosFamily,
                &sh_config,
                Some(&Ledger::open(&path).unwrap()),
            );

            assert!(outcome.complete);
            assert_eq!(outcome.failures.len(), 1);
            let f = &outcome.failures[0];
            assert_eq!((f.version.as_str(), f.restart), ("v2", restart));
            assert_eq!(f.stage, "calibrate");

            let report = outcome.sh.as_ref().expect("SH sweeps carry a report");
            assert_eq!(report.rungs[0].entrants, 8);
            assert_eq!(report.rungs[0].failed, 1);
            assert!(report.rungs[1..].iter().all(|r| r.failed == 0));

            let ShLedgerSets {
                completed,
                promoted,
                units,
            } = sh_ledger_sets(&path);
            assert!(
                !units.contains(&(label.clone(), restart)),
                "a run that panics every evaluation must never checkpoint a rung"
            );
            assert!(
                promoted.iter().all(|p| completed.contains(p)),
                "every promotion must point at a run with that rung's checkpoint"
            );
            assert_eq!(
                completed.iter().filter(|&&(_, r)| r == 0).count(),
                7,
                "the other seven runs all complete rung 0"
            );

            // The sibling restart keeps v2 alive, so the toy geometry's
            // recommendation stands.
            assert_eq!(outcome.versions.len(), 4);
            assert_eq!(outcome.recommendation.as_ref().unwrap().chosen, "v2");
            std::fs::remove_file(&path).ok();
            outcome.digest()
        })
        .collect();
    fault::uninstall();
    assert_eq!(digests[0], digests[1], "faulted SH must be deterministic");
    assert_ne!(
        digests[0],
        clean.digest(),
        "a degraded SH outcome must not impersonate a healthy one"
    );
}

/// The acceptance scenario: one version always panics, another always
/// returns NaN. The sweep completes, records RunFailed events for both,
/// and recommends from the two survivors.
struct BrokenFamily;

impl VersionFamily for BrokenFamily {
    fn name(&self) -> &str {
        "broken"
    }

    fn fingerprint(&self) -> u64 {
        0xb20c_e4b2_0ce4_b20c
    }

    fn version_labels(&self) -> Vec<String> {
        (0..4).map(|i| format!("v{i}")).collect()
    }

    fn dim(&self, _version: usize) -> usize {
        1
    }

    fn units(&self) -> Vec<SweepUnit> {
        (0..4)
            .map(|v| SweepUnit {
                version: v,
                slot: 0,
                label: format!("v{v}"),
            })
            .collect()
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        let version = unit.version;
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, move |c: &Calibration| match version {
            1 => panic!("version v1 always crashes"),
            3 => f64::NAN,
            _ => (c.values[0] - 0.5).powi(2),
        });
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, _calibration: &Calibration) -> UnitEval {
        UnitEval {
            samples: vec![TOY_ERRORS[unit.version]],
            work_units: TOY_WORKS[unit.version],
        }
    }
}

#[test]
fn sweep_survives_panicking_and_nan_versions_and_recommends_from_survivors() {
    let _guard = lock();
    fault::uninstall();
    let path = tmp_ledger("chaos-broken");
    let ledger = Ledger::open(&path).unwrap();
    let outcome = run_sweep(&BrokenFamily, &config(), Some(&ledger));
    drop(ledger);

    assert!(outcome.complete);
    // v1 and v3: 2 restarts each, all failed at the calibrate stage.
    assert_eq!(outcome.failures.len(), 4);
    for f in &outcome.failures {
        assert!(f.version == "v1" || f.version == "v3", "{}", f.version);
        assert_eq!(f.stage, "calibrate");
        assert!(f.retriable);
        assert!(f.reason.contains("no finite loss"), "{}", f.reason);
    }
    let v1_reason = &outcome
        .failures
        .iter()
        .find(|f| f.version == "v1")
        .unwrap()
        .reason;
    let v3_reason = &outcome
        .failures
        .iter()
        .find(|f| f.version == "v3")
        .unwrap()
        .reason;
    assert!(v1_reason.contains("panicked"), "{v1_reason}");
    assert!(v3_reason.contains("non-finite"), "{v3_reason}");

    // Only the survivors reach the outcome and the recommendation.
    let labels: Vec<&str> = outcome.versions.iter().map(|v| v.label.as_str()).collect();
    assert_eq!(labels, vec!["v0", "v2"]);
    let rec = outcome
        .recommendation
        .expect("survivors must be recommended from");
    assert!(rec.chosen == "v0" || rec.chosen == "v2");

    assert_eq!(run_failed_events(&path).len(), 4);
    std::fs::remove_file(&path).ok();
}

/// A version whose held-out evaluation produces non-finite samples fails
/// at the evaluate stage and drops out of the recommendation.
struct NanEvalFamily;

impl VersionFamily for NanEvalFamily {
    fn name(&self) -> &str {
        "nan-eval"
    }

    fn fingerprint(&self) -> u64 {
        0x4a4e_4a4e_4a4e_4a4e
    }

    fn version_labels(&self) -> Vec<String> {
        (0..3).map(|i| format!("v{i}")).collect()
    }

    fn dim(&self, _version: usize) -> usize {
        1
    }

    fn units(&self) -> Vec<SweepUnit> {
        (0..3)
            .map(|v| SweepUnit {
                version: v,
                slot: 0,
                label: format!("v{v}"),
            })
            .collect()
    }

    fn calibrate(&self, _unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, |c: &Calibration| (c.values[0] - 0.5).powi(2));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, _calibration: &Calibration) -> UnitEval {
        UnitEval {
            samples: if unit.version == 1 {
                vec![f64::NAN]
            } else {
                vec![TOY_ERRORS[unit.version]]
            },
            work_units: TOY_WORKS[unit.version],
        }
    }
}

#[test]
fn non_finite_evaluation_samples_fail_the_unit_at_the_evaluate_stage() {
    let _guard = lock();
    fault::uninstall();
    let path = tmp_ledger("chaos-naneval");
    let ledger = Ledger::open(&path).unwrap();
    let outcome = run_sweep(&NanEvalFamily, &config(), Some(&ledger));
    drop(ledger);

    assert!(outcome.complete);
    assert_eq!(outcome.failures.len(), 1);
    let f = &outcome.failures[0];
    assert_eq!(f.version, "v1");
    assert_eq!(f.stage, "evaluate");
    assert!(f.reason.contains("non-finite"), "{}", f.reason);
    let labels: Vec<&str> = outcome.versions.iter().map(|v| v.label.as_str()).collect();
    assert_eq!(labels, vec!["v0", "v2"]);
    assert!(outcome.recommendation.is_some());
    let events = run_failed_events(&path);
    assert_eq!(events.len(), 1);
    // The recorded restart is whichever restart won the multi-start.
    assert_eq!(events[0].0, "v1");
    assert_eq!(events[0].2, "evaluate");
    std::fs::remove_file(&path).ok();
}

/// Resume retries failed runs a bounded number of times: with
/// `max_fault_retries = 1`, the second execution retries (attempt 2) and
/// the third reports the failure straight from the ledger without
/// running anything — no new RunFailed events, `retriable: false`.
struct OneBrokenFamily {
    calibrations: std::sync::atomic::AtomicUsize,
}

impl OneBrokenFamily {
    fn new() -> Self {
        Self {
            calibrations: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl VersionFamily for OneBrokenFamily {
    fn name(&self) -> &str {
        "one-broken"
    }

    fn fingerprint(&self) -> u64 {
        0x1b0c_1b0c_1b0c_1b0c
    }

    fn version_labels(&self) -> Vec<String> {
        vec!["good".into(), "bad".into()]
    }

    fn dim(&self, _version: usize) -> usize {
        1
    }

    fn units(&self) -> Vec<SweepUnit> {
        (0..2)
            .map(|v| SweepUnit {
                version: v,
                slot: 0,
                label: if v == 0 { "good".into() } else { "bad".into() },
            })
            .collect()
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        self.calibrations
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let version = unit.version;
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, move |c: &Calibration| {
            if version == 1 {
                panic!("permanently broken version");
            }
            (c.values[0] - 0.5).powi(2)
        });
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, _unit: &SweepUnit, _calibration: &Calibration) -> UnitEval {
        UnitEval {
            samples: vec![0.25],
            work_units: 10,
        }
    }
}

#[test]
fn resume_retries_failed_runs_then_gives_up_after_the_bound() {
    let _guard = lock();
    fault::uninstall();
    let mut cfg = config();
    cfg.max_fault_retries = 1;
    let path = tmp_ledger("chaos-retry");
    let family = OneBrokenFamily::new();

    // Execution 1: the good unit's 2 runs succeed, the bad unit's 2 runs
    // fail (attempt 1, retriable).
    let ledger = Ledger::open(&path).unwrap();
    let first = run_sweep(&family, &cfg, Some(&ledger));
    drop(ledger);
    assert_eq!(
        family
            .calibrations
            .swap(0, std::sync::atomic::Ordering::SeqCst),
        4
    );
    assert_eq!(first.failures.len(), 2);
    assert!(first.failures.iter().all(|f| f.attempt == 1 && f.retriable));
    assert_eq!(run_failed_events(&path).len(), 2);

    // Execution 2 (resume): only the failed runs re-run — attempt 2, the
    // last allowed, so no longer retriable.
    let ledger = Ledger::open(&path).unwrap();
    let second = run_sweep(&family, &cfg, Some(&ledger));
    drop(ledger);
    assert_eq!(
        family
            .calibrations
            .swap(0, std::sync::atomic::Ordering::SeqCst),
        2,
        "good runs must be served from checkpoints"
    );
    assert_eq!(second.failures.len(), 2);
    assert!(second
        .failures
        .iter()
        .all(|f| f.attempt == 2 && !f.retriable));
    assert_eq!(run_failed_events(&path).len(), 4);

    // Execution 3: retries exhausted — nothing re-runs, the failures are
    // reported from the ledger, and no new events are appended.
    let ledger = Ledger::open(&path).unwrap();
    let third = run_sweep(&family, &cfg, Some(&ledger));
    drop(ledger);
    assert_eq!(
        family
            .calibrations
            .swap(0, std::sync::atomic::Ordering::SeqCst),
        0,
        "exhausted runs must not re-run"
    );
    assert_eq!(third.failures.len(), 2);
    assert!(third
        .failures
        .iter()
        .all(|f| f.attempt == 2 && !f.retriable));
    assert_eq!(run_failed_events(&path).len(), 4);

    // The surviving version is still reported and recommended throughout.
    for outcome in [&first, &second, &third] {
        assert!(outcome.complete);
        let labels: Vec<&str> = outcome.versions.iter().map(|v| v.label.as_str()).collect();
        assert_eq!(labels, vec!["good"]);
        assert_eq!(outcome.recommendation.as_ref().unwrap().chosen, "good");
    }
    std::fs::remove_file(&path).ok();
}
