//! The resumability contract, as a property: kill a sweep after any k of
//! its units, resume it against the same ledger, and the resumed outcome
//! is bit-for-bit equal to an uninterrupted sweep — with no calibration
//! budget consumed twice.

mod common;

use common::{tmp_ledger, ToyFamily};
use lodsel::prelude::*;
use proptest::prelude::*;

fn config(restarts: usize, max_units: Option<usize>) -> SweepConfig {
    SweepConfig {
        // An uneven shared budget, so fair division hands different runs
        // different budgets — resume must reassign them identically.
        budget: BudgetPolicy::TotalEvaluations { total: 50 },
        restarts,
        seed: 42,
        epsilon: 0.1,
        max_units,
        max_fault_retries: 2,
        cache: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interrupt after k units, resume, and compare against fresh.
    #[test]
    fn resume_equals_fresh_bit_for_bit(k in 0usize..=4, restarts in 1usize..=3) {
        // The evaluation depends on the winning calibration, so any drift
        // in replayed results or winner selection would change the digest.
        let fresh_family = ToyFamily::new(true);
        let fresh = run_sweep(&fresh_family, &config(restarts, None), None);

        let path = tmp_ledger("resume");
        let interrupted_family = ToyFamily::new(true);
        let ledger = Ledger::open(&path).unwrap();
        let interrupted =
            run_sweep(&interrupted_family, &config(restarts, Some(k)), Some(&ledger));
        prop_assert_eq!(interrupted.complete, k == 4);
        prop_assert_eq!(interrupted.recommendation.is_some(), k == 4);
        prop_assert_eq!(interrupted.versions.len(), k);
        prop_assert_eq!(interrupted_family.calibration_runs(), k * restarts);
        drop(ledger);

        let resumed_family = ToyFamily::new(true);
        let reopened = Ledger::open(&path).unwrap();
        let resumed = run_sweep(&resumed_family, &config(restarts, None), Some(&reopened));
        drop(reopened);

        // Bit-for-bit: digest covers winners, calibrations, losses,
        // samples, work, and the recommendation.
        prop_assert_eq!(resumed.digest(), fresh.digest());
        prop_assert_eq!(resumed.recommendation, fresh.recommendation);

        // No budget re-consumption: interrupted + resumed calibrations
        // together equal one fresh sweep's.
        prop_assert_eq!(
            interrupted_family.calibration_runs() + resumed_family.calibration_runs(),
            fresh_family.calibration_runs()
        );

        // A second resume finds everything checkpointed and runs nothing.
        let idle_family = ToyFamily::new(true);
        let again = Ledger::open(&path).unwrap();
        let third = run_sweep(&idle_family, &config(restarts, None), Some(&again));
        prop_assert_eq!(idle_family.calibration_runs(), 0);
        prop_assert_eq!(third.digest(), fresh.digest());

        let _ = std::fs::remove_file(&path);
    }
}

/// A ledger written under one configuration must not leak checkpoints
/// into a sweep with a different seed: keys cover the full provenance.
#[test]
fn different_seed_ignores_the_ledger() {
    let path = tmp_ledger("crossseed");
    let ledger = Ledger::open(&path).unwrap();
    let family = ToyFamily::new(true);
    run_sweep(&family, &config(2, None), Some(&ledger));
    drop(ledger);

    let other_family = ToyFamily::new(true);
    let mut other = config(2, None);
    other.seed = 43;
    let reopened = Ledger::open(&path).unwrap();
    run_sweep(&other_family, &other, Some(&reopened));
    assert_eq!(
        other_family.calibration_runs(),
        8,
        "a different seed must re-run everything"
    );
    let _ = std::fs::remove_file(&path);
}
