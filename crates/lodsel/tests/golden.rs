//! Golden determinism tests on a tiny 4-version grid: the sweep's choice,
//! ranking, Pareto flags, and digest are pinned, and the ledger's on-disk
//! schema is checked line by line.

mod common;

use common::{tmp_ledger, ToyFamily, TOY_ERRORS, TOY_WORKS};
use lodsel::prelude::*;
use simcal::prelude::Budget;

fn config() -> SweepConfig {
    SweepConfig::per_run(Budget::Evaluations(8), 2, 42)
}

#[test]
fn sweep_reproduces_the_known_pareto_geometry() {
    let family = ToyFamily::new(false);
    let outcome = run_sweep(&family, &config(), None);

    assert!(outcome.complete);
    assert_eq!(outcome.versions.len(), 4);
    for (v, (&err, &work)) in outcome
        .versions
        .iter()
        .zip(TOY_ERRORS.iter().zip(&TOY_WORKS))
    {
        assert_eq!(v.samples, vec![err]);
        assert_eq!(v.test_error, err);
        assert_eq!(v.work_units, work);
    }
    // v3 (0.35 err, 5 work) is dominated by v0 (0.30 err, 1 work).
    assert_eq!(
        front_flags(&outcome.versions),
        vec![true, true, true, false]
    );

    let rec = outcome.recommendation.expect("complete sweep recommends");
    assert_eq!(rec.best_error, 0.10);
    // Within ε = 10% of the best error, v2 is 10x cheaper than v1.
    assert_eq!(rec.chosen, "v2");
    let ranked: Vec<&str> = rec.scores.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(ranked, vec!["v2", "v1", "v0", "v3"]);
}

#[test]
fn fault_free_digests_are_pinned_bit_for_bit() {
    // Captured before the failure model existed. A fault-free sweep must
    // keep digesting to exactly these values: the failure machinery may
    // only extend the digest input when failures actually occur.
    let a = run_sweep(&ToyFamily::new(true), &config(), None);
    assert!(a.failures.is_empty());
    assert_eq!(a.digest(), "c10c6fae5e95faac");
    let b = run_sweep(&ToyFamily::new(false), &config(), None);
    assert!(b.failures.is_empty());
    assert_eq!(b.digest(), "9da6bcf5cdc8e746");
}

#[test]
fn digest_is_stable_across_runs_and_sensitive_to_configuration() {
    let a = run_sweep(&ToyFamily::new(true), &config(), None);
    let b = run_sweep(&ToyFamily::new(true), &config(), None);
    assert_eq!(a.digest(), b.digest(), "same sweep must digest identically");

    let mut other = config();
    other.seed = 43;
    let c = run_sweep(&ToyFamily::new(true), &other, None);
    assert_ne!(a.digest(), c.digest(), "digest must track the seed");
}

#[test]
fn ledger_schema_holds_line_by_line() {
    let family = ToyFamily::new(false);
    let cfg = config();
    let path = tmp_ledger("schema");
    let ledger = Ledger::open(&path).unwrap();
    let outcome = run_sweep(&family, &cfg, Some(&ledger));
    drop(ledger);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // 1 start + (4 units x 2 restarts) runs + 4 unit evals + 1 completion.
    assert_eq!(lines.len(), 1 + 8 + 4 + 1);
    assert!(lines[0].contains("\"SweepStarted\""));
    assert!(lines.last().unwrap().contains("\"SweepCompleted\""));
    let runs = lines
        .iter()
        .filter(|l| l.contains("\"RunCompleted\""))
        .count();
    let units = lines
        .iter()
        .filter(|l| l.contains("\"UnitCompleted\""))
        .count();
    assert_eq!(runs, 8);
    assert_eq!(units, 4);
    // The completion line records the recommendation and the digest.
    let last = lines.last().unwrap();
    let chosen = &outcome.recommendation.as_ref().unwrap().chosen;
    assert!(last.contains(&format!("\"chosen\":\"{chosen}\"")));
    assert!(last.contains(&outcome.digest()));
    // Every line parses back as an event.
    assert_eq!(Ledger::read(&path).unwrap().len(), lines.len());
    let _ = std::fs::remove_file(&path);
}
