//! Schema tests for the machine-readable ledger status
//! (`lodsel --status-json`, reused by `calibctl status`).

mod common;

use common::{tmp_ledger, ToyFamily};
use lodsel::prelude::*;
use simcal::prelude::Budget;

fn toy_config() -> SweepConfig {
    SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: Budget::Evaluations(3),
        },
        restarts: 1,
        seed: 9,
        epsilon: 0.1,
        max_units: None,
        max_fault_retries: 2,
        cache: None,
    }
}

#[test]
fn status_json_schema_is_stable_and_round_trips() {
    let path = tmp_ledger("status-json");
    let family = ToyFamily::new(true);
    let ledger = Ledger::open(&path).unwrap();
    let outcome = run_sweep(&family, &toy_config(), Some(&ledger));
    drop(ledger);

    let status = ledger_status(&Ledger::read(&path).unwrap());
    assert_eq!(status.sweeps_started, 1);
    assert_eq!(status.shards_started, 0);
    assert_eq!(status.runs_done, 4);
    assert_eq!(status.unit_evals_done, 4);
    assert_eq!(status.failed_attempts, 0);
    let done = status.completed.as_ref().expect("sweep completed");
    assert_eq!(done.family, "toy");
    assert_eq!(done.digest, outcome.digest());

    // The wire shape: field names are the schema `calibctl status`
    // consumes, so pin them explicitly.
    let json = serde_json::to_string(&status).unwrap();
    let value: serde::Value = serde_json::from_str(&json).unwrap();
    assert!(
        matches!(value, serde::Value::Object(_)),
        "status must serialize as an object"
    );
    for key in [
        "events",
        "sweeps_started",
        "shards_started",
        "runs_done",
        "rungs_done",
        "promotions",
        "eliminations",
        "unit_evals_done",
        "failed_attempts",
        "last_failure",
        "last_sweep",
        "completed",
    ] {
        assert!(value.get(key).is_some(), "status JSON is missing {key:?}");
    }
    let completed = value.get("completed").unwrap();
    for key in ["family", "digest", "chosen"] {
        assert!(
            completed.get(key).is_some(),
            "completed summary is missing {key:?}"
        );
    }

    // And it deserializes back bit-for-bit.
    let back: LedgerStatus = serde_json::from_str(&json).unwrap();
    assert_eq!(back, status);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn status_text_rendering_matches_the_legacy_table() {
    let path = tmp_ledger("status-text");
    let family = ToyFamily::new(true);
    let ledger = Ledger::open(&path).unwrap();
    let outcome = run_sweep(&family, &toy_config(), Some(&ledger));
    drop(ledger);

    let events = Ledger::read(&path).unwrap();
    let status = ledger_status(&events);
    let text = status.render_text("L");
    let chosen = outcome.recommendation.as_ref().unwrap().chosen.clone();
    let expected = format!(
        "ledger L: {} events\n\
         \x20 sweeps started:        1\n\
         \x20 calibration runs done: 4\n\
         \x20 unit evaluations done: 4\n\
         \x20 last sweep: family=toy units=4 pending_runs=4\n\
         \x20 completed: family=toy chosen={chosen} digest={}\n",
        events.len(),
        outcome.digest()
    );
    assert_eq!(text, expected);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_ledger_status_reports_incomplete() {
    let status = ledger_status(&[]);
    assert_eq!(status.events, 0);
    assert!(status.completed.is_none());
    assert!(status
        .render_text("x")
        .contains("completed: no (resume by re-running with the same --ledger)"));
}
