//! Minimal end-to-end tour of the lodsel subsystem.
//!
//! Builds a small batch-scheduling family, sweeps it with a checkpointing
//! ledger, prints the ranked recommendation, and then re-runs the same
//! sweep against the same ledger to show that every run is served from
//! checkpoints (zero pending work) with a bit-for-bit identical outcome.
//!
//! Run with: `cargo run --release --example lod_select`

use batchsim::prelude::{dataset, BatchEmulatorConfig, BatchVersion, WorkloadSpec};
use lodsel::prelude::*;
use simcal::prelude::{Agg, Budget, ElementMix, StructuredLoss};

fn main() {
    // A deliberately tiny dataset: two short workloads, one for training
    // and one held out. Real experiments use `BatchFamily::paper`.
    let cfg = BatchEmulatorConfig::default();
    let specs = [
        WorkloadSpec {
            num_jobs: 20,
            mean_interarrival: 10.0,
            mean_work: 60.0,
            max_nodes_log2: 4,
            seed: 7,
        },
        WorkloadSpec {
            num_jobs: 20,
            mean_interarrival: 25.0,
            mean_work: 120.0,
            max_nodes_log2: 4,
            seed: 8,
        },
    ];
    let train = dataset(&specs[..1], &cfg, 1, 7);
    let test = dataset(&specs[1..], &cfg, 1, 7);
    let family = BatchFamily::new(
        BatchVersion::all(),
        cfg.total_nodes,
        train,
        test,
        StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3"),
        "L3",
    );

    let config = SweepConfig::per_run(Budget::Evaluations(12), 2, 42);
    let path = std::env::temp_dir().join(format!("lod_select-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // First pass: everything runs fresh and is checkpointed to the ledger.
    let ledger = Ledger::open(&path).expect("open ledger");
    let first = run_sweep(&family, &config, Some(&ledger));
    let rec = first.recommendation.as_ref().expect("complete sweep");
    println!("{}", render_recommendation(rec));

    // Second pass against the same ledger: all (unit x restart) runs and
    // all unit evaluations are served from checkpoints.
    let reopened = Ledger::open(&path).expect("reopen ledger");
    let second = run_sweep(&family, &config, Some(&reopened));
    let pending = reopened
        .events()
        .iter()
        .rev()
        .find_map(|e| match e {
            LedgerEvent::SweepStarted { pending_runs, .. } => Some(*pending_runs),
            _ => None,
        })
        .expect("resumed sweep logged a start event");
    println!("resume: {pending} pending runs (all served from the ledger)");
    println!(
        "resume digest matches fresh digest: {}",
        second.digest() == first.digest()
    );
    assert_eq!(pending, 0, "resume must not redo completed work");
    assert_eq!(
        second.digest(),
        first.digest(),
        "resume must be bit-for-bit"
    );

    let _ = std::fs::remove_file(&path);
}
