//! The sweep orchestrator: plan the full (unit × restart) grid, divide the
//! budget fairly, replay ledger checkpoints, fan the remaining runs onto
//! the work-stealing pool, and reduce everything to per-version outcomes
//! plus the Pareto recommendation.
//!
//! Determinism contract: with [`simcal::prelude::Budget::Evaluations`]
//! budgets, a sweep's deterministic outcome — everything covered by
//! [`SweepOutcome::digest`] — is identical across thread counts, across
//! fresh/interrupted/resumed executions, and across machines. Wall-clock
//! measurements are carried alongside for observability but never feed
//! the digest or the recommendation.
//!
//! Failure model: a simulator version that panics or yields only
//! non-finite values must not take the whole sweep down. Every
//! `family.calibrate` / `family.evaluate` call runs under
//! [`simcal::fault::guard`]; a crash becomes a
//! [`LedgerEvent::RunFailed`] event and a [`RunFailure`] row in the
//! outcome, the affected version drops out of the recommendation, and a
//! resume retries the failed work up to
//! [`SweepConfig::max_fault_retries`] additional times before reporting
//! it as permanently failed. Fault-free sweeps digest bit-for-bit as
//! they always have; failures extend the digest only when present.

use crate::family::{SweepUnit, VersionFamily};
use crate::ledger::{
    fnv1a, run_key, rung_key, unit_key, FailureHistory, Ledger, LedgerEvent, RunRecord, UnitRecord,
};
use crate::multistart::{pick_best, restart_seed};
use crate::pareto::{pareto_front, try_recommend, Recommendation};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simcal::prelude::{Budget, CalibrationResult, Fidelity};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

/// How the sweep's evaluation budget is distributed over calibration runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BudgetPolicy {
    /// Every run gets the same fixed budget (what the paper's per-figure
    /// experiments do).
    PerRun {
        /// The per-run budget.
        budget: Budget,
    },
    /// A shared evaluation budget divided fairly across the full
    /// (unit × restart) plan: every run gets `total / runs`, and the
    /// remainder goes to the earliest runs in plan order. The division is
    /// computed over the *full* plan even when execution is truncated by
    /// [`SweepConfig::max_units`], so an interrupted sweep and its resume
    /// assign identical budgets to every run.
    TotalEvaluations {
        /// Total loss evaluations available to the whole sweep.
        total: usize,
    },
    /// Hyperband-style successive halving over the full (unit × restart)
    /// plan: every run starts on a cheap rung — a small per-run budget
    /// over a small, seed-derived scenario subset
    /// ([`simcal::fidelity`]) — survivors are ranked by rung loss and
    /// the top `1/eta` promoted, until the final rung runs the full
    /// scenario set. The rung schedule ([`ShSchedule::plan`]) is
    /// computed over the *full* plan, so interruptions and shard
    /// boundaries never change budgets, subsets, or checkpoint keys.
    SuccessiveHalving {
        /// Total loss evaluations across all rungs (must be at least
        /// `rungs × runs`, else the sweep fails with
        /// [`SweepError::BudgetTooSmall`]).
        total: usize,
        /// Halving factor (clamped to at least 2): survivors per rung
        /// shrink by `eta`, scenario subsets grow by `eta`.
        eta: usize,
        /// Lower bound on a rung's scenario-subset size (clamped to each
        /// unit's dataset size).
        min_scenarios: usize,
    },
}

/// Configuration of one sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Budget distribution.
    pub budget: BudgetPolicy,
    /// Restarts per unit (clamped to at least one).
    pub restarts: usize,
    /// Master seed; restart seeds derive from it exactly as the
    /// standalone experiment binaries always have.
    pub seed: u64,
    /// Relative accuracy tolerance of the recommendation.
    pub epsilon: f64,
    /// Stop after this many units (test hook for interruption; `None`
    /// sweeps everything). Budgets and checkpoint keys are unaffected.
    pub max_units: Option<usize>,
    /// How many times a resume may retry a run (or unit evaluation) that
    /// failed in an earlier execution. Within one execution each pending
    /// item is attempted once; across executions a keyed item is
    /// attempted at most `1 + max_fault_retries` times, after which it is
    /// reported as permanently failed straight from the ledger without
    /// re-running. Without a ledger there is nothing to count attempts
    /// against, so the value is inert.
    pub max_fault_retries: usize,
    /// Persistent loss-cache directory ([`simcal::cache`]). When set, it
    /// is installed process-globally for the duration of the sweep (the
    /// previous state is restored afterwards), so every calibration whose
    /// objective carries a cache fingerprint replays identical
    /// evaluations from disk across sweep executions. `None` leaves
    /// whatever is already active (an installed directory or
    /// `CALIB_CACHE`) untouched.
    pub cache: Option<PathBuf>,
}

impl SweepConfig {
    /// A per-run-budget sweep configuration with the default ε of 10%
    /// and two fault retries.
    pub fn per_run(budget: Budget, restarts: usize, seed: u64) -> Self {
        Self {
            budget: BudgetPolicy::PerRun { budget },
            restarts,
            seed,
            epsilon: 0.1,
            max_units: None,
            max_fault_retries: 2,
            cache: None,
        }
    }
}

/// Identity of a sweep's run plan: family name and dataset fingerprint,
/// master seed, restarts, budget policy, and unit count. Two sweep
/// configurations with equal fingerprints generate bit-for-bit identical
/// (version × restart) run plans — identical checkpoint keys, budgets,
/// and seeds — so their ledger shards can be merged
/// ([`crate::shard::merge_shards`]). Settings that do not change any run
/// (ε, truncation, retry allowance, cache directory) are excluded.
pub fn sweep_fingerprint(family: &dyn VersionFamily, config: &SweepConfig) -> u64 {
    let policy_json = serde_json::to_string(&config.budget).expect("policy serializes");
    crate::ledger::fnv1a(
        format!(
            "sweep|family={}|fp={:016x}|seed={}|restarts={}|policy={}|units={}",
            family.name(),
            family.fingerprint(),
            config.seed,
            config.restarts.max(1),
            policy_json,
            family.units().len()
        )
        .as_bytes(),
    )
}

/// Installs a sweep's persistent-cache directory for its duration and
/// restores the previous process-global state on drop (panic-safe).
pub(crate) struct CacheScope {
    previous: Option<std::sync::Arc<PathBuf>>,
    active: bool,
}

impl CacheScope {
    pub(crate) fn activate(dir: Option<&std::path::Path>) -> Self {
        match dir {
            Some(d) => {
                let previous = simcal::cache::installed();
                simcal::cache::install(d);
                Self {
                    previous,
                    active: true,
                }
            }
            None => Self {
                previous: None,
                active: false,
            },
        }
    }
}

impl Drop for CacheScope {
    fn drop(&mut self) {
        if self.active {
            match self.previous.take() {
                Some(p) => simcal::cache::install(p.as_ref().clone()),
                None => simcal::cache::uninstall(),
            }
        }
    }
}

/// Outcome of one unit: its winning calibration and held-out evaluation.
#[derive(Clone, Debug)]
pub struct UnitOutcome {
    /// Unit label.
    pub label: String,
    /// Index of the unit's version.
    pub version: usize,
    /// Which restart won (lowest training loss, first-wins on ties).
    pub best_restart: usize,
    /// The winning calibration result.
    pub best: CalibrationResult,
    /// Held-out test errors.
    pub samples: Vec<f64>,
    /// Deterministic simulation work of the held-out evaluation.
    pub work_units: u64,
    /// Measured evaluation wall-clock seconds (observability only).
    pub wall_secs: f64,
    /// Whether the evaluation was served from a ledger checkpoint.
    pub cached: bool,
}

/// Aggregated outcome of one version (all of its units).
#[derive(Clone, Debug)]
pub struct VersionOutcome {
    /// Version label.
    pub label: String,
    /// Dimensionality of the version's parameter space.
    pub dim: usize,
    /// Per-unit outcomes, in unit order.
    pub units: Vec<UnitOutcome>,
    /// Concatenated unit samples (the Figure-2/5-style summary inputs).
    pub samples: Vec<f64>,
    /// Mean of `samples`: the version's held-out test error.
    pub test_error: f64,
    /// Total deterministic simulation work across units.
    pub work_units: u64,
    /// Total measured wall seconds across units (calibration excluded;
    /// observability only).
    pub wall_secs: f64,
}

/// One failed (version, unit, restart) item of a degraded sweep.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RunFailure {
    /// Version label the failed unit belongs to.
    pub version: String,
    /// Unit label.
    pub unit: String,
    /// Restart index of the failed calibration run; for evaluate-stage
    /// failures, the winning restart whose calibration was evaluated.
    pub restart: usize,
    /// Which stage failed: `"calibrate"` or `"evaluate"`.
    pub stage: String,
    /// Attempts made so far across executions (1-based).
    pub attempt: usize,
    /// Whether a resume against the same ledger will retry this item
    /// (false once attempts reach `1 + max_fault_retries`).
    pub retriable: bool,
    /// Readable failure reason (panic message or a summary).
    pub reason: String,
}

/// What happened on one rung of a successive-halving sweep.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ShRungReport {
    /// Rung index (0 = cheapest).
    pub rung: usize,
    /// Runs that entered the rung.
    pub entrants: usize,
    /// Per-run evaluation budget on the rung.
    pub budget: usize,
    /// Scenario-subset denominator the rung evaluated at.
    pub scenario_denom: usize,
    /// Runs promoted to the next rung (entrants on the final rung).
    pub promoted: usize,
    /// Entrants whose rung calibration failed (never promoted).
    pub failed: usize,
}

/// Deterministic summary of a successive-halving execution, carried on
/// the outcome and folded into its digest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ShReport {
    /// Halving factor.
    pub eta: usize,
    /// Configured total evaluation budget.
    pub total: usize,
    /// Scenario-subset floor.
    pub min_scenarios: usize,
    /// Evaluations the ladder assigns on a fault-free execution
    /// ([`ShSchedule::total_evaluations`]).
    pub planned_evaluations: usize,
    /// Per-rung outcomes, cheapest first.
    pub rungs: Vec<ShRungReport>,
}

/// Outcome of a sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Family identifier.
    pub family: String,
    /// Whether every unit of the family was covered (false only under
    /// [`SweepConfig::max_units`] truncation).
    pub complete: bool,
    /// Completed versions, in family order. Under truncation a version
    /// with only some units done is omitted entirely, as is a version
    /// none of whose runs survived its faults.
    pub versions: Vec<VersionOutcome>,
    /// Runs and unit evaluations that failed (panicked or produced only
    /// non-finite values), in deterministic plan order. Empty for a
    /// healthy sweep.
    pub failures: Vec<RunFailure>,
    /// The recommendation; present only for complete sweeps that left at
    /// least one version with usable results.
    pub recommendation: Option<Recommendation>,
    /// Successive-halving summary; `None` for fixed-budget sweeps.
    pub sh: Option<ShReport>,
}

/// The digest's serialized shape: every deterministic field of the
/// outcome, and nothing wall-clock-dependent.
#[derive(Serialize)]
struct DigestUnit {
    label: String,
    best_restart: usize,
    loss: f64,
    calibration: Vec<f64>,
    evaluations: usize,
    samples: Vec<f64>,
    work_units: u64,
}

#[derive(Serialize)]
struct DigestDoc {
    family: String,
    complete: bool,
    versions: Vec<(String, Vec<DigestUnit>)>,
    recommendation: Option<Recommendation>,
}

impl SweepOutcome {
    /// Hex digest of the outcome's deterministic content. Fresh,
    /// interrupted-then-resumed, serial, and parallel executions of the
    /// same sweep all digest identically; wall-clock fields are excluded.
    pub fn digest(&self) -> String {
        let doc = DigestDoc {
            family: self.family.clone(),
            complete: self.complete,
            versions: self
                .versions
                .iter()
                .map(|v| {
                    (
                        v.label.clone(),
                        v.units
                            .iter()
                            .map(|u| DigestUnit {
                                label: u.label.clone(),
                                best_restart: u.best_restart,
                                loss: u.best.loss,
                                calibration: u.best.calibration.values.clone(),
                                evaluations: u.best.evaluations,
                                samples: u.samples.clone(),
                                work_units: u.work_units,
                            })
                            .collect(),
                    )
                })
                .collect(),
            recommendation: self.recommendation.clone(),
        };
        let json = serde_json::to_string(&doc).expect("digest serializes");
        let mut bytes = json.into_bytes();
        // Failures extend the digest input only when present, so the
        // digest of a fault-free sweep is bit-for-bit what it was before
        // failures existed (pinned by the golden tests), while degraded
        // sweeps with different failure sets digest differently.
        if !self.failures.is_empty() {
            let failures = serde_json::to_string(&self.failures).expect("digest serializes");
            bytes.extend_from_slice(failures.as_bytes());
        }
        // Same pattern for successive halving: the report extends the
        // digest input only when the policy ran, so every fixed-budget
        // digest stays bit-for-bit what the golden tests pinned.
        if let Some(sh) = &self.sh {
            let report = serde_json::to_string(sh).expect("digest serializes");
            bytes.extend_from_slice(report.as_bytes());
        }
        format!("{:016x}", crate::ledger::fnv1a(&bytes))
    }
}

/// A sweep configuration that cannot be planned. Surfaced as a typed
/// error (not a panic) so services embedding sweeps — calibd worker
/// threads in particular — can fail the one job instead of aborting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepError {
    /// The total evaluation budget cannot give every planned run (or,
    /// under successive halving, every rung entrant) at least one
    /// evaluation.
    BudgetTooSmall {
        /// The configured total budget.
        total: usize,
        /// Runs in the full (unit × restart) plan.
        runs: usize,
        /// Smallest total the policy accepts for this plan.
        needed: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::BudgetTooSmall {
                total,
                runs,
                needed,
            } => write!(
                f,
                "total budget of {total} evaluations cannot cover {runs} runs \
                 (at least {needed} needed)"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// One rung of a successive-halving schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ShRung {
    /// Rung index (0 = cheapest).
    pub rung: usize,
    /// Runs that enter this rung (per the full plan; faults may thin the
    /// actual field).
    pub survivors: usize,
    /// Per-run evaluation budget on this rung.
    pub budget: usize,
    /// Scenario-subset denominator: entrants evaluate roughly `1/denom`
    /// of their unit's scenario set (1 on the final rung = full set).
    pub scenario_denom: usize,
}

/// The deterministic rung ladder of a successive-halving sweep.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ShSchedule {
    /// Halving factor (already clamped to at least 2).
    pub eta: usize,
    /// Configured total evaluation budget.
    pub total: usize,
    /// Scenario-subset floor.
    pub min_scenarios: usize,
    /// The rungs, cheapest first; the last always has `scenario_denom`
    /// 1 (full scenario set).
    pub rungs: Vec<ShRung>,
}

impl ShSchedule {
    /// Plan the ladder for `runs` runs: `floor(log_eta(runs)) + 1`
    /// rungs, rung `r` keeping `max(1, runs / eta^r)` survivors on a
    /// `1/eta^(R-1-r)` scenario subset, each rung splitting an equal
    /// share of `total` over its survivors (the remainder of either
    /// division is deterministically left unspent). Errs unless every
    /// rung can give each entrant at least one evaluation, i.e.
    /// `total >= rungs × runs`.
    pub fn plan(
        runs: usize,
        total: usize,
        eta: usize,
        min_scenarios: usize,
    ) -> Result<ShSchedule, SweepError> {
        assert!(runs > 0, "cannot schedule a sweep of zero runs");
        let eta = eta.max(2);
        let mut levels = 1usize;
        let mut p = eta;
        while p <= runs {
            levels += 1;
            p *= eta;
        }
        let needed = levels * runs;
        if total < needed {
            return Err(SweepError::BudgetTooSmall {
                total,
                runs,
                needed,
            });
        }
        let rungs = (0..levels)
            .map(|r| {
                let survivors = (runs / eta.pow(r as u32)).max(1);
                let share = total / levels + usize::from(r < total % levels);
                ShRung {
                    rung: r,
                    survivors,
                    budget: share / survivors,
                    scenario_denom: eta.pow((levels - 1 - r) as u32),
                }
            })
            .collect();
        Ok(ShSchedule {
            eta,
            total,
            min_scenarios,
            rungs,
        })
    }

    /// Evaluations the ladder actually assigns (≤ `total`; the planned
    /// spend of a fault-free execution, which is what calibd charges
    /// quota for).
    pub fn total_evaluations(&self) -> usize {
        self.rungs.iter().map(|r| r.survivors * r.budget).sum()
    }

    /// The fidelity entrants of rung `r` evaluate at.
    pub fn fidelity(&self, r: usize) -> Fidelity {
        Fidelity {
            rung: r,
            scenario_denom: self.rungs[r].scenario_denom,
            min_scenarios: self.min_scenarios,
        }
    }
}

/// Per-run budgets for a plan of `runs` runs under `policy`. For
/// successive halving the plan's nominal per-run budget is the rung-0
/// budget (rung executions carry their own budgets).
///
/// Errs with [`SweepError::BudgetTooSmall`] when a total budget cannot
/// give every run at least one evaluation.
fn run_budgets(policy: &BudgetPolicy, runs: usize) -> Result<Vec<Budget>, SweepError> {
    match *policy {
        BudgetPolicy::PerRun { budget } => Ok(vec![budget; runs]),
        BudgetPolicy::TotalEvaluations { total } => {
            if total < runs {
                return Err(SweepError::BudgetTooSmall {
                    total,
                    runs,
                    needed: runs,
                });
            }
            let base = total / runs;
            let extra = total % runs;
            Ok((0..runs)
                .map(|i| Budget::Evaluations(base + usize::from(i < extra)))
                .collect())
        }
        BudgetPolicy::SuccessiveHalving {
            total,
            eta,
            min_scenarios,
        } => {
            let schedule = ShSchedule::plan(runs, total, eta, min_scenarios)?;
            Ok(vec![Budget::Evaluations(schedule.rungs[0].budget); runs])
        }
    }
}

pub(crate) struct RunPlan {
    pub(crate) unit_idx: usize,
    pub(crate) restart: usize,
    pub(crate) seed: u64,
    pub(crate) budget: Budget,
    pub(crate) key: u64,
}

/// The fully-expanded deterministic plan of a sweep: everything the run
/// phase needs, computed identically by `run_sweep` and by every shard of
/// a sharded execution ([`crate::shard`]).
pub(crate) struct PlannedSweep {
    pub(crate) name: String,
    pub(crate) fingerprint: u64,
    pub(crate) labels: Vec<String>,
    pub(crate) units: Vec<SweepUnit>,
    pub(crate) restarts: usize,
    pub(crate) policy_json: String,
    pub(crate) plans: Vec<RunPlan>,
    /// The rung ladder, for successive-halving sweeps only.
    pub(crate) schedule: Option<ShSchedule>,
}

/// Plan the FULL (unit × restart) grid — budgets and checkpoint keys must
/// not depend on where an interruption (or a shard boundary) lands.
pub(crate) fn plan_sweep(
    family: &dyn VersionFamily,
    config: &SweepConfig,
) -> Result<PlannedSweep, SweepError> {
    let labels = family.version_labels();
    let units = family.units();
    assert!(!units.is_empty(), "family has no units to sweep");
    let restarts = config.restarts.max(1);
    let name = family.name().to_string();
    let fingerprint = family.fingerprint();
    let policy_json = serde_json::to_string(&config.budget).expect("policy serializes");
    let schedule = match config.budget {
        BudgetPolicy::SuccessiveHalving {
            total,
            eta,
            min_scenarios,
        } => Some(ShSchedule::plan(
            units.len() * restarts,
            total,
            eta,
            min_scenarios,
        )?),
        _ => None,
    };
    let budgets = run_budgets(&config.budget, units.len() * restarts)?;
    let plans: Vec<RunPlan> = units
        .iter()
        .enumerate()
        .flat_map(|(ui, unit)| {
            let budgets = &budgets;
            let name = &name;
            let policy_json = &policy_json;
            let sh = schedule.is_some();
            (0..restarts).map(move |r| {
                let seed = restart_seed(config.seed, r);
                let budget = budgets[ui * restarts + r];
                // A successive-halving run's base key covers the whole
                // policy (not just the nominal rung-0 budget), so two SH
                // configurations that happen to share a rung-0 budget
                // never replay each other's rung records or decisions.
                let key = if sh {
                    fnv1a(
                        format!(
                            "shrun|family={name}|fp={fingerprint:016x}|unit={}|restart={r}|\
                             seed={seed}|policy={policy_json}",
                            unit.label
                        )
                        .as_bytes(),
                    )
                } else {
                    run_key(name, fingerprint, &unit.label, r, seed, &budget)
                };
                RunPlan {
                    unit_idx: ui,
                    restart: r,
                    seed,
                    budget,
                    key,
                }
            })
        })
        .collect();
    Ok(PlannedSweep {
        name,
        fingerprint,
        labels,
        units,
        restarts,
        policy_json,
        plans,
        schedule,
    })
}

/// What happened to one pending calibration run.
pub(crate) enum RunStatus {
    Done(Box<RunRecord>),
    Failed { attempt: usize, reason: String },
}

/// Execute one pending calibration run under the fault guard, appending
/// its checkpoint (or failure) to `ledger`. Shared by `run_sweep` and the
/// sharded executor ([`crate::shard::run_shard`]), so a shard's records
/// are bit-for-bit what a single-process sweep would have written.
pub(crate) fn calibrate_one(
    family: &dyn VersionFamily,
    unit: &SweepUnit,
    plan: &RunPlan,
    attempt: usize,
    ledger: Option<&Ledger>,
) -> RunStatus {
    // The guard isolates a panicking simulator version: its runs become
    // RunFailed events and the sweep degrades instead of unwinding.
    // (Individual evaluation panics are already quarantined inside
    // simcal; what reaches here is a version whose calibration found no
    // usable incumbent at all, or a family whose calibrate itself
    // crashed.)
    match simcal::fault::guard(|| family.calibrate(unit, plan.budget, plan.seed)) {
        Ok(result) if result.loss.is_finite() => {
            let record = RunRecord {
                key: plan.key,
                unit: unit.label.clone(),
                restart: plan.restart,
                seed: plan.seed,
                result,
            };
            if let Some(l) = ledger {
                log_io(l.append(&LedgerEvent::RunCompleted {
                    record: record.clone(),
                }));
            }
            RunStatus::Done(Box::new(record))
        }
        outcome => {
            let reason = match outcome {
                Ok(result) => {
                    format!("calibration returned non-finite loss {}", result.loss)
                }
                Err(message) => message,
            };
            if let Some(l) = ledger {
                log_io(l.append(&LedgerEvent::RunFailed {
                    key: plan.key,
                    unit: unit.label.clone(),
                    restart: plan.restart,
                    seed: plan.seed,
                    attempt,
                    stage: "calibrate".into(),
                    reason: reason.clone(),
                }));
            }
            RunStatus::Failed { attempt, reason }
        }
    }
}

/// What one rung execution of one successive-halving run produced.
enum RungStatus {
    Done {
        result: CalibrationResult,
        /// Whether the result was computed now (false = rung checkpoint).
        fresh: bool,
    },
    Failed {
        attempt: usize,
        reason: String,
        retriable: bool,
    },
    /// Not executed: the rung's decision is sealed in the ledger and this
    /// run was eliminated without leaving a rung record — i.e. its rung
    /// calibration failed in the recorded execution. Re-running could not
    /// change the sealed decision, so the replay skips it.
    Skipped,
}

/// Everything the successive-halving phase hands back to the sweep.
pub(crate) struct ShPhase {
    /// Per base plan key: the run's result from the highest rung it
    /// reached (eliminated runs keep their last rung's result, so every
    /// version still gets outcomes for the Pareto reduction).
    pub(crate) results: HashMap<u64, CalibrationResult>,
    /// Per base plan key: which rung that result came from.
    pub(crate) result_rungs: HashMap<u64, usize>,
    /// Runs that produced no result on any rung.
    pub(crate) failed: HashMap<u64, RunFailure>,
    /// Rung executions actually computed now (not replayed).
    pub(crate) executed: usize,
    /// The deterministic summary for [`SweepOutcome::sh`].
    pub(crate) report: ShReport,
}

/// Execute (or replay) the successive-halving ladder over `active_plans`.
///
/// Per rung: serve each entrant's rung calibration from its ledger
/// checkpoint or run it fresh (as [`LedgerEvent::RungCompleted`]), then
/// promote. If the ledger already holds a decision for every entrant the
/// recorded decisions are *replayed*; otherwise entrants are ranked by
/// rung loss (ascending `total_cmp`, ties broken by plan order) and the
/// top `survivors(r+1)` promoted, with every decision appended in plan
/// order. A run whose rung calibration failed is never promoted.
pub(crate) fn run_sh_phase(
    family: &dyn VersionFamily,
    labels: &[String],
    units: &[SweepUnit],
    schedule: &ShSchedule,
    active_plans: &[&RunPlan],
    config: &SweepConfig,
    ledger: Option<&Ledger>,
) -> ShPhase {
    let (rung_records, decisions) = match ledger {
        Some(l) => (l.rung_checkpoints(), l.rung_decisions()),
        None => (HashMap::new(), HashMap::new()),
    };
    let failure_history: HashMap<u64, FailureHistory> = match ledger {
        Some(l) => l.failure_history(),
        None => HashMap::new(),
    };
    let max_attempts = 1 + config.max_fault_retries;
    let attempts_of = |key: u64| failure_history.get(&key).map_or(0, |h| h.attempts);
    let failure_row = |i: usize, attempt: usize, retriable: bool, stage: &str, reason: String| {
        let p: &RunPlan = active_plans[i];
        RunFailure {
            version: labels[units[p.unit_idx].version].clone(),
            unit: units[p.unit_idx].label.clone(),
            restart: p.restart,
            stage: stage.into(),
            attempt,
            retriable,
            reason,
        }
    };

    let levels = schedule.rungs.len();
    let mut highest: Vec<Option<(usize, CalibrationResult)>> = vec![None; active_plans.len()];
    let mut last_failure: Vec<Option<RunFailure>> = vec![None; active_plans.len()];
    let mut active: Vec<usize> = (0..active_plans.len()).collect();
    let mut rung_reports: Vec<ShRungReport> = Vec::new();
    let mut executed = 0usize;

    for rung in &schedule.rungs {
        let r = rung.rung;
        let entering = active.clone();
        let fidelity = schedule.fidelity(r);
        let rung_budget = Budget::Evaluations(rung.budget);
        let rung_span = obs::span!("rung", rung = r, entrants = entering.len());
        let rung_span_id = rung_span.id();
        // A rung's decision is sealed once the ledger covers every
        // entrant; replay then substitutes for re-ranking. (The final
        // rung decides nothing.)
        let sealed = r + 1 < levels
            && entering
                .iter()
                .all(|&i| decisions.contains_key(&(active_plans[i].key, r)));

        let statuses: Vec<RungStatus> = entering
            .par_iter()
            .map(|&i| {
                let p = active_plans[i];
                let unit = &units[p.unit_idx];
                if let Some(rec) = rung_records.get(&(p.key, r)) {
                    return RungStatus::Done {
                        result: rec.result.clone(),
                        fresh: false,
                    };
                }
                if sealed && decisions.get(&(p.key, r)) == Some(&false) {
                    return RungStatus::Skipped;
                }
                let rkey = rung_key(p.key, r, &rung_budget, rung.scenario_denom);
                let prior = attempts_of(rkey);
                if prior >= max_attempts {
                    let h = &failure_history[&rkey];
                    return RungStatus::Failed {
                        attempt: h.attempts,
                        reason: h.last_reason.clone(),
                        retriable: false,
                    };
                }
                let attrs = if obs::enabled() {
                    vec![
                        ("unit", unit.label.clone()),
                        ("restart", p.restart.to_string()),
                    ]
                } else {
                    Vec::new()
                };
                let _run = obs::SpanGuard::enter_under("run", rung_span_id, attrs);
                match simcal::fault::guard(|| {
                    family.calibrate_at(unit, rung_budget, p.seed, &fidelity)
                }) {
                    Ok(result) if result.loss.is_finite() => {
                        if let Some(l) = ledger {
                            log_io(l.append(&LedgerEvent::RungCompleted {
                                base: p.key,
                                rung: r,
                                record: RunRecord {
                                    key: rkey,
                                    unit: unit.label.clone(),
                                    restart: p.restart,
                                    seed: p.seed,
                                    result: result.clone(),
                                },
                            }));
                        }
                        RungStatus::Done {
                            result,
                            fresh: true,
                        }
                    }
                    outcome => {
                        let reason = match outcome {
                            Ok(result) => {
                                format!("calibration returned non-finite loss {}", result.loss)
                            }
                            Err(message) => message,
                        };
                        let attempt = prior + 1;
                        if let Some(l) = ledger {
                            log_io(l.append(&LedgerEvent::RunFailed {
                                key: rkey,
                                unit: unit.label.clone(),
                                restart: p.restart,
                                seed: p.seed,
                                attempt,
                                stage: "calibrate".into(),
                                reason: reason.clone(),
                            }));
                        }
                        RungStatus::Failed {
                            attempt,
                            reason,
                            retriable: attempt < max_attempts,
                        }
                    }
                }
            })
            .collect();

        let mut succeeded: Vec<usize> = Vec::new();
        let mut rung_losses: HashMap<usize, f64> = HashMap::new();
        let mut failed_count = 0usize;
        for (&i, status) in entering.iter().zip(statuses) {
            match status {
                RungStatus::Done { result, fresh } => {
                    if fresh {
                        executed += 1;
                    }
                    rung_losses.insert(i, result.loss);
                    highest[i] = Some((r, result));
                    succeeded.push(i);
                }
                RungStatus::Failed {
                    attempt,
                    reason,
                    retriable,
                } => {
                    failed_count += 1;
                    last_failure[i] = Some(failure_row(i, attempt, retriable, "calibrate", reason));
                }
                RungStatus::Skipped => {
                    failed_count += 1;
                    let rkey = rung_key(active_plans[i].key, r, &rung_budget, rung.scenario_denom);
                    if let Some(h) = failure_history.get(&rkey) {
                        last_failure[i] = Some(failure_row(
                            i,
                            h.attempts,
                            false,
                            &h.stage,
                            h.last_reason.clone(),
                        ));
                    }
                }
            }
        }

        let promoted: Vec<usize> = if r + 1 < levels {
            if sealed {
                entering
                    .iter()
                    .copied()
                    .filter(|&i| decisions.get(&(active_plans[i].key, r)) == Some(&true))
                    .collect()
            } else {
                let target = schedule.rungs[r + 1].survivors.min(succeeded.len());
                // Stable sort by rung loss: ties keep plan order, and
                // only successful entrants are rankable at all.
                let mut order = succeeded.clone();
                order.sort_by(|&a, &b| rung_losses[&a].total_cmp(&rung_losses[&b]));
                let mut chosen = order[..target].to_vec();
                chosen.sort_unstable();
                if let Some(l) = ledger {
                    for &i in &entering {
                        let key = active_plans[i].key;
                        let event = if chosen.contains(&i) {
                            LedgerEvent::RunPromoted { key, rung: r }
                        } else {
                            LedgerEvent::RunEliminated { key, rung: r }
                        };
                        log_io(l.append(&event));
                    }
                }
                chosen
            }
        } else {
            entering.clone()
        };

        rung_reports.push(ShRungReport {
            rung: r,
            entrants: entering.len(),
            budget: rung.budget,
            scenario_denom: rung.scenario_denom,
            promoted: promoted.len(),
            failed: failed_count,
        });
        active = promoted;
    }

    let mut results = HashMap::new();
    let mut result_rungs = HashMap::new();
    let mut failed = HashMap::new();
    for (i, p) in active_plans.iter().enumerate() {
        match &highest[i] {
            Some((r, result)) => {
                results.insert(p.key, result.clone());
                result_rungs.insert(p.key, *r);
            }
            None => {
                let failure = last_failure[i].clone().unwrap_or_else(|| {
                    failure_row(
                        i,
                        max_attempts,
                        false,
                        "calibrate",
                        "rung execution skipped after recorded elimination".into(),
                    )
                });
                failed.insert(p.key, failure);
            }
        }
    }
    ShPhase {
        results,
        result_rungs,
        failed,
        executed,
        report: ShReport {
            eta: schedule.eta,
            total: schedule.total,
            min_scenarios: schedule.min_scenarios,
            planned_evaluations: schedule.total_evaluations(),
            rungs: rung_reports,
        },
    }
}

/// What happened to one unit's winner selection + held-out evaluation.
enum UnitStatus {
    Done(Box<UnitOutcome>),
    /// The evaluation itself failed (its runs were fine).
    Failed(RunFailure),
    /// Every calibration run of the unit failed; those failures are
    /// already reported individually, so the unit adds nothing.
    Skipped,
}

/// Execute (or resume) a sweep of `family` under `config`.
///
/// Infallible wrapper over [`try_run_sweep`] for callers that treat an
/// unplannable configuration as a programming error.
///
/// # Panics
/// Panics with the [`SweepError`] message when the configuration cannot
/// be planned (e.g. a total budget smaller than the run plan).
pub fn run_sweep(
    family: &dyn VersionFamily,
    config: &SweepConfig,
    ledger: Option<&Ledger>,
) -> SweepOutcome {
    match try_run_sweep(family, config, ledger) {
        Ok(outcome) => outcome,
        Err(e) => panic!("{e}"),
    }
}

/// Execute (or resume) a sweep of `family` under `config`.
///
/// With a ledger, completed runs and unit evaluations found in it are
/// served as checkpoints — no budget is re-consumed — and newly completed
/// work is appended as it finishes, so a kill at any point loses at most
/// the work in flight.
///
/// Errs — without running anything — when the configuration cannot be
/// planned ([`SweepError::BudgetTooSmall`]); services embedding sweeps
/// surface this as a failed job rather than a crashed worker.
pub fn try_run_sweep(
    family: &dyn VersionFamily,
    config: &SweepConfig,
    ledger: Option<&Ledger>,
) -> Result<SweepOutcome, SweepError> {
    let _cache_scope = CacheScope::activate(config.cache.as_deref());

    // Root span plus one sequential child span per phase, all on the
    // calling thread, so a trace report's per-phase totals add up to
    // the sweep's wall time. Per-run/per-unit spans opened on pool
    // workers attach to the phase spans via explicit parenting.
    let _sweep_span = obs::span!(
        "sweep",
        family = family.name().to_string(),
        units = family.units().len(),
        restarts = config.restarts.max(1)
    );
    let plan_span = obs::span!("plan");

    let PlannedSweep {
        name,
        fingerprint,
        labels,
        units,
        restarts,
        policy_json,
        plans,
        schedule,
    } = plan_sweep(family, config)?;

    let active_units = config.max_units.unwrap_or(units.len()).min(units.len());
    let (cached_runs, cached_units) = match ledger {
        Some(l) => l.checkpoints(),
        None => (HashMap::new(), HashMap::new()),
    };
    let failure_history: HashMap<u64, FailureHistory> = match ledger {
        Some(l) => l.failure_history(),
        None => HashMap::new(),
    };
    let max_attempts = 1 + config.max_fault_retries;
    let attempts_of = |key: u64| failure_history.get(&key).map_or(0, |h| h.attempts);

    // Phase 1: calibration runs, fanned onto the pool. Each simulation
    // objective additionally parallelizes over scenarios internally; the
    // pool's help-while-waiting scheduling nests the two levels.
    // A run is pending unless it has a checkpoint or its recorded failed
    // attempts already exhausted the retry allowance (then it is reported
    // from the ledger without re-running).
    let active_plans: Vec<&RunPlan> = plans.iter().take(active_units * restarts).collect();
    let pending_count = match &schedule {
        // Under successive halving a run is "pending" until its rung-0
        // record exists (later rungs depend on decisions, so a flat
        // count is the honest summary here).
        Some(_) => {
            let rung_records = ledger.map(|l| l.rung_checkpoints()).unwrap_or_default();
            active_plans
                .iter()
                .filter(|p| !rung_records.contains_key(&(p.key, 0)))
                .count()
        }
        None => active_plans
            .iter()
            .filter(|p| !cached_runs.contains_key(&p.key) && attempts_of(p.key) < max_attempts)
            .count(),
    };
    if let Some(l) = ledger {
        log_io(l.append(&LedgerEvent::SweepStarted {
            family: name.clone(),
            fingerprint,
            seed: config.seed,
            restarts,
            units: units.len(),
            pending_runs: pending_count,
        }));
    }
    drop(plan_span);
    let calibrate_span = obs::span!("calibrate", pending = pending_count);
    let calibrate_id = calibrate_span.id();

    let mut results: HashMap<u64, CalibrationResult> = HashMap::new();
    let mut result_rungs: HashMap<u64, usize> = HashMap::new();
    let mut failed_runs: HashMap<u64, RunFailure> = HashMap::new();
    let mut sh_report: Option<ShReport> = None;
    if let Some(schedule) = &schedule {
        let phase = run_sh_phase(
            family,
            &labels,
            &units,
            schedule,
            &active_plans,
            config,
            ledger,
        );
        results = phase.results;
        result_rungs = phase.result_rungs;
        failed_runs = phase.failed;
        sh_report = Some(phase.report);
    } else {
        let pending: Vec<&RunPlan> = active_plans
            .iter()
            .filter(|p| !cached_runs.contains_key(&p.key) && attempts_of(p.key) < max_attempts)
            .copied()
            .collect();
        let fresh: Vec<RunStatus> = pending
            .par_iter()
            .map(|p| {
                let attrs = if obs::enabled() {
                    vec![
                        ("unit", units[p.unit_idx].label.clone()),
                        ("restart", p.restart.to_string()),
                    ]
                } else {
                    Vec::new()
                };
                let _run = obs::SpanGuard::enter_under("run", calibrate_id, attrs);
                let attempt = attempts_of(p.key) + 1;
                calibrate_one(family, &units[p.unit_idx], p, attempt, ledger)
            })
            .collect();

        // Runs whose retries were already exhausted: reported from the
        // ledger's history, never re-run.
        for p in &active_plans {
            if cached_runs.contains_key(&p.key) {
                continue;
            }
            if let Some(h) = failure_history.get(&p.key) {
                if h.attempts >= max_attempts {
                    failed_runs.insert(
                        p.key,
                        RunFailure {
                            version: labels[units[p.unit_idx].version].clone(),
                            unit: units[p.unit_idx].label.clone(),
                            restart: p.restart,
                            stage: h.stage.clone(),
                            attempt: h.attempts,
                            retriable: false,
                            reason: h.last_reason.clone(),
                        },
                    );
                }
            }
        }
        for (key, record) in cached_runs {
            results.insert(key, record.result);
        }
        for (p, status) in pending.iter().zip(fresh) {
            match status {
                RunStatus::Done(record) => {
                    results.insert(record.key, record.result);
                }
                RunStatus::Failed { attempt, reason } => {
                    failed_runs.insert(
                        p.key,
                        RunFailure {
                            version: labels[units[p.unit_idx].version].clone(),
                            unit: units[p.unit_idx].label.clone(),
                            restart: p.restart,
                            stage: "calibrate".into(),
                            attempt,
                            retriable: attempt < max_attempts,
                            reason,
                        },
                    );
                }
            }
        }
    }
    // Deterministic report order: plan order, regardless of which pool
    // worker observed the failure.
    let mut failures: Vec<RunFailure> = active_plans
        .iter()
        .filter_map(|p| failed_runs.get(&p.key).cloned())
        .collect();
    drop(calibrate_span);

    // Phase 2: per-unit winner selection + held-out evaluation, also in
    // parallel (each evaluation simulates the full test set once).
    let eval_inputs: Vec<(usize, &SweepUnit)> =
        units.iter().enumerate().take(active_units).collect();
    let evaluate_span = obs::span!("evaluate", units = eval_inputs.len());
    let evaluate_id = evaluate_span.id();
    let unit_statuses: Vec<UnitStatus> = eval_inputs
        .par_iter()
        .map(|&(ui, unit)| {
            let attrs = if obs::enabled() {
                vec![("unit", unit.label.clone())]
            } else {
                Vec::new()
            };
            let _unit_span = obs::SpanGuard::enter_under("unit", evaluate_id, attrs);
            // Winner selection over the restarts that survived phase 1,
            // keeping each survivor's original restart index. Under
            // successive halving only restarts that reached the unit's
            // highest rung compete — a loss computed on a small scenario
            // subset is not comparable to a later rung's fuller loss.
            let per_restart: Vec<(usize, usize, CalibrationResult)> = (0..restarts)
                .filter_map(|r| {
                    let key = plans[ui * restarts + r].key;
                    results
                        .get(&key)
                        .map(|res| (r, result_rungs.get(&key).copied().unwrap_or(0), res.clone()))
                })
                .collect();
            if per_restart.is_empty() {
                return UnitStatus::Skipped;
            }
            let top_rung = per_restart.iter().map(|&(_, g, _)| g).max().unwrap_or(0);
            let candidates: Vec<&(usize, usize, CalibrationResult)> = per_restart
                .iter()
                .filter(|&&(_, g, _)| g == top_rung)
                .collect();
            let survivors: Vec<CalibrationResult> =
                candidates.iter().map(|&(_, _, r)| r.clone()).collect();
            let winner = pick_best(&survivors);
            let best_restart = candidates[winner].0;
            let best = survivors[winner].clone();
            let degraded = per_restart.len() < restarts;

            let ukey = unit_key(
                &name,
                fingerprint,
                &unit.label,
                restarts,
                config.seed,
                &policy_json,
            );
            if let Some(rec) = cached_units.get(&ukey) {
                return UnitStatus::Done(Box::new(UnitOutcome {
                    label: unit.label.clone(),
                    version: unit.version,
                    best_restart: rec.best_restart,
                    best,
                    samples: rec.samples.clone(),
                    work_units: rec.work_units,
                    wall_secs: rec.wall_secs,
                    cached: true,
                }));
            }
            let prior_attempts = attempts_of(ukey);
            if prior_attempts >= max_attempts {
                let h = &failure_history[&ukey];
                return UnitStatus::Failed(RunFailure {
                    version: labels[unit.version].clone(),
                    unit: unit.label.clone(),
                    restart: best_restart,
                    stage: h.stage.clone(),
                    attempt: h.attempts,
                    retriable: false,
                    reason: h.last_reason.clone(),
                });
            }
            let t0 = Instant::now();
            let eval = match simcal::fault::guard(|| family.evaluate(unit, &best.calibration)) {
                Ok(eval) if eval.samples.iter().all(|s| s.is_finite()) => eval,
                outcome => {
                    let reason = match outcome {
                        Ok(_) => "held-out evaluation produced non-finite samples".to_string(),
                        Err(message) => message,
                    };
                    let attempt = prior_attempts + 1;
                    if let Some(l) = ledger {
                        log_io(l.append(&LedgerEvent::RunFailed {
                            key: ukey,
                            unit: unit.label.clone(),
                            restart: best_restart,
                            seed: config.seed,
                            attempt,
                            stage: "evaluate".into(),
                            reason: reason.clone(),
                        }));
                    }
                    return UnitStatus::Failed(RunFailure {
                        version: labels[unit.version].clone(),
                        unit: unit.label.clone(),
                        restart: best_restart,
                        stage: "evaluate".into(),
                        attempt,
                        retriable: attempt < max_attempts,
                        reason,
                    });
                }
            };
            let wall_secs = t0.elapsed().as_secs_f64();
            let record = UnitRecord {
                key: ukey,
                unit: unit.label.clone(),
                best_restart,
                samples: eval.samples.clone(),
                work_units: eval.work_units,
                wall_secs,
            };
            // A degraded unit (some restarts failed) is not checkpointed:
            // once a resume successfully retries the failed runs, the
            // winner may change, and a stale checkpoint would pin the old
            // evaluation forever.
            if !degraded {
                if let Some(l) = ledger {
                    log_io(l.append(&LedgerEvent::UnitCompleted { record }));
                }
            }
            UnitStatus::Done(Box::new(UnitOutcome {
                label: unit.label.clone(),
                version: unit.version,
                best_restart,
                best,
                samples: eval.samples,
                work_units: eval.work_units,
                wall_secs,
                cached: false,
            }))
        })
        .collect();
    let mut unit_outcomes: Vec<UnitOutcome> = Vec::new();
    for status in unit_statuses {
        match status {
            UnitStatus::Done(outcome) => unit_outcomes.push(*outcome),
            UnitStatus::Failed(failure) => failures.push(failure),
            UnitStatus::Skipped => {}
        }
    }
    drop(evaluate_span);

    // Reduce to versions; under truncation keep only fully-covered ones.
    let _reduce_span = obs::span!("reduce");
    let mut versions = Vec::new();
    for (vi, label) in labels.iter().enumerate() {
        let mine: Vec<UnitOutcome> = unit_outcomes
            .iter()
            .filter(|u| u.version == vi)
            .cloned()
            .collect();
        let expected = units.iter().filter(|u| u.version == vi).count();
        if mine.is_empty() || mine.len() < expected {
            continue;
        }
        let samples: Vec<f64> = mine.iter().flat_map(|u| u.samples.clone()).collect();
        versions.push(VersionOutcome {
            label: label.clone(),
            dim: family.dim(vi),
            test_error: numeric::mean(&samples),
            samples,
            work_units: mine.iter().map(|u| u.work_units).sum(),
            wall_secs: mine.iter().map(|u| u.wall_secs).sum(),
            units: mine,
        });
    }

    let complete = active_units == units.len();
    // Recommend from the surviving versions; a sweep whose every version
    // failed has nobody left to recommend, and a slate whose every
    // surviving version carries a non-finite test error has nothing to
    // anchor ε-eligibility on — both degrade to a failure row instead of
    // a recommendation.
    let mut recommendation = None;
    if complete && !versions.is_empty() {
        match try_recommend(
            &versions.iter().map(|v| v.label.clone()).collect::<Vec<_>>(),
            &versions.iter().map(|v| v.test_error).collect::<Vec<_>>(),
            &versions.iter().map(|v| v.work_units).collect::<Vec<_>>(),
            config.epsilon,
        ) {
            Ok(rec) => recommendation = Some(rec),
            Err(e) => failures.push(RunFailure {
                version: "(all)".into(),
                unit: "(recommendation)".into(),
                restart: 0,
                stage: "recommend".into(),
                attempt: 1,
                retriable: false,
                reason: e.to_string(),
            }),
        }
    }
    let outcome = SweepOutcome {
        family: name.clone(),
        complete,
        versions,
        failures,
        recommendation,
        sh: sh_report,
    };
    if complete {
        if let (Some(l), Some(rec)) = (ledger, &outcome.recommendation) {
            log_io(l.append(&LedgerEvent::SweepCompleted {
                family: name,
                digest: outcome.digest(),
                chosen: rec.chosen.clone(),
            }));
        }
    }
    Ok(outcome)
}

/// A ledger write failure must not abort a sweep mid-flight (the result is
/// still computed; only resumability degrades) — report it and carry on.
fn log_io(result: std::io::Result<()>) {
    if let Err(e) = result {
        obs::diag!("ledger append failed: {e}");
    }
}

/// Mark versions on the accuracy-versus-cost Pareto front of an outcome.
pub fn front_flags(versions: &[VersionOutcome]) -> Vec<bool> {
    pareto_front(
        &versions
            .iter()
            .map(|v| (v.test_error, v.work_units))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_budget_divides_fairly_with_remainder_to_earliest() {
        let b = run_budgets(&BudgetPolicy::TotalEvaluations { total: 100 }, 8).unwrap();
        let evals: Vec<usize> = b
            .iter()
            .map(|b| match b {
                Budget::Evaluations(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(evals, vec![13, 13, 13, 13, 12, 12, 12, 12]);
        assert_eq!(evals.iter().sum::<usize>(), 100);
    }

    #[test]
    fn per_run_budget_is_replicated() {
        let b = run_budgets(
            &BudgetPolicy::PerRun {
                budget: Budget::Evaluations(7),
            },
            3,
        )
        .unwrap();
        assert_eq!(b, vec![Budget::Evaluations(7); 3]);
    }

    #[test]
    fn starving_a_run_is_a_typed_error_not_a_panic() {
        // Regression: this used to `assert!`, so a calibd job submitted
        // with a tiny quota aborted the worker thread that planned it.
        let err = run_budgets(&BudgetPolicy::TotalEvaluations { total: 3 }, 5).unwrap_err();
        assert_eq!(
            err,
            SweepError::BudgetTooSmall {
                total: 3,
                runs: 5,
                needed: 5
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("cannot cover"), "{msg}");
        assert!(msg.contains("3 evaluations"), "{msg}");
    }

    #[test]
    fn sh_schedule_halves_survivors_and_grows_subsets() {
        // 8 runs, eta 2 -> 4 rungs keeping 8, 4, 2, 1 survivors on
        // 1/8, 1/4, 1/2, full scenario subsets.
        let s = ShSchedule::plan(8, 48, 2, 1).unwrap();
        let survivors: Vec<usize> = s.rungs.iter().map(|r| r.survivors).collect();
        let denoms: Vec<usize> = s.rungs.iter().map(|r| r.scenario_denom).collect();
        let budgets: Vec<usize> = s.rungs.iter().map(|r| r.budget).collect();
        assert_eq!(survivors, vec![8, 4, 2, 1]);
        assert_eq!(denoms, vec![8, 4, 2, 1]);
        // Each rung splits an equal 12-evaluation share over its
        // survivors; later rungs give each survivor more.
        assert_eq!(budgets, vec![1, 3, 6, 12]);
        assert!(s.total_evaluations() <= 48);
        assert_eq!(s.total_evaluations(), 8 + 12 + 12 + 12);
        // The final rung is always full fidelity.
        assert!(s.fidelity(3).is_full(1000));
        assert!(!s.fidelity(0).is_full(1000));
    }

    #[test]
    fn sh_schedule_is_deterministic_and_rejects_tiny_budgets() {
        assert_eq!(
            ShSchedule::plan(6, 60, 3, 2).unwrap(),
            ShSchedule::plan(6, 60, 3, 2).unwrap()
        );
        // 5 runs, eta 2 -> 3 rungs; anything under 15 cannot give every
        // rung-0 entrant one evaluation from its share.
        let err = ShSchedule::plan(5, 14, 2, 1).unwrap_err();
        assert_eq!(
            err,
            SweepError::BudgetTooSmall {
                total: 14,
                runs: 5,
                needed: 15
            }
        );
        assert!(ShSchedule::plan(5, 15, 2, 1).is_ok());
        // A single run degenerates to one full-fidelity rung.
        let s = ShSchedule::plan(1, 9, 2, 1).unwrap();
        assert_eq!(s.rungs.len(), 1);
        assert_eq!(s.rungs[0].scenario_denom, 1);
        assert_eq!(s.rungs[0].budget, 9);
        // eta is clamped to at least 2 (eta 1 would never halve).
        assert_eq!(ShSchedule::plan(4, 30, 0, 1).unwrap().eta, 2);
    }

    #[test]
    fn sh_run_budgets_use_the_rung_zero_budget() {
        let b = run_budgets(
            &BudgetPolicy::SuccessiveHalving {
                total: 48,
                eta: 2,
                min_scenarios: 1,
            },
            8,
        )
        .unwrap();
        assert_eq!(b, vec![Budget::Evaluations(1); 8]);
    }
}
