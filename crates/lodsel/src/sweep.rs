//! The sweep orchestrator: plan the full (unit × restart) grid, divide the
//! budget fairly, replay ledger checkpoints, fan the remaining runs onto
//! the work-stealing pool, and reduce everything to per-version outcomes
//! plus the Pareto recommendation.
//!
//! Determinism contract: with [`simcal::prelude::Budget::Evaluations`]
//! budgets, a sweep's deterministic outcome — everything covered by
//! [`SweepOutcome::digest`] — is identical across thread counts, across
//! fresh/interrupted/resumed executions, and across machines. Wall-clock
//! measurements are carried alongside for observability but never feed
//! the digest or the recommendation.
//!
//! Failure model: a simulator version that panics or yields only
//! non-finite values must not take the whole sweep down. Every
//! `family.calibrate` / `family.evaluate` call runs under
//! [`simcal::fault::guard`]; a crash becomes a
//! [`LedgerEvent::RunFailed`] event and a [`RunFailure`] row in the
//! outcome, the affected version drops out of the recommendation, and a
//! resume retries the failed work up to
//! [`SweepConfig::max_fault_retries`] additional times before reporting
//! it as permanently failed. Fault-free sweeps digest bit-for-bit as
//! they always have; failures extend the digest only when present.

use crate::family::{SweepUnit, VersionFamily};
use crate::ledger::{
    run_key, unit_key, FailureHistory, Ledger, LedgerEvent, RunRecord, UnitRecord,
};
use crate::multistart::{pick_best, restart_seed};
use crate::pareto::{pareto_front, try_recommend, Recommendation};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simcal::prelude::{Budget, CalibrationResult};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

/// How the sweep's evaluation budget is distributed over calibration runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BudgetPolicy {
    /// Every run gets the same fixed budget (what the paper's per-figure
    /// experiments do).
    PerRun {
        /// The per-run budget.
        budget: Budget,
    },
    /// A shared evaluation budget divided fairly across the full
    /// (unit × restart) plan: every run gets `total / runs`, and the
    /// remainder goes to the earliest runs in plan order. The division is
    /// computed over the *full* plan even when execution is truncated by
    /// [`SweepConfig::max_units`], so an interrupted sweep and its resume
    /// assign identical budgets to every run.
    TotalEvaluations {
        /// Total loss evaluations available to the whole sweep.
        total: usize,
    },
}

/// Configuration of one sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Budget distribution.
    pub budget: BudgetPolicy,
    /// Restarts per unit (clamped to at least one).
    pub restarts: usize,
    /// Master seed; restart seeds derive from it exactly as the
    /// standalone experiment binaries always have.
    pub seed: u64,
    /// Relative accuracy tolerance of the recommendation.
    pub epsilon: f64,
    /// Stop after this many units (test hook for interruption; `None`
    /// sweeps everything). Budgets and checkpoint keys are unaffected.
    pub max_units: Option<usize>,
    /// How many times a resume may retry a run (or unit evaluation) that
    /// failed in an earlier execution. Within one execution each pending
    /// item is attempted once; across executions a keyed item is
    /// attempted at most `1 + max_fault_retries` times, after which it is
    /// reported as permanently failed straight from the ledger without
    /// re-running. Without a ledger there is nothing to count attempts
    /// against, so the value is inert.
    pub max_fault_retries: usize,
    /// Persistent loss-cache directory ([`simcal::cache`]). When set, it
    /// is installed process-globally for the duration of the sweep (the
    /// previous state is restored afterwards), so every calibration whose
    /// objective carries a cache fingerprint replays identical
    /// evaluations from disk across sweep executions. `None` leaves
    /// whatever is already active (an installed directory or
    /// `CALIB_CACHE`) untouched.
    pub cache: Option<PathBuf>,
}

impl SweepConfig {
    /// A per-run-budget sweep configuration with the default ε of 10%
    /// and two fault retries.
    pub fn per_run(budget: Budget, restarts: usize, seed: u64) -> Self {
        Self {
            budget: BudgetPolicy::PerRun { budget },
            restarts,
            seed,
            epsilon: 0.1,
            max_units: None,
            max_fault_retries: 2,
            cache: None,
        }
    }
}

/// Identity of a sweep's run plan: family name and dataset fingerprint,
/// master seed, restarts, budget policy, and unit count. Two sweep
/// configurations with equal fingerprints generate bit-for-bit identical
/// (version × restart) run plans — identical checkpoint keys, budgets,
/// and seeds — so their ledger shards can be merged
/// ([`crate::shard::merge_shards`]). Settings that do not change any run
/// (ε, truncation, retry allowance, cache directory) are excluded.
pub fn sweep_fingerprint(family: &dyn VersionFamily, config: &SweepConfig) -> u64 {
    let policy_json = serde_json::to_string(&config.budget).expect("policy serializes");
    crate::ledger::fnv1a(
        format!(
            "sweep|family={}|fp={:016x}|seed={}|restarts={}|policy={}|units={}",
            family.name(),
            family.fingerprint(),
            config.seed,
            config.restarts.max(1),
            policy_json,
            family.units().len()
        )
        .as_bytes(),
    )
}

/// Installs a sweep's persistent-cache directory for its duration and
/// restores the previous process-global state on drop (panic-safe).
pub(crate) struct CacheScope {
    previous: Option<std::sync::Arc<PathBuf>>,
    active: bool,
}

impl CacheScope {
    pub(crate) fn activate(dir: Option<&std::path::Path>) -> Self {
        match dir {
            Some(d) => {
                let previous = simcal::cache::installed();
                simcal::cache::install(d);
                Self {
                    previous,
                    active: true,
                }
            }
            None => Self {
                previous: None,
                active: false,
            },
        }
    }
}

impl Drop for CacheScope {
    fn drop(&mut self) {
        if self.active {
            match self.previous.take() {
                Some(p) => simcal::cache::install(p.as_ref().clone()),
                None => simcal::cache::uninstall(),
            }
        }
    }
}

/// Outcome of one unit: its winning calibration and held-out evaluation.
#[derive(Clone, Debug)]
pub struct UnitOutcome {
    /// Unit label.
    pub label: String,
    /// Index of the unit's version.
    pub version: usize,
    /// Which restart won (lowest training loss, first-wins on ties).
    pub best_restart: usize,
    /// The winning calibration result.
    pub best: CalibrationResult,
    /// Held-out test errors.
    pub samples: Vec<f64>,
    /// Deterministic simulation work of the held-out evaluation.
    pub work_units: u64,
    /// Measured evaluation wall-clock seconds (observability only).
    pub wall_secs: f64,
    /// Whether the evaluation was served from a ledger checkpoint.
    pub cached: bool,
}

/// Aggregated outcome of one version (all of its units).
#[derive(Clone, Debug)]
pub struct VersionOutcome {
    /// Version label.
    pub label: String,
    /// Dimensionality of the version's parameter space.
    pub dim: usize,
    /// Per-unit outcomes, in unit order.
    pub units: Vec<UnitOutcome>,
    /// Concatenated unit samples (the Figure-2/5-style summary inputs).
    pub samples: Vec<f64>,
    /// Mean of `samples`: the version's held-out test error.
    pub test_error: f64,
    /// Total deterministic simulation work across units.
    pub work_units: u64,
    /// Total measured wall seconds across units (calibration excluded;
    /// observability only).
    pub wall_secs: f64,
}

/// One failed (version, unit, restart) item of a degraded sweep.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RunFailure {
    /// Version label the failed unit belongs to.
    pub version: String,
    /// Unit label.
    pub unit: String,
    /// Restart index of the failed calibration run; for evaluate-stage
    /// failures, the winning restart whose calibration was evaluated.
    pub restart: usize,
    /// Which stage failed: `"calibrate"` or `"evaluate"`.
    pub stage: String,
    /// Attempts made so far across executions (1-based).
    pub attempt: usize,
    /// Whether a resume against the same ledger will retry this item
    /// (false once attempts reach `1 + max_fault_retries`).
    pub retriable: bool,
    /// Readable failure reason (panic message or a summary).
    pub reason: String,
}

/// Outcome of a sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Family identifier.
    pub family: String,
    /// Whether every unit of the family was covered (false only under
    /// [`SweepConfig::max_units`] truncation).
    pub complete: bool,
    /// Completed versions, in family order. Under truncation a version
    /// with only some units done is omitted entirely, as is a version
    /// none of whose runs survived its faults.
    pub versions: Vec<VersionOutcome>,
    /// Runs and unit evaluations that failed (panicked or produced only
    /// non-finite values), in deterministic plan order. Empty for a
    /// healthy sweep.
    pub failures: Vec<RunFailure>,
    /// The recommendation; present only for complete sweeps that left at
    /// least one version with usable results.
    pub recommendation: Option<Recommendation>,
}

/// The digest's serialized shape: every deterministic field of the
/// outcome, and nothing wall-clock-dependent.
#[derive(Serialize)]
struct DigestUnit {
    label: String,
    best_restart: usize,
    loss: f64,
    calibration: Vec<f64>,
    evaluations: usize,
    samples: Vec<f64>,
    work_units: u64,
}

#[derive(Serialize)]
struct DigestDoc {
    family: String,
    complete: bool,
    versions: Vec<(String, Vec<DigestUnit>)>,
    recommendation: Option<Recommendation>,
}

impl SweepOutcome {
    /// Hex digest of the outcome's deterministic content. Fresh,
    /// interrupted-then-resumed, serial, and parallel executions of the
    /// same sweep all digest identically; wall-clock fields are excluded.
    pub fn digest(&self) -> String {
        let doc = DigestDoc {
            family: self.family.clone(),
            complete: self.complete,
            versions: self
                .versions
                .iter()
                .map(|v| {
                    (
                        v.label.clone(),
                        v.units
                            .iter()
                            .map(|u| DigestUnit {
                                label: u.label.clone(),
                                best_restart: u.best_restart,
                                loss: u.best.loss,
                                calibration: u.best.calibration.values.clone(),
                                evaluations: u.best.evaluations,
                                samples: u.samples.clone(),
                                work_units: u.work_units,
                            })
                            .collect(),
                    )
                })
                .collect(),
            recommendation: self.recommendation.clone(),
        };
        let json = serde_json::to_string(&doc).expect("digest serializes");
        let mut bytes = json.into_bytes();
        // Failures extend the digest input only when present, so the
        // digest of a fault-free sweep is bit-for-bit what it was before
        // failures existed (pinned by the golden tests), while degraded
        // sweeps with different failure sets digest differently.
        if !self.failures.is_empty() {
            let failures = serde_json::to_string(&self.failures).expect("digest serializes");
            bytes.extend_from_slice(failures.as_bytes());
        }
        format!("{:016x}", crate::ledger::fnv1a(&bytes))
    }
}

/// Per-run budgets for a plan of `runs` runs under `policy`.
///
/// # Panics
/// With [`BudgetPolicy::TotalEvaluations`], panics unless every run gets
/// at least one evaluation.
fn run_budgets(policy: &BudgetPolicy, runs: usize) -> Vec<Budget> {
    match *policy {
        BudgetPolicy::PerRun { budget } => vec![budget; runs],
        BudgetPolicy::TotalEvaluations { total } => {
            assert!(
                total >= runs,
                "total budget of {total} evaluations cannot cover {runs} runs"
            );
            let base = total / runs;
            let extra = total % runs;
            (0..runs)
                .map(|i| Budget::Evaluations(base + usize::from(i < extra)))
                .collect()
        }
    }
}

pub(crate) struct RunPlan {
    pub(crate) unit_idx: usize,
    pub(crate) restart: usize,
    pub(crate) seed: u64,
    pub(crate) budget: Budget,
    pub(crate) key: u64,
}

/// The fully-expanded deterministic plan of a sweep: everything the run
/// phase needs, computed identically by `run_sweep` and by every shard of
/// a sharded execution ([`crate::shard`]).
pub(crate) struct PlannedSweep {
    pub(crate) name: String,
    pub(crate) fingerprint: u64,
    pub(crate) labels: Vec<String>,
    pub(crate) units: Vec<SweepUnit>,
    pub(crate) restarts: usize,
    pub(crate) policy_json: String,
    pub(crate) plans: Vec<RunPlan>,
}

/// Plan the FULL (unit × restart) grid — budgets and checkpoint keys must
/// not depend on where an interruption (or a shard boundary) lands.
pub(crate) fn plan_sweep(family: &dyn VersionFamily, config: &SweepConfig) -> PlannedSweep {
    let labels = family.version_labels();
    let units = family.units();
    assert!(!units.is_empty(), "family has no units to sweep");
    let restarts = config.restarts.max(1);
    let name = family.name().to_string();
    let fingerprint = family.fingerprint();
    let policy_json = serde_json::to_string(&config.budget).expect("policy serializes");
    let budgets = run_budgets(&config.budget, units.len() * restarts);
    let plans: Vec<RunPlan> = units
        .iter()
        .enumerate()
        .flat_map(|(ui, unit)| {
            let budgets = &budgets;
            let name = &name;
            (0..restarts).map(move |r| {
                let seed = restart_seed(config.seed, r);
                let budget = budgets[ui * restarts + r];
                RunPlan {
                    unit_idx: ui,
                    restart: r,
                    seed,
                    budget,
                    key: run_key(name, fingerprint, &unit.label, r, seed, &budget),
                }
            })
        })
        .collect();
    PlannedSweep {
        name,
        fingerprint,
        labels,
        units,
        restarts,
        policy_json,
        plans,
    }
}

/// What happened to one pending calibration run.
pub(crate) enum RunStatus {
    Done(Box<RunRecord>),
    Failed { attempt: usize, reason: String },
}

/// Execute one pending calibration run under the fault guard, appending
/// its checkpoint (or failure) to `ledger`. Shared by `run_sweep` and the
/// sharded executor ([`crate::shard::run_shard`]), so a shard's records
/// are bit-for-bit what a single-process sweep would have written.
pub(crate) fn calibrate_one(
    family: &dyn VersionFamily,
    unit: &SweepUnit,
    plan: &RunPlan,
    attempt: usize,
    ledger: Option<&Ledger>,
) -> RunStatus {
    // The guard isolates a panicking simulator version: its runs become
    // RunFailed events and the sweep degrades instead of unwinding.
    // (Individual evaluation panics are already quarantined inside
    // simcal; what reaches here is a version whose calibration found no
    // usable incumbent at all, or a family whose calibrate itself
    // crashed.)
    match simcal::fault::guard(|| family.calibrate(unit, plan.budget, plan.seed)) {
        Ok(result) if result.loss.is_finite() => {
            let record = RunRecord {
                key: plan.key,
                unit: unit.label.clone(),
                restart: plan.restart,
                seed: plan.seed,
                result,
            };
            if let Some(l) = ledger {
                log_io(l.append(&LedgerEvent::RunCompleted {
                    record: record.clone(),
                }));
            }
            RunStatus::Done(Box::new(record))
        }
        outcome => {
            let reason = match outcome {
                Ok(result) => {
                    format!("calibration returned non-finite loss {}", result.loss)
                }
                Err(message) => message,
            };
            if let Some(l) = ledger {
                log_io(l.append(&LedgerEvent::RunFailed {
                    key: plan.key,
                    unit: unit.label.clone(),
                    restart: plan.restart,
                    seed: plan.seed,
                    attempt,
                    stage: "calibrate".into(),
                    reason: reason.clone(),
                }));
            }
            RunStatus::Failed { attempt, reason }
        }
    }
}

/// What happened to one unit's winner selection + held-out evaluation.
enum UnitStatus {
    Done(Box<UnitOutcome>),
    /// The evaluation itself failed (its runs were fine).
    Failed(RunFailure),
    /// Every calibration run of the unit failed; those failures are
    /// already reported individually, so the unit adds nothing.
    Skipped,
}

/// Execute (or resume) a sweep of `family` under `config`.
///
/// With a ledger, completed runs and unit evaluations found in it are
/// served as checkpoints — no budget is re-consumed — and newly completed
/// work is appended as it finishes, so a kill at any point loses at most
/// the work in flight.
pub fn run_sweep(
    family: &dyn VersionFamily,
    config: &SweepConfig,
    ledger: Option<&Ledger>,
) -> SweepOutcome {
    let _cache_scope = CacheScope::activate(config.cache.as_deref());

    // Root span plus one sequential child span per phase, all on the
    // calling thread, so a trace report's per-phase totals add up to
    // the sweep's wall time. Per-run/per-unit spans opened on pool
    // workers attach to the phase spans via explicit parenting.
    let _sweep_span = obs::span!(
        "sweep",
        family = family.name().to_string(),
        units = family.units().len(),
        restarts = config.restarts.max(1)
    );
    let plan_span = obs::span!("plan");

    let PlannedSweep {
        name,
        fingerprint,
        labels,
        units,
        restarts,
        policy_json,
        plans,
    } = plan_sweep(family, config);

    let active_units = config.max_units.unwrap_or(units.len()).min(units.len());
    let (cached_runs, cached_units) = match ledger {
        Some(l) => l.checkpoints(),
        None => (HashMap::new(), HashMap::new()),
    };
    let failure_history: HashMap<u64, FailureHistory> = match ledger {
        Some(l) => l.failure_history(),
        None => HashMap::new(),
    };
    let max_attempts = 1 + config.max_fault_retries;
    let attempts_of = |key: u64| failure_history.get(&key).map_or(0, |h| h.attempts);

    // Phase 1: calibration runs, fanned onto the pool. Each simulation
    // objective additionally parallelizes over scenarios internally; the
    // pool's help-while-waiting scheduling nests the two levels.
    // A run is pending unless it has a checkpoint or its recorded failed
    // attempts already exhausted the retry allowance (then it is reported
    // from the ledger without re-running).
    let active_plans: Vec<&RunPlan> = plans.iter().take(active_units * restarts).collect();
    let pending: Vec<&RunPlan> = active_plans
        .iter()
        .filter(|p| !cached_runs.contains_key(&p.key) && attempts_of(p.key) < max_attempts)
        .copied()
        .collect();
    if let Some(l) = ledger {
        log_io(l.append(&LedgerEvent::SweepStarted {
            family: name.clone(),
            fingerprint,
            seed: config.seed,
            restarts,
            units: units.len(),
            pending_runs: pending.len(),
        }));
    }
    drop(plan_span);
    let calibrate_span = obs::span!("calibrate", pending = pending.len());
    let calibrate_id = calibrate_span.id();
    let fresh: Vec<RunStatus> = pending
        .par_iter()
        .map(|p| {
            let attrs = if obs::enabled() {
                vec![
                    ("unit", units[p.unit_idx].label.clone()),
                    ("restart", p.restart.to_string()),
                ]
            } else {
                Vec::new()
            };
            let _run = obs::SpanGuard::enter_under("run", calibrate_id, attrs);
            let attempt = attempts_of(p.key) + 1;
            calibrate_one(family, &units[p.unit_idx], p, attempt, ledger)
        })
        .collect();

    let mut results: HashMap<u64, CalibrationResult> = HashMap::new();
    let mut failed_runs: HashMap<u64, RunFailure> = HashMap::new();
    // Runs whose retries were already exhausted: reported from the
    // ledger's history, never re-run.
    for p in &active_plans {
        if cached_runs.contains_key(&p.key) {
            continue;
        }
        if let Some(h) = failure_history.get(&p.key) {
            if h.attempts >= max_attempts {
                failed_runs.insert(
                    p.key,
                    RunFailure {
                        version: labels[units[p.unit_idx].version].clone(),
                        unit: units[p.unit_idx].label.clone(),
                        restart: p.restart,
                        stage: h.stage.clone(),
                        attempt: h.attempts,
                        retriable: false,
                        reason: h.last_reason.clone(),
                    },
                );
            }
        }
    }
    for (key, record) in cached_runs {
        results.insert(key, record.result);
    }
    for (p, status) in pending.iter().zip(fresh) {
        match status {
            RunStatus::Done(record) => {
                results.insert(record.key, record.result);
            }
            RunStatus::Failed { attempt, reason } => {
                failed_runs.insert(
                    p.key,
                    RunFailure {
                        version: labels[units[p.unit_idx].version].clone(),
                        unit: units[p.unit_idx].label.clone(),
                        restart: p.restart,
                        stage: "calibrate".into(),
                        attempt,
                        retriable: attempt < max_attempts,
                        reason,
                    },
                );
            }
        }
    }
    // Deterministic report order: plan order, regardless of which pool
    // worker observed the failure.
    let mut failures: Vec<RunFailure> = active_plans
        .iter()
        .filter_map(|p| failed_runs.get(&p.key).cloned())
        .collect();
    drop(calibrate_span);

    // Phase 2: per-unit winner selection + held-out evaluation, also in
    // parallel (each evaluation simulates the full test set once).
    let eval_inputs: Vec<(usize, &SweepUnit)> =
        units.iter().enumerate().take(active_units).collect();
    let evaluate_span = obs::span!("evaluate", units = eval_inputs.len());
    let evaluate_id = evaluate_span.id();
    let unit_statuses: Vec<UnitStatus> = eval_inputs
        .par_iter()
        .map(|&(ui, unit)| {
            let attrs = if obs::enabled() {
                vec![("unit", unit.label.clone())]
            } else {
                Vec::new()
            };
            let _unit_span = obs::SpanGuard::enter_under("unit", evaluate_id, attrs);
            // Winner selection over the restarts that survived phase 1,
            // keeping each survivor's original restart index.
            let per_restart: Vec<(usize, CalibrationResult)> = (0..restarts)
                .filter_map(|r| {
                    results
                        .get(&plans[ui * restarts + r].key)
                        .map(|res| (r, res.clone()))
                })
                .collect();
            if per_restart.is_empty() {
                return UnitStatus::Skipped;
            }
            let survivors: Vec<CalibrationResult> =
                per_restart.iter().map(|(_, r)| r.clone()).collect();
            let winner = pick_best(&survivors);
            let best_restart = per_restart[winner].0;
            let best = survivors[winner].clone();
            let degraded = per_restart.len() < restarts;

            let ukey = unit_key(
                &name,
                fingerprint,
                &unit.label,
                restarts,
                config.seed,
                &policy_json,
            );
            if let Some(rec) = cached_units.get(&ukey) {
                return UnitStatus::Done(Box::new(UnitOutcome {
                    label: unit.label.clone(),
                    version: unit.version,
                    best_restart: rec.best_restart,
                    best,
                    samples: rec.samples.clone(),
                    work_units: rec.work_units,
                    wall_secs: rec.wall_secs,
                    cached: true,
                }));
            }
            let prior_attempts = attempts_of(ukey);
            if prior_attempts >= max_attempts {
                let h = &failure_history[&ukey];
                return UnitStatus::Failed(RunFailure {
                    version: labels[unit.version].clone(),
                    unit: unit.label.clone(),
                    restart: best_restart,
                    stage: h.stage.clone(),
                    attempt: h.attempts,
                    retriable: false,
                    reason: h.last_reason.clone(),
                });
            }
            let t0 = Instant::now();
            let eval = match simcal::fault::guard(|| family.evaluate(unit, &best.calibration)) {
                Ok(eval) if eval.samples.iter().all(|s| s.is_finite()) => eval,
                outcome => {
                    let reason = match outcome {
                        Ok(_) => "held-out evaluation produced non-finite samples".to_string(),
                        Err(message) => message,
                    };
                    let attempt = prior_attempts + 1;
                    if let Some(l) = ledger {
                        log_io(l.append(&LedgerEvent::RunFailed {
                            key: ukey,
                            unit: unit.label.clone(),
                            restart: best_restart,
                            seed: config.seed,
                            attempt,
                            stage: "evaluate".into(),
                            reason: reason.clone(),
                        }));
                    }
                    return UnitStatus::Failed(RunFailure {
                        version: labels[unit.version].clone(),
                        unit: unit.label.clone(),
                        restart: best_restart,
                        stage: "evaluate".into(),
                        attempt,
                        retriable: attempt < max_attempts,
                        reason,
                    });
                }
            };
            let wall_secs = t0.elapsed().as_secs_f64();
            let record = UnitRecord {
                key: ukey,
                unit: unit.label.clone(),
                best_restart,
                samples: eval.samples.clone(),
                work_units: eval.work_units,
                wall_secs,
            };
            // A degraded unit (some restarts failed) is not checkpointed:
            // once a resume successfully retries the failed runs, the
            // winner may change, and a stale checkpoint would pin the old
            // evaluation forever.
            if !degraded {
                if let Some(l) = ledger {
                    log_io(l.append(&LedgerEvent::UnitCompleted { record }));
                }
            }
            UnitStatus::Done(Box::new(UnitOutcome {
                label: unit.label.clone(),
                version: unit.version,
                best_restart,
                best,
                samples: eval.samples,
                work_units: eval.work_units,
                wall_secs,
                cached: false,
            }))
        })
        .collect();
    let mut unit_outcomes: Vec<UnitOutcome> = Vec::new();
    for status in unit_statuses {
        match status {
            UnitStatus::Done(outcome) => unit_outcomes.push(*outcome),
            UnitStatus::Failed(failure) => failures.push(failure),
            UnitStatus::Skipped => {}
        }
    }
    drop(evaluate_span);

    // Reduce to versions; under truncation keep only fully-covered ones.
    let _reduce_span = obs::span!("reduce");
    let mut versions = Vec::new();
    for (vi, label) in labels.iter().enumerate() {
        let mine: Vec<UnitOutcome> = unit_outcomes
            .iter()
            .filter(|u| u.version == vi)
            .cloned()
            .collect();
        let expected = units.iter().filter(|u| u.version == vi).count();
        if mine.is_empty() || mine.len() < expected {
            continue;
        }
        let samples: Vec<f64> = mine.iter().flat_map(|u| u.samples.clone()).collect();
        versions.push(VersionOutcome {
            label: label.clone(),
            dim: family.dim(vi),
            test_error: numeric::mean(&samples),
            samples,
            work_units: mine.iter().map(|u| u.work_units).sum(),
            wall_secs: mine.iter().map(|u| u.wall_secs).sum(),
            units: mine,
        });
    }

    let complete = active_units == units.len();
    // Recommend from the surviving versions; a sweep whose every version
    // failed has nobody left to recommend, and a slate whose every
    // surviving version carries a non-finite test error has nothing to
    // anchor ε-eligibility on — both degrade to a failure row instead of
    // a recommendation.
    let mut recommendation = None;
    if complete && !versions.is_empty() {
        match try_recommend(
            &versions.iter().map(|v| v.label.clone()).collect::<Vec<_>>(),
            &versions.iter().map(|v| v.test_error).collect::<Vec<_>>(),
            &versions.iter().map(|v| v.work_units).collect::<Vec<_>>(),
            config.epsilon,
        ) {
            Ok(rec) => recommendation = Some(rec),
            Err(e) => failures.push(RunFailure {
                version: "(all)".into(),
                unit: "(recommendation)".into(),
                restart: 0,
                stage: "recommend".into(),
                attempt: 1,
                retriable: false,
                reason: e.to_string(),
            }),
        }
    }
    let outcome = SweepOutcome {
        family: name.clone(),
        complete,
        versions,
        failures,
        recommendation,
    };
    if complete {
        if let (Some(l), Some(rec)) = (ledger, &outcome.recommendation) {
            log_io(l.append(&LedgerEvent::SweepCompleted {
                family: name,
                digest: outcome.digest(),
                chosen: rec.chosen.clone(),
            }));
        }
    }
    outcome
}

/// A ledger write failure must not abort a sweep mid-flight (the result is
/// still computed; only resumability degrades) — report it and carry on.
fn log_io(result: std::io::Result<()>) {
    if let Err(e) = result {
        obs::diag!("ledger append failed: {e}");
    }
}

/// Mark versions on the accuracy-versus-cost Pareto front of an outcome.
pub fn front_flags(versions: &[VersionOutcome]) -> Vec<bool> {
    pareto_front(
        &versions
            .iter()
            .map(|v| (v.test_error, v.work_units))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_budget_divides_fairly_with_remainder_to_earliest() {
        let b = run_budgets(&BudgetPolicy::TotalEvaluations { total: 100 }, 8);
        let evals: Vec<usize> = b
            .iter()
            .map(|b| match b {
                Budget::Evaluations(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(evals, vec![13, 13, 13, 13, 12, 12, 12, 12]);
        assert_eq!(evals.iter().sum::<usize>(), 100);
    }

    #[test]
    fn per_run_budget_is_replicated() {
        let b = run_budgets(
            &BudgetPolicy::PerRun {
                budget: Budget::Evaluations(7),
            },
            3,
        );
        assert_eq!(b, vec![Budget::Evaluations(7); 3]);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn starving_a_run_is_rejected() {
        run_budgets(&BudgetPolicy::TotalEvaluations { total: 3 }, 5);
    }
}
