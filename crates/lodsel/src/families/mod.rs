//! [`crate::family::VersionFamily`] implementations for the four case
//! studies, plus the experiment-grid helpers the standalone binaries
//! share with them.

pub mod batch;
pub mod grid;
pub mod mpi;
pub mod wf;

use crate::ledger::fnv1a;

/// Fingerprint helper: hash a canonical textual description of a family's
/// datasets. Float observations contribute their exact bit patterns, so
/// two fingerprints agree only when the data is identical.
pub(crate) fn fingerprint_of(parts: impl IntoIterator<Item = String>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        h ^= fnv1a(part.as_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
