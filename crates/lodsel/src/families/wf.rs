//! Case study #1 (scientific workflows) as a sweepable family.
//!
//! Follows the paper's §5.4 protocol: each of the 12 simulator versions is
//! calibrated once per application against that application's training
//! split, and judged by the percent relative makespan error on the
//! held-out test split. A sweep unit is therefore a (version, application)
//! pair, and a version's summary samples are its per-application mean
//! test errors — exactly what Figure 2's bars and error bars aggregate.

use crate::family::{SweepUnit, UnitEval, VersionFamily};
use simcal::prelude::{
    relative_error, Budget, CacheFingerprint, Calibration, CalibrationResult, Calibrator, Fidelity,
    StructuredLoss, SubsampledObjective,
};
use wfsim::prelude::{
    dataset_for, objective, split_train_test, AppKind, DatasetOptions, SimulatorVersion,
    WfScenario, WorkflowSimulator,
};

/// The Table 1 sub-grid the experiments use by default: the two smallest
/// workflow sizes (the split still yields large-vs-small test structure),
/// one short and one long per-task work, a zero and a mid data footprint,
/// and all four worker counts.
pub fn dataset_options(fast: bool, seed: u64) -> DatasetOptions {
    if fast {
        DatasetOptions {
            repetitions: 2,
            seed,
            size_indices: vec![0, 1],
            work_indices: vec![1],
            footprint_indices: vec![1],
            worker_counts: vec![1, 2, 4, 6],
            ..Default::default()
        }
    } else {
        DatasetOptions {
            repetitions: 3,
            seed,
            size_indices: vec![0, 1, 2],
            work_indices: vec![0, 3],
            footprint_indices: vec![0, 2],
            worker_counts: vec![1, 2, 4, 6],
            ..Default::default()
        }
    }
}

/// One application's named train/test split.
pub struct AppSplit {
    /// Application name (report label).
    pub app: String,
    /// Training scenarios.
    pub train: Vec<WfScenario>,
    /// Held-out test scenarios.
    pub test: Vec<WfScenario>,
}

/// The workflow simulator family: 12 versions × one unit per application.
pub struct WfFamily {
    versions: Vec<SimulatorVersion>,
    splits: Vec<AppSplit>,
    loss: StructuredLoss,
    fingerprint: u64,
}

impl WfFamily {
    /// Build from explicit versions, per-application splits, and a loss.
    /// `loss_label` names the loss in the dataset fingerprint (the loss
    /// itself carries no public identifier).
    pub fn new(
        versions: Vec<SimulatorVersion>,
        splits: Vec<AppSplit>,
        loss: StructuredLoss,
        loss_label: &str,
    ) -> Self {
        assert!(!versions.is_empty() && !splits.is_empty(), "empty family");
        let mut parts = vec![format!("wf|loss={loss_label}")];
        for s in &splits {
            parts.push(format!("app={}", s.app));
            for (tag, set) in [("train", &s.train), ("test", &s.test)] {
                for sc in set.iter() {
                    parts.push(format!(
                        "{tag}|workers={}|makespan={:016x}",
                        sc.n_workers,
                        sc.gt_makespan.to_bits()
                    ));
                }
            }
        }
        let fingerprint = super::fingerprint_of(parts);
        Self {
            versions,
            splits,
            loss,
            fingerprint,
        }
    }

    /// The family the paper's Figure 2 sweeps: all 12 versions over the
    /// default experiment grid, under the L1 loss selected by Table 3.
    pub fn paper(fast: bool, seed: u64) -> Self {
        let opts = dataset_options(fast, seed);
        let apps: Vec<AppKind> = if fast {
            vec![AppKind::Genome1000, AppKind::Montage]
        } else {
            AppKind::REAL.to_vec()
        };
        let splits = apps
            .iter()
            .map(|&app| {
                let records = dataset_for(app, &opts);
                let (train, test) = split_train_test(&records);
                AppSplit {
                    app: app.name().to_string(),
                    train: WfScenario::from_records(&train),
                    test: WfScenario::from_records(&test),
                }
            })
            .collect();
        let loss = StructuredLoss::paper_set()[0].clone();
        Self::new(SimulatorVersion::all(), splits, loss, "L1")
    }

    /// The per-application splits (for baselines and progress reports).
    pub fn splits(&self) -> &[AppSplit] {
        &self.splits
    }
}

impl VersionFamily for WfFamily {
    fn name(&self) -> &str {
        "wf"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn version_labels(&self) -> Vec<String> {
        self.versions.iter().map(|v| v.label()).collect()
    }

    fn dim(&self, version: usize) -> usize {
        self.versions[version].parameter_space().dim()
    }

    fn units(&self) -> Vec<SweepUnit> {
        let mut units = Vec::new();
        for (vi, version) in self.versions.iter().enumerate() {
            for (ai, split) in self.splits.iter().enumerate() {
                units.push(SweepUnit {
                    version: vi,
                    slot: ai,
                    label: format!("{} / {}", version.label(), split.app),
                });
            }
        }
        units
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        let sim = WorkflowSimulator::new(self.versions[unit.version]);
        let obj = objective(&sim, &self.splits[unit.slot].train, self.loss.clone())
            .with_cache_fingerprint(CacheFingerprint::of("wf", &unit.label, self.fingerprint));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn calibrate_at(
        &self,
        unit: &SweepUnit,
        budget: Budget,
        seed: u64,
        fidelity: &Fidelity,
    ) -> CalibrationResult {
        let train = &self.splits[unit.slot].train;
        if fidelity.is_full(train.len()) {
            return self.calibrate(unit, budget, seed);
        }
        let sim = WorkflowSimulator::new(self.versions[unit.version]);
        let indices = fidelity.indices(train.len(), seed);
        let obj = SubsampledObjective::new(
            &sim,
            train,
            &indices,
            self.loss.clone(),
            self.versions[unit.version].parameter_space(),
        );
        let tag = obj.tag();
        let obj = obj.with_cache_fingerprint(CacheFingerprint::of(
            "wf",
            &format!("{}#sub{tag:016x}", unit.label),
            self.fingerprint,
        ));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, calibration: &Calibration) -> UnitEval {
        let sim = WorkflowSimulator::new(self.versions[unit.version]);
        let mut errors = Vec::new();
        let mut work_units = 0u64;
        for s in &self.splits[unit.slot].test {
            let out = sim.simulate(&s.workflow, s.n_workers, calibration);
            errors.push(relative_error(s.gt_makespan, out.makespan));
            work_units += out.sim_events;
        }
        UnitEval {
            // One sample per unit: the per-application mean — Figure 2
            // aggregates versions over these.
            samples: vec![numeric::mean(&errors)],
            work_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WfFamily {
        let opts = DatasetOptions {
            repetitions: 1,
            seed: 3,
            size_indices: vec![0],
            work_indices: vec![1],
            footprint_indices: vec![1],
            worker_counts: vec![1, 4],
            ..Default::default()
        };
        let records = dataset_for(AppKind::Montage, &opts);
        let (train, test) = split_train_test(&records);
        WfFamily::new(
            vec![
                SimulatorVersion::lowest_detail(),
                SimulatorVersion::highest_detail(),
            ],
            vec![AppSplit {
                app: "montage".into(),
                train: WfScenario::from_records(&train),
                test: WfScenario::from_records(&test),
            }],
            StructuredLoss::paper_set()[0].clone(),
            "L1",
        )
    }

    #[test]
    fn units_are_version_major_and_labelled() {
        let f = tiny();
        let units = f.units();
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].version, 0);
        assert_eq!(units[1].version, 1);
        assert!(units[0].label.contains("montage"));
    }

    #[test]
    fn calibrate_and_evaluate_are_deterministic() {
        let f = tiny();
        let unit = &f.units()[0];
        let a = f.calibrate(unit, Budget::Evaluations(6), 9);
        let b = f.calibrate(unit, Budget::Evaluations(6), 9);
        // Wall-clock fields (elapsed_secs) legitimately differ between
        // runs; everything the sweep digests must not.
        assert_eq!(a.calibration, b.calibration);
        assert_eq!(a.loss, b.loss);
        assert_eq!(a.evaluations, b.evaluations);
        let ea = f.evaluate(unit, &a.calibration);
        let eb = f.evaluate(unit, &b.calibration);
        assert_eq!(ea, eb);
        assert_eq!(ea.samples.len(), 1);
        assert!(ea.work_units > 0, "evaluation must report simulation work");
    }

    #[test]
    fn fingerprint_tracks_the_dataset() {
        let a = tiny().fingerprint();
        assert_eq!(a, tiny().fingerprint());
        let mut other = tiny();
        other.splits[0].test[0].gt_makespan += 1.0;
        let recomputed = WfFamily::new(
            vec![
                SimulatorVersion::lowest_detail(),
                SimulatorVersion::highest_detail(),
            ],
            other.splits,
            StructuredLoss::paper_set()[0].clone(),
            "L1",
        );
        assert_ne!(a, recomputed.fingerprint());
    }
}
