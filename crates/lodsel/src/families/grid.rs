//! Case study #4 (federated data grid) as a sweepable family.
//!
//! Mirrors Figure 2's protocol in the data-grid domain: all 8
//! level-of-detail versions calibrate against the training workloads and
//! are judged by the mean relative per-job *turnaround* error on held-out
//! workloads (turnarounds are where cache hits, WAN queueing, and broker
//! serialisation live; makespans are dominated by total work). A sweep
//! unit is one version, and its summary samples are the per-workload
//! mean turnaround errors.

use crate::family::{SweepUnit, UnitEval, VersionFamily};
use gridsim::prelude::{
    dataset, objective, GridEmulatorConfig, GridScenario, GridSimulator, GridSpec, GridVersion,
};
use simcal::prelude::{
    relative_error, Agg, Budget, CacheFingerprint, Calibration, CalibrationResult, Calibrator,
    ElementMix, Fidelity, StructuredLoss, SubsampledObjective,
};

/// The data-grid simulator family: 8 versions × one unit each.
pub struct GridFamily {
    versions: Vec<GridVersion>,
    train: Vec<GridScenario>,
    test: Vec<GridScenario>,
    loss: StructuredLoss,
    fingerprint: u64,
}

impl GridFamily {
    /// Build from explicit versions, train/test workloads, and a loss.
    /// `loss_label` names the loss in the dataset fingerprint.
    pub fn new(
        versions: Vec<GridVersion>,
        train: Vec<GridScenario>,
        test: Vec<GridScenario>,
        loss: StructuredLoss,
        loss_label: &str,
    ) -> Self {
        assert!(
            !versions.is_empty() && !train.is_empty() && !test.is_empty(),
            "empty family"
        );
        let mut parts = vec![format!("grid|loss={loss_label}")];
        for (tag, set) in [("train", &train), ("test", &test)] {
            for s in set.iter() {
                parts.push(format!(
                    "{tag}|sites={}|jobs={}|makespan={:016x}",
                    s.workload.sites,
                    s.workload.jobs.len(),
                    s.makespan.to_bits()
                ));
            }
        }
        let fingerprint = super::fingerprint_of(parts);
        Self {
            versions,
            train,
            test,
            loss,
            fingerprint,
        }
    }

    /// The family the case-study-4 experiment sweeps: arrival pressure
    /// crossed with file-popularity skew, so the cache, WAN, and broker
    /// behaviours each matter in some workload and not in others.
    pub fn paper(fast: bool, seed: u64) -> Self {
        let cfg = GridEmulatorConfig::default();
        let mut grid = Vec::new();
        for (i, &interarrival) in [3.0, 9.0].iter().enumerate() {
            for (j, &skew) in [0.4, 1.8].iter().enumerate() {
                grid.push(GridSpec {
                    mean_interarrival: interarrival,
                    skew,
                    seed: seed ^ ((i * 2 + j) as u64) << 8,
                    ..GridSpec::default()
                });
            }
        }
        let (train_specs, test_specs) = grid.split_at(2);
        let reps = if fast { 2 } else { 3 };
        let train = dataset(train_specs, &cfg, reps, seed);
        let test = dataset(test_specs, &cfg, reps, seed);
        let loss = StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3");
        Self::new(GridVersion::all(), train, test, loss, "L3")
    }

    /// The training workloads.
    pub fn train(&self) -> &[GridScenario] {
        &self.train
    }

    /// The held-out test workloads.
    pub fn test(&self) -> &[GridScenario] {
        &self.test
    }

    /// Mean relative per-job turnaround error of `calibration` on each
    /// test workload (also used by the uncalibrated baseline).
    pub fn turnaround_errors(&self, version: GridVersion, calibration: &Calibration) -> Vec<f64> {
        let sim = GridSimulator::new(version);
        self.test
            .iter()
            .map(|s| {
                let out = sim.simulate(&s.workload, calibration);
                let errs: Vec<f64> = s
                    .turnarounds
                    .iter()
                    .zip(&out.turnarounds)
                    .map(|(&gt, &m)| relative_error(gt, m))
                    .collect();
                numeric::mean(&errs)
            })
            .collect()
    }

    /// The version behind unit index `i` (driver convenience).
    pub fn version(&self, i: usize) -> GridVersion {
        self.versions[i]
    }
}

impl VersionFamily for GridFamily {
    fn name(&self) -> &str {
        "grid"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn version_labels(&self) -> Vec<String> {
        self.versions.iter().map(|v| v.label()).collect()
    }

    fn dim(&self, version: usize) -> usize {
        self.versions[version].parameter_space().dim()
    }

    fn units(&self) -> Vec<SweepUnit> {
        self.versions
            .iter()
            .enumerate()
            .map(|(vi, v)| SweepUnit {
                version: vi,
                slot: 0,
                label: v.label(),
            })
            .collect()
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        let sim = GridSimulator::new(self.versions[unit.version]);
        let obj = objective(&sim, &self.train, self.loss.clone())
            .with_cache_fingerprint(CacheFingerprint::of("grid", &unit.label, self.fingerprint));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn calibrate_at(
        &self,
        unit: &SweepUnit,
        budget: Budget,
        seed: u64,
        fidelity: &Fidelity,
    ) -> CalibrationResult {
        if fidelity.is_full(self.train.len()) {
            return self.calibrate(unit, budget, seed);
        }
        let sim = GridSimulator::new(self.versions[unit.version]);
        let indices = fidelity.indices(self.train.len(), seed);
        let obj = SubsampledObjective::new(
            &sim,
            &self.train,
            &indices,
            self.loss.clone(),
            self.versions[unit.version].parameter_space(),
        );
        let tag = obj.tag();
        let obj = obj.with_cache_fingerprint(CacheFingerprint::of(
            "grid",
            &format!("{}#sub{tag:016x}", unit.label),
            self.fingerprint,
        ));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, calibration: &Calibration) -> UnitEval {
        let version = self.versions[unit.version];
        let sim = GridSimulator::new(version);
        let mut samples = Vec::new();
        let mut work_units = 0u64;
        for s in &self.test {
            let out = sim.simulate(&s.workload, calibration);
            let errs: Vec<f64> = s
                .turnarounds
                .iter()
                .zip(&out.turnarounds)
                .map(|(&gt, &m)| relative_error(gt, m))
                .collect();
            samples.push(numeric::mean(&errs));
            work_units += out.sim_events;
        }
        UnitEval {
            samples,
            work_units,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A deliberately tiny family so the tests finish in milliseconds.
    pub(crate) fn tiny_family(seed: u64) -> GridFamily {
        let cfg = GridEmulatorConfig::default();
        let specs = [
            GridSpec {
                jobs: 16,
                files: 24,
                mean_interarrival: 4.0,
                seed,
                ..GridSpec::default()
            },
            GridSpec {
                jobs: 16,
                files: 24,
                mean_interarrival: 12.0,
                skew: 1.8,
                seed: seed ^ 0x100,
                ..GridSpec::default()
            },
        ];
        let train = dataset(&specs[..1], &cfg, 1, seed);
        let test = dataset(&specs[1..], &cfg, 1, seed);
        GridFamily::new(
            GridVersion::all(),
            train,
            test,
            StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3"),
            "L3",
        )
    }

    #[test]
    fn eight_versions_one_unit_each() {
        let f = tiny_family(1);
        assert_eq!(f.units().len(), 8);
        assert_eq!(f.version_labels().len(), 8);
        assert_eq!(f.dim(0), 5);
        assert_eq!(f.dim(7), 7);
    }

    #[test]
    fn evaluate_matches_turnaround_errors_and_counts_events() {
        let f = tiny_family(1);
        let unit = &f.units()[0];
        let r = f.calibrate(unit, Budget::Evaluations(6), 2);
        let eval = f.evaluate(unit, &r.calibration);
        assert_eq!(
            eval.samples,
            f.turnaround_errors(f.versions[0], &r.calibration)
        );
        assert!(eval.work_units > 0);
    }

    #[test]
    fn fingerprint_tracks_the_dataset() {
        let a = tiny_family(1);
        let b = tiny_family(1);
        let c = tiny_family(2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
