//! Case study #3 (batch scheduling) as a sweepable family.
//!
//! Mirrors Figure 2's protocol in the batch domain: all 4 level-of-detail
//! versions calibrate against the training traces and are judged by the
//! mean relative per-job *turnaround* error on held-out traces (job waits
//! are where scheduler behaviour lives; trace makespans are dominated by
//! total work and hide it). A sweep unit is one version, and its summary
//! samples are the per-trace mean turnaround errors.

use crate::family::{SweepUnit, UnitEval, VersionFamily};
use batchsim::prelude::{
    dataset, objective, BatchEmulatorConfig, BatchScenario, BatchSimulator, BatchVersion,
    WorkloadSpec,
};
use simcal::prelude::{
    relative_error, Agg, Budget, CacheFingerprint, Calibration, CalibrationResult, Calibrator,
    ElementMix, Fidelity, StructuredLoss, SubsampledObjective,
};

/// The batch simulator family: 4 versions × one unit each.
pub struct BatchFamily {
    versions: Vec<BatchVersion>,
    total_nodes: u32,
    train: Vec<BatchScenario>,
    test: Vec<BatchScenario>,
    loss: StructuredLoss,
    fingerprint: u64,
}

impl BatchFamily {
    /// Build from explicit versions, cluster size, train/test traces, and
    /// a loss. `loss_label` names the loss in the dataset fingerprint.
    pub fn new(
        versions: Vec<BatchVersion>,
        total_nodes: u32,
        train: Vec<BatchScenario>,
        test: Vec<BatchScenario>,
        loss: StructuredLoss,
        loss_label: &str,
    ) -> Self {
        assert!(
            !versions.is_empty() && !train.is_empty() && !test.is_empty(),
            "empty family"
        );
        let mut parts = vec![format!("batch|nodes={total_nodes}|loss={loss_label}")];
        for (tag, set) in [("train", &train), ("test", &test)] {
            for s in set.iter() {
                parts.push(format!(
                    "{tag}|jobs={}|makespan={:016x}",
                    s.jobs.len(),
                    s.makespan.to_bits()
                ));
            }
        }
        let fingerprint = super::fingerprint_of(parts);
        Self {
            versions,
            total_nodes,
            train,
            test,
            loss,
            fingerprint,
        }
    }

    /// The family the case-study-3 experiment sweeps: short-to-medium
    /// jobs under varied arrival pressure, so per-job waits (where the
    /// hidden scheduling cycle lives) are a visible share of the
    /// turnaround.
    pub fn paper(fast: bool, seed: u64) -> Self {
        let cfg = BatchEmulatorConfig::default();
        let mut grid = Vec::new();
        for (i, &interarrival) in [8.0, 20.0, 45.0].iter().enumerate() {
            for (j, &work) in [60.0, 240.0].iter().enumerate() {
                grid.push(WorkloadSpec {
                    num_jobs: 80,
                    mean_interarrival: interarrival,
                    mean_work: work,
                    max_nodes_log2: 5,
                    seed: seed ^ ((i * 2 + j) as u64) << 8,
                });
            }
        }
        let (train_specs, test_specs) = grid.split_at(if fast { 2 } else { 4 });
        let reps = if fast { 2 } else { 3 };
        let train = dataset(train_specs, &cfg, reps, seed);
        let test = dataset(test_specs, &cfg, reps, seed);
        let loss = StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3");
        Self::new(
            BatchVersion::all(),
            cfg.total_nodes,
            train,
            test,
            loss,
            "L3",
        )
    }

    /// The training traces.
    pub fn train(&self) -> &[BatchScenario] {
        &self.train
    }

    /// The held-out test traces.
    pub fn test(&self) -> &[BatchScenario] {
        &self.test
    }

    /// Cluster size the traces were generated for.
    pub fn total_nodes(&self) -> u32 {
        self.total_nodes
    }

    /// Mean relative per-job turnaround error of `calibration` on each
    /// test trace (also used by the uncalibrated baseline).
    pub fn turnaround_errors(&self, version: BatchVersion, calibration: &Calibration) -> Vec<f64> {
        let sim = BatchSimulator::new(version, self.total_nodes);
        self.test
            .iter()
            .map(|s| {
                let out = sim.simulate(&s.jobs, calibration);
                let errs: Vec<f64> = s
                    .turnarounds
                    .iter()
                    .zip(&out.turnarounds)
                    .map(|(&gt, &m)| relative_error(gt, m))
                    .collect();
                numeric::mean(&errs)
            })
            .collect()
    }
}

impl VersionFamily for BatchFamily {
    fn name(&self) -> &str {
        "batch"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn version_labels(&self) -> Vec<String> {
        self.versions.iter().map(|v| v.label()).collect()
    }

    fn dim(&self, version: usize) -> usize {
        self.versions[version].parameter_space().dim()
    }

    fn units(&self) -> Vec<SweepUnit> {
        self.versions
            .iter()
            .enumerate()
            .map(|(vi, v)| SweepUnit {
                version: vi,
                slot: 0,
                label: v.label(),
            })
            .collect()
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        let sim = BatchSimulator::new(self.versions[unit.version], self.total_nodes);
        let obj = objective(&sim, &self.train, self.loss.clone())
            .with_cache_fingerprint(CacheFingerprint::of("batch", &unit.label, self.fingerprint));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn calibrate_at(
        &self,
        unit: &SweepUnit,
        budget: Budget,
        seed: u64,
        fidelity: &Fidelity,
    ) -> CalibrationResult {
        if fidelity.is_full(self.train.len()) {
            return self.calibrate(unit, budget, seed);
        }
        let sim = BatchSimulator::new(self.versions[unit.version], self.total_nodes);
        let indices = fidelity.indices(self.train.len(), seed);
        let obj = SubsampledObjective::new(
            &sim,
            &self.train,
            &indices,
            self.loss.clone(),
            self.versions[unit.version].parameter_space(),
        );
        let tag = obj.tag();
        let obj = obj.with_cache_fingerprint(CacheFingerprint::of(
            "batch",
            &format!("{}#sub{tag:016x}", unit.label),
            self.fingerprint,
        ));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, calibration: &Calibration) -> UnitEval {
        let version = self.versions[unit.version];
        let sim = BatchSimulator::new(version, self.total_nodes);
        let mut samples = Vec::new();
        let mut work_units = 0u64;
        for s in &self.test {
            let out = sim.simulate(&s.jobs, calibration);
            let errs: Vec<f64> = s
                .turnarounds
                .iter()
                .zip(&out.turnarounds)
                .map(|(&gt, &m)| relative_error(gt, m))
                .collect();
            samples.push(numeric::mean(&errs));
            work_units += out.sim_events;
        }
        UnitEval {
            samples,
            work_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny grid so the tests finish in milliseconds.
    fn tiny_family(seed: u64) -> BatchFamily {
        let cfg = BatchEmulatorConfig::default();
        let specs = [
            WorkloadSpec {
                num_jobs: 20,
                mean_interarrival: 10.0,
                mean_work: 60.0,
                max_nodes_log2: 4,
                seed,
            },
            WorkloadSpec {
                num_jobs: 20,
                mean_interarrival: 25.0,
                mean_work: 120.0,
                max_nodes_log2: 4,
                seed: seed ^ 0x100,
            },
        ];
        let train = dataset(&specs[..1], &cfg, 1, seed);
        let test = dataset(&specs[1..], &cfg, 1, seed);
        BatchFamily::new(
            BatchVersion::all(),
            cfg.total_nodes,
            train,
            test,
            StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3"),
            "L3",
        )
    }

    #[test]
    fn four_versions_one_unit_each() {
        let f = tiny_family(1);
        assert_eq!(f.units().len(), 4);
        assert_eq!(f.version_labels().len(), 4);
    }

    #[test]
    fn evaluate_matches_turnaround_errors_and_counts_events() {
        let f = tiny_family(1);
        let unit = &f.units()[0];
        let r = f.calibrate(unit, Budget::Evaluations(6), 2);
        let eval = f.evaluate(unit, &r.calibration);
        assert_eq!(
            eval.samples,
            f.turnaround_errors(f.versions[0], &r.calibration)
        );
        assert!(eval.work_units > 0);
    }
}
