//! Case study #2 (MPI communication) as a sweepable family.
//!
//! Follows the paper's §6.4 protocol: every version calibrates against the
//! full base-scale scenario set and is judged on the same scenarios
//! (deliberate overfitting; generalization across scales is a separate
//! experiment, `sec6_5`). A sweep unit is one version, and its summary
//! samples are the per-scenario mean relative transfer-rate errors —
//! exactly what Figure 5's bars and error bars aggregate.

use crate::family::{SweepUnit, UnitEval, VersionFamily};
use mpisim::prelude::{
    dataset, mean_relative_rate_error, objective, BenchmarkKind, MpiEmulatorConfig, MpiScenario,
    MpiSimulator, MpiSimulatorVersion, NODE_COUNTS,
};
use simcal::prelude::{
    Budget, CacheFingerprint, Calibration, CalibrationResult, Calibrator, Fidelity, MatrixLoss,
    SubsampledObjective,
};

/// Node counts used by the experiments. The paper runs 128/256/512; the
/// `fast` grid shrinks the base scale (contention structure is preserved)
/// so smoke runs finish in seconds.
pub fn node_counts(fast: bool) -> Vec<usize> {
    if fast {
        vec![32, 64, 128]
    } else {
        NODE_COUNTS.to_vec()
    }
}

/// Ground-truth emulator configuration for the experiments.
pub fn emulator_config(fast: bool) -> MpiEmulatorConfig {
    MpiEmulatorConfig {
        repetitions: if fast { 3 } else { 5 },
        ..Default::default()
    }
}

/// Content hash of an MPI scenario set under a named loss: the dataset
/// component of both the family fingerprint and the persistent-cache
/// fingerprint. Rate observations contribute exact bit patterns, so two
/// hashes agree only when the ground truth is identical.
pub fn dataset_fingerprint(scenarios: &[MpiScenario], loss_label: &str) -> u64 {
    let mut parts = vec![format!("mpi|loss={loss_label}")];
    for s in scenarios {
        parts.push(format!(
            "bench={}|nodes={}|sizes={}",
            s.benchmark.name(),
            s.n_nodes,
            s.sizes.len()
        ));
        for rate in s.mean_rates() {
            parts.push(format!("rate={:016x}", rate.to_bits()));
        }
    }
    super::fingerprint_of(parts)
}

/// The MPI simulator family: 16 versions × one unit each.
pub struct MpiFamily {
    versions: Vec<MpiSimulatorVersion>,
    scenarios: Vec<MpiScenario>,
    loss: MatrixLoss,
    fingerprint: u64,
}

impl MpiFamily {
    /// Build from explicit versions, scenarios, and a loss. `loss_label`
    /// names the loss in the dataset fingerprint.
    pub fn new(
        versions: Vec<MpiSimulatorVersion>,
        scenarios: Vec<MpiScenario>,
        loss: MatrixLoss,
        loss_label: &str,
    ) -> Self {
        assert!(
            !versions.is_empty() && !scenarios.is_empty(),
            "empty family"
        );
        let fingerprint = dataset_fingerprint(&scenarios, loss_label);
        Self {
            versions,
            scenarios,
            loss,
            fingerprint,
        }
    }

    /// The family the paper's Figure 5 sweeps: all 16 versions over the
    /// base-scale calibration set, under the L1 loss selected by Table 5.
    pub fn paper(fast: bool, seed: u64) -> Self {
        let cfg = emulator_config(fast);
        let base_nodes = node_counts(fast)[0];
        let scenarios = dataset(&BenchmarkKind::CALIBRATION_SET, &[base_nodes], &cfg, seed);
        let loss = MatrixLoss::paper_set()[0].clone();
        Self::new(MpiSimulatorVersion::all(), scenarios, loss, "L1")
    }

    /// The scenario set (training and test are the same here).
    pub fn scenarios(&self) -> &[MpiScenario] {
        &self.scenarios
    }
}

impl VersionFamily for MpiFamily {
    fn name(&self) -> &str {
        "mpi"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn version_labels(&self) -> Vec<String> {
        self.versions.iter().map(|v| v.label()).collect()
    }

    fn dim(&self, version: usize) -> usize {
        self.versions[version].parameter_space().dim()
    }

    fn units(&self) -> Vec<SweepUnit> {
        self.versions
            .iter()
            .enumerate()
            .map(|(vi, v)| SweepUnit {
                version: vi,
                slot: 0,
                label: v.label(),
            })
            .collect()
    }

    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult {
        let sim = MpiSimulator::new(self.versions[unit.version]);
        let obj = objective(&sim, &self.scenarios, self.loss.clone())
            .with_cache_fingerprint(CacheFingerprint::of("mpi", &unit.label, self.fingerprint));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn calibrate_at(
        &self,
        unit: &SweepUnit,
        budget: Budget,
        seed: u64,
        fidelity: &Fidelity,
    ) -> CalibrationResult {
        if fidelity.is_full(self.scenarios.len()) {
            return self.calibrate(unit, budget, seed);
        }
        let sim = MpiSimulator::new(self.versions[unit.version]);
        let indices = fidelity.indices(self.scenarios.len(), seed);
        let obj = SubsampledObjective::new(
            &sim,
            &self.scenarios,
            &indices,
            self.loss.clone(),
            self.versions[unit.version].parameter_space(),
        );
        let tag = obj.tag();
        let obj = obj.with_cache_fingerprint(CacheFingerprint::of(
            "mpi",
            &format!("{}#sub{tag:016x}", unit.label),
            self.fingerprint,
        ));
        Calibrator::bo_gp(budget, seed).calibrate(&obj)
    }

    fn evaluate(&self, unit: &SweepUnit, calibration: &Calibration) -> UnitEval {
        let sim = MpiSimulator::new(self.versions[unit.version]);
        let mut samples = Vec::new();
        let mut work_units = 0u64;
        for s in &self.scenarios {
            samples.push(mean_relative_rate_error(&sim, s, calibration));
            work_units += sim.simulation_work(s.benchmark, s.n_nodes, &s.sizes, calibration);
        }
        UnitEval {
            samples,
            work_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MpiFamily {
        let cfg = MpiEmulatorConfig {
            repetitions: 2,
            ..Default::default()
        };
        let scenarios = dataset(&[BenchmarkKind::PingPong], &[8], &cfg, 5);
        MpiFamily::new(
            vec![
                MpiSimulatorVersion::lowest_detail(),
                MpiSimulatorVersion::highest_detail(),
            ],
            scenarios,
            MatrixLoss::paper_set()[0].clone(),
            "L1",
        )
    }

    #[test]
    fn one_unit_per_version() {
        let f = tiny();
        assert_eq!(f.units().len(), 2);
        assert_eq!(f.units()[1].version, 1);
    }

    #[test]
    fn evaluation_reports_per_scenario_samples_and_ordered_work() {
        let f = tiny();
        let units = f.units();
        let lo = f.calibrate(&units[0], Budget::Evaluations(5), 1);
        let hi = f.calibrate(&units[1], Budget::Evaluations(5), 1);
        let e_lo = f.evaluate(&units[0], &lo.calibration);
        let e_hi = f.evaluate(&units[1], &hi.calibration);
        assert_eq!(e_lo.samples.len(), f.scenarios().len());
        assert!(
            e_hi.work_units > e_lo.work_units,
            "higher detail must cost more simulation work"
        );
    }
}
