//! The run ledger: an append-only JSONL event log that makes sweeps
//! durable, resumable, and observable.
//!
//! Every line is one externally-tagged [`LedgerEvent`]. Completed
//! calibration runs and completed unit evaluations are appended (and
//! flushed) as they finish, so a sweep killed at any point loses at most
//! the work in flight. Checkpoint records are keyed by an FNV-1a content
//! hash over a canonical description of what produced them — family name,
//! dataset fingerprint, unit label, restart, seed, and budget — so a
//! resume can only ever replay a checkpoint against the exact
//! configuration that wrote it.
//!
//! Reads are lenient: a torn final line (the usual signature of a kill
//! mid-write) or any other unparseable line is skipped, not fatal —
//! the corresponding work simply re-runs.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simcal::prelude::{Budget, CalibrationResult};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checkpoint key of one calibration run.
pub fn run_key(
    family: &str,
    fingerprint: u64,
    unit: &str,
    restart: usize,
    seed: u64,
    budget: &Budget,
) -> u64 {
    let budget_json = serde_json::to_string(budget).expect("budget serializes");
    fnv1a(
        format!(
            "run|family={family}|fp={fingerprint:016x}|unit={unit}|restart={restart}|\
             seed={seed}|budget={budget_json}"
        )
        .as_bytes(),
    )
}

/// Checkpoint key of one rung execution of a successive-halving run:
/// derived from the run's base plan key plus everything that shapes the
/// rung's evaluation (rung index, per-rung budget, scenario-subset
/// denominator), so a resumed sweep can only replay a rung record against
/// the exact rung configuration that wrote it.
pub fn rung_key(base: u64, rung: usize, budget: &Budget, scenario_denom: usize) -> u64 {
    let budget_json = serde_json::to_string(budget).expect("budget serializes");
    fnv1a(
        format!("rung|base={base:016x}|rung={rung}|budget={budget_json}|denom={scenario_denom}")
            .as_bytes(),
    )
}

/// Checkpoint key of one unit's held-out evaluation (covers the full
/// multi-start configuration the evaluated calibration was selected from).
pub fn unit_key(
    family: &str,
    fingerprint: u64,
    unit: &str,
    restarts: usize,
    seed: u64,
    budget_policy_json: &str,
) -> u64 {
    fnv1a(
        format!(
            "unit|family={family}|fp={fingerprint:016x}|unit={unit}|restarts={restarts}|\
             seed={seed}|policy={budget_policy_json}"
        )
        .as_bytes(),
    )
}

/// Checkpoint of one completed calibration run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Content-hash key ([`run_key`]).
    pub key: u64,
    /// Unit label.
    pub unit: String,
    /// Restart index within the unit's multi-start.
    pub restart: usize,
    /// The derived seed this run calibrated with.
    pub seed: u64,
    /// The full calibration result (round-trips bit-for-bit).
    pub result: CalibrationResult,
}

/// Checkpoint of one completed unit evaluation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnitRecord {
    /// Content-hash key ([`unit_key`]).
    pub key: u64,
    /// Unit label.
    pub unit: String,
    /// Which restart won the multi-start (lowest training loss).
    pub best_restart: usize,
    /// Held-out test errors (see [`crate::family::UnitEval::samples`]).
    pub samples: Vec<f64>,
    /// Deterministic simulation work spent on the test set.
    pub work_units: u64,
    /// Measured wall-clock seconds of the evaluation. Observability only:
    /// never part of digests or recommendations, so resumed sweeps stay
    /// bit-for-bit equal to fresh ones.
    pub wall_secs: f64,
}

/// One line of the ledger.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LedgerEvent {
    /// A sweep (fresh or resumed) started against this ledger.
    SweepStarted {
        /// Family identifier.
        family: String,
        /// Family dataset fingerprint.
        fingerprint: u64,
        /// Master seed.
        seed: u64,
        /// Restarts per unit.
        restarts: usize,
        /// Units in the full sweep plan.
        units: usize,
        /// Calibration runs actually pending (not served from checkpoints).
        pending_runs: usize,
    },
    /// A calibration run finished.
    RunCompleted {
        /// The checkpoint payload.
        record: RunRecord,
    },
    /// A unit's held-out evaluation finished.
    UnitCompleted {
        /// The checkpoint payload.
        record: UnitRecord,
    },
    /// A calibration run or unit evaluation failed (panicked, or produced
    /// only non-finite values). The sweep continues in degraded mode; a
    /// resume retries the keyed work until its recorded attempts reach
    /// `1 + max_fault_retries` (see [`crate::sweep::SweepConfig`]).
    RunFailed {
        /// Checkpoint key of the failed work ([`run_key`] for calibrate
        /// failures, [`unit_key`] for evaluate failures).
        key: u64,
        /// Unit label.
        unit: String,
        /// Restart index (for evaluate failures, the winning restart
        /// whose calibration was being evaluated).
        restart: usize,
        /// Seed of the failed calibration run (the sweep's master seed
        /// for evaluate failures).
        seed: u64,
        /// 1-based attempt number across sweep executions.
        attempt: usize,
        /// Which stage failed: `"calibrate"` or `"evaluate"`.
        stage: String,
        /// Readable failure reason (panic message or a summary).
        reason: String,
    },
    /// The sweep covered every unit and produced a recommendation.
    SweepCompleted {
        /// Family identifier.
        family: String,
        /// Digest of the deterministic outcome
        /// ([`crate::sweep::SweepOutcome::digest`]).
        digest: String,
        /// The recommended version label.
        chosen: String,
    },
    /// One rung of a successive-halving run finished
    /// ([`crate::sweep::BudgetPolicy::SuccessiveHalving`]).
    RungCompleted {
        /// Base plan key of the run the rung belongs to (the key
        /// promotion decisions are recorded against).
        base: u64,
        /// Rung index (0 = cheapest).
        rung: usize,
        /// The checkpoint payload; its `key` is the rung-specific
        /// [`rung_key`].
        record: RunRecord,
    },
    /// A successive-halving run was promoted past a rung. Decisions are
    /// appended in plan order once a rung's ranking is computed, so a
    /// resumed sweep *replays* the recorded decision set instead of
    /// re-ranking (a partially recorded rung falls back to the
    /// deterministic re-rank, which reproduces the same decisions).
    RunPromoted {
        /// Base plan key of the promoted run.
        key: u64,
        /// The rung the decision was made at.
        rung: usize,
    },
    /// A successive-halving run was eliminated at a rung (ranked below
    /// the promotion cut, or failed the rung's calibration).
    RunEliminated {
        /// Base plan key of the eliminated run.
        key: u64,
        /// The rung the decision was made at.
        rung: usize,
    },
    /// One shard of a sharded sweep ([`crate::shard`]) started appending
    /// to this ledger. The sweep-plan fingerprint
    /// ([`crate::sweep::sweep_fingerprint`]) lets the merge step reject
    /// shards that were produced by a different sweep configuration.
    ShardStarted {
        /// Sweep-plan fingerprint the shard was partitioned from.
        sweep: u64,
        /// This shard's index (0-based).
        shard: usize,
        /// Total shards in the partition.
        shards: usize,
        /// Family identifier.
        family: String,
        /// Family dataset fingerprint.
        fingerprint: u64,
    },
}

/// Most recent failure recorded in a ledger, for status reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureSummary {
    /// Unit label of the failed work.
    pub unit: String,
    /// Which stage failed: `"calibrate"` or `"evaluate"`.
    pub stage: String,
    /// Readable failure reason.
    pub reason: String,
}

/// Most recent `SweepStarted` event, for status reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Family identifier.
    pub family: String,
    /// Units in the full sweep plan.
    pub units: usize,
    /// Calibration runs pending when the sweep (re)started.
    pub pending_runs: usize,
}

/// The `SweepCompleted` event, for status reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompletionSummary {
    /// Family identifier.
    pub family: String,
    /// Digest of the deterministic outcome.
    pub digest: String,
    /// The recommended version label.
    pub chosen: String,
}

/// Machine-readable summary of a ledger's event stream: what
/// `lodsel --status` prints, as data. Serialized by
/// `lodsel --status-json` and embedded in `calibd` job-status responses,
/// so both frontends agree on the schema by construction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LedgerStatus {
    /// Total parseable events in the ledger.
    pub events: usize,
    /// `SweepStarted` events (each execution against the ledger logs one).
    pub sweeps_started: usize,
    /// `ShardStarted` events (0 for unsharded ledgers).
    pub shards_started: usize,
    /// Completed calibration runs.
    pub runs_done: usize,
    /// Completed successive-halving rung executions (0 for fixed-budget
    /// sweeps).
    pub rungs_done: usize,
    /// Recorded successive-halving promotion decisions.
    pub promotions: usize,
    /// Recorded successive-halving elimination decisions.
    pub eliminations: usize,
    /// Completed unit evaluations.
    pub unit_evals_done: usize,
    /// Failed run/unit attempts.
    pub failed_attempts: usize,
    /// Most recent failure, if any.
    pub last_failure: Option<FailureSummary>,
    /// Most recent `SweepStarted`, if any.
    pub last_sweep: Option<SweepSummary>,
    /// The completion record, once the sweep finished.
    pub completed: Option<CompletionSummary>,
}

/// Reduce a ledger's event stream to its [`LedgerStatus`] summary.
pub fn ledger_status(events: &[LedgerEvent]) -> LedgerStatus {
    let mut status = LedgerStatus {
        events: events.len(),
        sweeps_started: 0,
        shards_started: 0,
        runs_done: 0,
        rungs_done: 0,
        promotions: 0,
        eliminations: 0,
        unit_evals_done: 0,
        failed_attempts: 0,
        last_failure: None,
        last_sweep: None,
        completed: None,
    };
    for event in events {
        match event {
            LedgerEvent::SweepStarted {
                family,
                units,
                pending_runs,
                ..
            } => {
                status.sweeps_started += 1;
                status.last_sweep = Some(SweepSummary {
                    family: family.clone(),
                    units: *units,
                    pending_runs: *pending_runs,
                });
            }
            LedgerEvent::ShardStarted { .. } => status.shards_started += 1,
            LedgerEvent::RunCompleted { .. } => status.runs_done += 1,
            LedgerEvent::RungCompleted { .. } => status.rungs_done += 1,
            LedgerEvent::RunPromoted { .. } => status.promotions += 1,
            LedgerEvent::RunEliminated { .. } => status.eliminations += 1,
            LedgerEvent::UnitCompleted { .. } => status.unit_evals_done += 1,
            LedgerEvent::RunFailed {
                unit,
                stage,
                reason,
                ..
            } => {
                status.failed_attempts += 1;
                status.last_failure = Some(FailureSummary {
                    unit: unit.clone(),
                    stage: stage.clone(),
                    reason: reason.clone(),
                });
            }
            LedgerEvent::SweepCompleted {
                family,
                digest,
                chosen,
            } => {
                status.completed = Some(CompletionSummary {
                    family: family.clone(),
                    digest: digest.clone(),
                    chosen: chosen.clone(),
                });
            }
        }
    }
    status
}

impl LedgerStatus {
    /// Render the human status table, byte-identical to what
    /// `lodsel --status` has always printed (the shard line is new and
    /// appears only for sharded ledgers).
    pub fn render_text(&self, path: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ledger {path}: {} events", self.events);
        let _ = writeln!(out, "  sweeps started:        {}", self.sweeps_started);
        if self.shards_started > 0 {
            let _ = writeln!(out, "  shards started:        {}", self.shards_started);
        }
        let _ = writeln!(out, "  calibration runs done: {}", self.runs_done);
        if self.rungs_done > 0 || self.promotions > 0 || self.eliminations > 0 {
            let _ = writeln!(out, "  rung runs done:        {}", self.rungs_done);
            let _ = writeln!(
                out,
                "  promoted/eliminated:   {} / {}",
                self.promotions, self.eliminations
            );
        }
        let _ = writeln!(out, "  unit evaluations done: {}", self.unit_evals_done);
        if self.failed_attempts > 0 {
            let _ = writeln!(out, "  failed attempts:       {}", self.failed_attempts);
            if let Some(f) = &self.last_failure {
                let _ = writeln!(
                    out,
                    "  last failure: unit={} stage={} reason={}",
                    f.unit, f.stage, f.reason
                );
            }
        }
        if let Some(s) = &self.last_sweep {
            let _ = writeln!(
                out,
                "  last sweep: family={} units={} pending_runs={}",
                s.family, s.units, s.pending_runs
            );
        }
        match &self.completed {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "  completed: family={} chosen={} digest={}",
                    c.family, c.chosen, c.digest
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  completed: no (resume by re-running with the same --ledger)"
                );
            }
        }
        out
    }
}

/// Replayed failure history of one checkpoint key: how many attempts
/// have failed so far and what the latest one reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureHistory {
    /// Failed attempts recorded for this key.
    pub attempts: usize,
    /// Stage of the most recent failure (`"calibrate"` or `"evaluate"`).
    pub stage: String,
    /// Reason of the most recent failure.
    pub last_reason: String,
}

struct Inner {
    file: File,
    events: Vec<LedgerEvent>,
}

/// An open ledger file: loaded history plus an append handle.
///
/// # Example: resuming a sweep
///
/// Running the same sweep twice against the same ledger serves the second
/// run entirely from checkpoints: no calibration re-runs, and the outcome
/// digest is bit-for-bit identical.
///
/// ```
/// use lodsel::prelude::*;
/// use simcal::prelude::Budget;
///
/// let path = std::env::temp_dir().join(format!("lodsel-doc-{}.jsonl", std::process::id()));
/// let family = BatchFamily::paper(true, 7);
/// let config = SweepConfig {
///     budget: BudgetPolicy::PerRun { budget: Budget::Evaluations(2) },
///     restarts: 1,
///     seed: 7,
///     epsilon: 0.1,
///     max_units: None,
///     max_fault_retries: 2,
///     cache: None,
/// };
///
/// let ledger = Ledger::open(&path).unwrap();
/// let first = run_sweep(&family, &config, Some(&ledger));
///
/// // "Interrupted and restarted": a fresh process opens the same file.
/// let resumed = Ledger::open(&path).unwrap();
/// let runs_before = resumed.checkpoints().0.len();
/// let second = run_sweep(&family, &config, Some(&resumed));
///
/// assert_eq!(first.digest(), second.digest());
/// assert_eq!(resumed.checkpoints().0.len(), runs_before); // nothing re-ran
/// # std::fs::remove_file(&path).ok();
/// ```
pub struct Ledger {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl Ledger {
    /// Open (creating if absent) the ledger at `path`, loading all
    /// parseable events already in it.
    ///
    /// Errors carry the offending path, so "lodsel --ledger some/dir"
    /// fails with a message a user can act on rather than a bare
    /// "Is a directory".
    pub fn open(path: impl AsRef<Path>) -> io::Result<Ledger> {
        let path = path.as_ref().to_path_buf();
        let at = |e: io::Error| {
            io::Error::new(
                e.kind(),
                format!("cannot open ledger {}: {e}", path.display()),
            )
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(at)?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(at)?;
        let mut text = String::new();
        file.read_to_string(&mut text).map_err(at)?;
        // Heal a torn tail (a kill mid-write leaves no trailing newline):
        // start the next append on a fresh line so it parses on its own.
        if !text.is_empty() && !text.ends_with('\n') {
            retry_transient(|| {
                file.write_all(b"\n")?;
                file.flush()
            })
            .map_err(at)?;
        }
        let events = parse_events(&text);
        Ok(Ledger {
            path,
            inner: Mutex::new(Inner { file, events }),
        })
    }

    /// The ledger's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one event as a JSONL line and flush it to disk.
    ///
    /// Transient write errors (interrupted / would-block / timed out) are
    /// retried a bounded number of times with a short backoff; anything
    /// else — including an event that fails to serialize — is returned as
    /// an error rather than panicking, because a ledger hiccup must never
    /// take down a sweep that is otherwise making progress.
    pub fn append(&self, event: &LedgerEvent) -> io::Result<()> {
        let line = serde_json::to_string(event).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ledger event does not serialize: {e}"),
            )
        })?;
        let mut inner = self.inner.lock();
        let file = &mut inner.file;
        // A failed attempt may have emitted a partial line; retries open a
        // fresh line first so the eventual complete record parses on its
        // own (the partial fragment is skipped by the lenient reader).
        let mut dirty = false;
        retry_transient(|| {
            if dirty {
                file.write_all(b"\n")?;
            }
            dirty = true;
            file.write_all(line.as_bytes())?;
            file.write_all(b"\n")?;
            file.flush()
        })
        .map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("cannot append to ledger {}: {e}", self.path.display()),
            )
        })?;
        inner.events.push(event.clone());
        Ok(())
    }

    /// Snapshot of all events seen so far (loaded plus appended).
    pub fn events(&self) -> Vec<LedgerEvent> {
        self.inner.lock().events.clone()
    }

    /// The run and unit checkpoints currently in the ledger, keyed by
    /// their content hashes. Later records win on duplicate keys (a
    /// re-run of identical work writes an identical record anyway).
    pub fn checkpoints(&self) -> (HashMap<u64, RunRecord>, HashMap<u64, UnitRecord>) {
        let mut runs = HashMap::new();
        let mut units = HashMap::new();
        for event in self.inner.lock().events.iter() {
            match event {
                LedgerEvent::RunCompleted { record } => {
                    runs.insert(record.key, record.clone());
                }
                LedgerEvent::UnitCompleted { record } => {
                    units.insert(record.key, record.clone());
                }
                _ => {}
            }
        }
        (runs, units)
    }

    /// Successive-halving rung checkpoints currently in the ledger,
    /// keyed by `(base plan key, rung)`. Later records win on duplicates
    /// (a re-run of identical work writes an identical record anyway).
    pub fn rung_checkpoints(&self) -> HashMap<(u64, usize), RunRecord> {
        let mut rungs = HashMap::new();
        for event in self.inner.lock().events.iter() {
            if let LedgerEvent::RungCompleted { base, rung, record } = event {
                rungs.insert((*base, *rung), record.clone());
            }
        }
        rungs
    }

    /// Successive-halving promotion/elimination decisions replayed from
    /// the ledger, keyed by `(base plan key, rung)`; `true` means
    /// promoted. The *last* recorded decision for a key wins, so a rung
    /// that was re-ranked (e.g. after a kill mid-decision left partial
    /// coverage) replays its final decision set.
    pub fn rung_decisions(&self) -> HashMap<(u64, usize), bool> {
        let mut decisions = HashMap::new();
        for event in self.inner.lock().events.iter() {
            match event {
                LedgerEvent::RunPromoted { key, rung } => {
                    decisions.insert((*key, *rung), true);
                }
                LedgerEvent::RunEliminated { key, rung } => {
                    decisions.insert((*key, *rung), false);
                }
                _ => {}
            }
        }
        decisions
    }

    /// Per-key failure history replayed from the ledger: how many
    /// attempts of each keyed run/unit have failed, and what the most
    /// recent failure reported. A later successful checkpoint does not
    /// erase the history, but resume logic never consults the history of
    /// a key that has a checkpoint — checkpoints win.
    pub fn failure_history(&self) -> HashMap<u64, FailureHistory> {
        let mut failures: HashMap<u64, FailureHistory> = HashMap::new();
        for event in self.inner.lock().events.iter() {
            if let LedgerEvent::RunFailed {
                key, stage, reason, ..
            } = event
            {
                let entry = failures.entry(*key).or_insert_with(|| FailureHistory {
                    attempts: 0,
                    stage: String::new(),
                    last_reason: String::new(),
                });
                entry.attempts += 1;
                entry.stage = stage.clone();
                entry.last_reason = reason.clone();
            }
        }
        failures
    }

    /// Read the events of a ledger file without opening it for appends.
    /// A missing file reads as empty.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Vec<LedgerEvent>> {
        match std::fs::read_to_string(path.as_ref()) {
            Ok(text) => Ok(parse_events(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }
}

/// Whether an I/O error kind is worth retrying: the write may succeed if
/// simply re-attempted a moment later.
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Run `op`, retrying transient I/O errors with a short backoff (at most
/// three retries). Each retry bumps [`obs::Counter::LedgerRetries`].
/// Permanent errors — and transient ones that outlast the backoff
/// schedule — are returned to the caller.
pub(crate) fn retry_transient<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    const RETRY_BACKOFF_MS: [u64; 3] = [1, 5, 20];
    let mut attempt = 0;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) if attempt < RETRY_BACKOFF_MS.len() && is_transient(e.kind()) => {
                obs::counter(obs::Counter::LedgerRetries, 1);
                std::thread::sleep(std::time::Duration::from_millis(RETRY_BACKOFF_MS[attempt]));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Parse JSONL leniently: skip blank and unparseable lines.
fn parse_events(text: &str) -> Vec<LedgerEvent> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<LedgerEvent>(l).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcal::prelude::{
        Budget, Calibration, Calibrator, FnObjective, ParamKind, ParameterSpace,
    };
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lodsel-ledger-test-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_result() -> CalibrationResult {
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 1.0 });
        let obj = FnObjective::new(space, |c: &Calibration| (c.values[0] - 0.3).powi(2));
        Calibrator::bo_gp(Budget::Evaluations(5), 1).calibrate(&obj)
    }

    #[test]
    fn keys_are_stable_and_configuration_sensitive() {
        let b = Budget::Evaluations(100);
        let k = run_key("wf", 7, "v1/app", 2, 42, &b);
        assert_eq!(k, run_key("wf", 7, "v1/app", 2, 42, &b));
        assert_ne!(k, run_key("wf", 7, "v1/app", 3, 42, &b));
        assert_ne!(k, run_key("wf", 8, "v1/app", 2, 42, &b));
        assert_ne!(k, run_key("wf", 7, "v1/app", 2, 43, &b));
        assert_ne!(
            k,
            run_key("wf", 7, "v1/app", 2, 42, &Budget::Evaluations(101))
        );
        assert_ne!(k, run_key("mpi", 7, "v1/app", 2, 42, &b));
    }

    #[test]
    fn append_read_roundtrip_and_checkpoints() {
        let path = tmp_path("roundtrip");
        let ledger = Ledger::open(&path).unwrap();
        let run = RunRecord {
            key: 11,
            unit: "u".into(),
            restart: 0,
            seed: 5,
            result: sample_result(),
        };
        let unit = UnitRecord {
            key: 22,
            unit: "u".into(),
            best_restart: 0,
            samples: vec![0.25, 0.5],
            work_units: 99,
            wall_secs: 0.001,
        };
        ledger
            .append(&LedgerEvent::RunCompleted {
                record: run.clone(),
            })
            .unwrap();
        ledger
            .append(&LedgerEvent::UnitCompleted {
                record: unit.clone(),
            })
            .unwrap();

        // Same-instance checkpoints see the appended records.
        let (runs, units) = ledger.checkpoints();
        assert_eq!(runs.get(&11), Some(&run));
        assert_eq!(units.get(&22), Some(&unit));

        // Reopening reloads them bit-for-bit from disk.
        drop(ledger);
        let reopened = Ledger::open(&path).unwrap();
        let (runs, units) = reopened.checkpoints();
        assert_eq!(runs.get(&11), Some(&run));
        assert_eq!(units.get(&22), Some(&unit));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reads_are_lenient_to_torn_and_garbage_lines() {
        let path = tmp_path("lenient");
        {
            let ledger = Ledger::open(&path).unwrap();
            ledger
                .append(&LedgerEvent::SweepStarted {
                    family: "toy".into(),
                    fingerprint: 1,
                    seed: 2,
                    restarts: 3,
                    units: 4,
                    pending_runs: 5,
                })
                .unwrap();
        }
        // Simulate a kill mid-write: a torn line, then garbage.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"RunCompleted\":{\"record\":{\"key\":1,\"un");
        std::fs::write(&path, &text).unwrap();
        let events = Ledger::read(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], LedgerEvent::SweepStarted { .. }));

        // Reopening heals the torn tail: the next append starts on a
        // fresh line and parses on its own.
        let reopened = Ledger::open(&path).unwrap();
        reopened
            .append(&LedgerEvent::SweepCompleted {
                family: "toy".into(),
                digest: "d".into(),
                chosen: "v".into(),
            })
            .unwrap();
        drop(reopened);
        let events = Ledger::read(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], LedgerEvent::SweepCompleted { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let events = Ledger::read(tmp_path("missing")).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn opening_a_directory_as_a_ledger_reports_the_path() {
        // Regression: `lodsel --ledger some/dir` used to surface a bare
        // OS error with no hint of which path was at fault.
        let dir = std::env::temp_dir().join(format!("lodsel-ledger-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = match Ledger::open(&dir) {
            Err(e) => e,
            Ok(_) => panic!("opening a directory as a ledger must fail"),
        };
        let msg = err.to_string();
        assert!(msg.contains("cannot open ledger"), "{msg}");
        assert!(msg.contains(&dir.display().to_string()), "{msg}");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn retry_transient_retries_interrupted_writes_and_counts_them() {
        use std::io::ErrorKind;
        let recorder = std::sync::Arc::new(obs::TraceRecorder::new());
        obs::install(recorder.clone());
        let mut attempts = 0;
        let out = retry_transient(|| {
            attempts += 1;
            if attempts < 3 {
                Err(io::Error::new(ErrorKind::Interrupted, "interrupted"))
            } else {
                Ok(attempts)
            }
        });
        obs::uninstall();
        assert_eq!(out.unwrap(), 3);
        assert_eq!(recorder.counter_value(obs::Counter::LedgerRetries), 2);
    }

    #[test]
    fn retry_transient_gives_up_on_permanent_errors_immediately() {
        use std::io::ErrorKind;
        let mut attempts = 0;
        let out: io::Result<()> = retry_transient(|| {
            attempts += 1;
            Err(io::Error::new(ErrorKind::PermissionDenied, "nope"))
        });
        assert_eq!(out.unwrap_err().kind(), ErrorKind::PermissionDenied);
        assert_eq!(attempts, 1, "permanent errors must not be retried");
    }

    #[test]
    fn retry_transient_is_bounded_for_persistent_transient_errors() {
        use std::io::ErrorKind;
        let mut attempts = 0;
        let out: io::Result<()> = retry_transient(|| {
            attempts += 1;
            Err(io::Error::new(ErrorKind::Interrupted, "still interrupted"))
        });
        assert_eq!(out.unwrap_err().kind(), ErrorKind::Interrupted);
        assert_eq!(attempts, 4, "one initial attempt plus three retries");
    }

    #[test]
    fn failure_history_counts_attempts_and_keeps_the_latest_reason() {
        let path = tmp_path("failures");
        let ledger = Ledger::open(&path).unwrap();
        for (attempt, reason) in [(1, "first crash"), (2, "second crash")] {
            ledger
                .append(&LedgerEvent::RunFailed {
                    key: 77,
                    unit: "v1/app".into(),
                    restart: 0,
                    seed: 42,
                    attempt,
                    stage: "calibrate".into(),
                    reason: reason.into(),
                })
                .unwrap();
        }
        let history = ledger.failure_history();
        let h = history.get(&77).unwrap();
        assert_eq!(h.attempts, 2);
        assert_eq!(h.stage, "calibrate");
        assert_eq!(h.last_reason, "second crash");

        // The history replays identically from disk.
        drop(ledger);
        let reopened = Ledger::open(&path).unwrap();
        assert_eq!(reopened.failure_history().get(&77), Some(h));
        let _ = std::fs::remove_file(&path);
    }
}
