//! Trace-file summarization: parse a versioned `lodcal-trace` JSONL
//! file (written via `--trace` on the experiment binaries) and reduce
//! it to a per-phase time/percentage table plus counter and histogram
//! summaries — the `lodsel --trace-report` subcommand.
//!
//! The schema is produced by `obs::TraceRecorder` and documented in
//! `obs::trace`; this parser is lenient the same way the ledger reader
//! is: unknown events and unknown fields are ignored, so a version-1
//! reader keeps working on traces from newer writers that only add
//! fields.

use crate::report::{fnum, Table};
use serde::Value;

/// One span parsed back out of a trace file.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Trace-unique span id.
    pub id: u64,
    /// Parent span id (`None` for roots).
    pub parent: Option<u64>,
    /// Span name (e.g. `"sweep"`, `"calibrate"`, `"run"`).
    pub name: String,
    /// Per-trace thread index.
    pub thread: u64,
    /// Start offset in microseconds on the trace's monotonic clock.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// True when the span was still open at serialization time.
    pub open: bool,
}

/// One histogram parsed back out of a trace file.
#[derive(Clone, Debug)]
pub struct TraceHistogram {
    /// Histogram name (e.g. `"eval_latency_secs"`).
    pub name: String,
    /// Total observation count.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_secs: f64,
    /// Inclusive upper bound of each finite bucket, in seconds.
    pub bounds_secs: Vec<f64>,
    /// Per-bucket counts; one trailing overflow bucket.
    pub counts: Vec<u64>,
}

/// A parsed trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceFile {
    /// Schema version from the meta line.
    pub version: u64,
    /// All spans, in id order.
    pub spans: Vec<TraceSpan>,
    /// All counters, in file order.
    pub counters: Vec<(String, u64)>,
    /// All histograms, in file order.
    pub histograms: Vec<TraceHistogram>,
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key)?.as_f64().map(|f| f as u64)
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Parse the text of a trace file.
///
/// Fails on a missing/foreign meta line or a schema version newer than
/// this reader understands; skips malformed or unknown event lines
/// (forward compatibility, mirroring the ledger's lenient reads).
pub fn parse_trace(text: &str) -> Result<TraceFile, String> {
    let mut lines = text.lines();
    let meta_line = lines.next().ok_or("empty trace file")?;
    let meta: Value = serde_json::from_str(meta_line).map_err(|e| format!("bad meta line: {e}"))?;
    match get_str(&meta, "schema") {
        Some(s) if s == obs::trace::SCHEMA_NAME => {}
        other => {
            return Err(format!(
                "not a {} file (schema = {:?})",
                obs::trace::SCHEMA_NAME,
                other
            ))
        }
    }
    let version = get_u64(&meta, "version").ok_or("meta line has no version")?;
    if version > obs::trace::SCHEMA_VERSION {
        return Err(format!(
            "trace schema version {version} is newer than this reader (v{})",
            obs::trace::SCHEMA_VERSION
        ));
    }

    let mut out = TraceFile {
        version,
        ..TraceFile::default()
    };
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue; // torn tail or foreign line: skip, like the ledger
        };
        match get_str(&v, "event").as_deref() {
            Some("span") => {
                let (Some(id), Some(name)) = (get_u64(&v, "id"), get_str(&v, "name")) else {
                    continue;
                };
                out.spans.push(TraceSpan {
                    id,
                    parent: v.get("parent").and_then(|p| p.as_f64()).map(|f| f as u64),
                    name,
                    thread: get_u64(&v, "thread").unwrap_or(0),
                    start_us: get_u64(&v, "start_us").unwrap_or(0),
                    dur_us: get_u64(&v, "dur_us").unwrap_or(0),
                    open: matches!(v.get("open"), Some(Value::Bool(true))),
                });
            }
            Some("counter") => {
                if let (Some(name), Some(value)) = (get_str(&v, "name"), get_u64(&v, "value")) {
                    out.counters.push((name, value));
                }
            }
            Some("histogram") => {
                let Some(name) = get_str(&v, "name") else {
                    continue;
                };
                let floats = |key: &str| -> Vec<f64> {
                    match v.get(key) {
                        Some(Value::Array(items)) => {
                            items.iter().filter_map(|x| x.as_f64()).collect()
                        }
                        _ => Vec::new(),
                    }
                };
                out.histograms.push(TraceHistogram {
                    name,
                    count: get_u64(&v, "count").unwrap_or(0),
                    sum_secs: v.get("sum_secs").and_then(|x| x.as_f64()).unwrap_or(0.0),
                    bounds_secs: floats("bounds_secs"),
                    counts: floats("counts").into_iter().map(|f| f as u64).collect(),
                });
            }
            _ => {}
        }
    }
    out.spans.sort_by_key(|s| s.id);
    Ok(out)
}

/// Render the per-phase time/percentage report for a parsed trace.
///
/// The root is the longest parentless span (a sweep's `"sweep"` span).
/// Its direct children are the sweep's sequential phases, so their
/// durations — plus the residual `(unaccounted)` row — sum to the
/// root's wall time. Spans deeper in the tree ran concurrently on the
/// pool and are aggregated separately (their total can exceed the
/// sweep wall time; that is pool parallelism, not an error).
pub fn render_report(trace: &TraceFile) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} v{} — {} spans, {} counters, {} histograms",
        obs::trace::SCHEMA_NAME,
        trace.version,
        trace.spans.len(),
        trace.counters.len(),
        trace.histograms.len()
    );

    let Some(root) = trace
        .spans
        .iter()
        .filter(|s| s.parent.is_none())
        .max_by_key(|s| s.dur_us)
    else {
        out.push_str("no spans recorded\n");
        return out;
    };
    let root_secs = root.dur_us as f64 * 1e-6;
    let _ = writeln!(
        out,
        "root span: {} ({} s total{})",
        root.name,
        fnum(root_secs),
        if root.open { ", still open" } else { "" }
    );

    // Direct children of the root = the sequential phases.
    let mut phases: Vec<(String, u64, u64)> = Vec::new(); // (name, spans, dur_us)
    for s in trace.spans.iter().filter(|s| s.parent == Some(root.id)) {
        match phases.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some((_, count, dur)) => {
                *count += 1;
                *dur += s.dur_us;
            }
            None => phases.push((s.name.clone(), 1, s.dur_us)),
        }
    }
    let mut table = Table::new(&["phase", "spans", "total (s)", "% of root"]);
    let mut accounted = 0u64;
    for (name, count, dur) in &phases {
        accounted += dur;
        table.row(vec![
            name.clone(),
            count.to_string(),
            fnum(*dur as f64 * 1e-6),
            pct_of(*dur, root.dur_us),
        ]);
    }
    if root.dur_us > accounted {
        let rest = root.dur_us - accounted;
        table.row(vec![
            "(unaccounted)".into(),
            String::new(),
            fnum(rest as f64 * 1e-6),
            pct_of(rest, root.dur_us),
        ]);
    }
    out.push('\n');
    out.push_str(&table.render());

    // Everything deeper than the phases ran concurrently on the pool
    // (per-run/per-unit spans and whatever they opened underneath).
    let mut nested: Vec<(String, u64, u64)> = Vec::new();
    for s in &trace.spans {
        let Some(p) = s.parent else { continue };
        if p == root.id {
            continue;
        }
        match nested.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some((_, count, dur)) => {
                *count += 1;
                *dur += s.dur_us;
            }
            None => nested.push((s.name.clone(), 1, s.dur_us)),
        }
    }
    if !nested.is_empty() {
        let mut t = Table::new(&["pool span", "spans", "total (s)"]);
        for (name, count, dur) in &nested {
            t.row(vec![
                name.clone(),
                count.to_string(),
                fnum(*dur as f64 * 1e-6),
            ]);
        }
        out.push('\n');
        out.push_str("concurrent pool spans (totals may exceed wall time):\n");
        out.push_str(&t.render());
    }

    if !trace.counters.is_empty() {
        let mut t = Table::new(&["counter", "value"]);
        for (name, value) in &trace.counters {
            t.row(vec![name.clone(), value.to_string()]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    // Failure summary: surfaced only when something actually failed, so
    // healthy traces render exactly as they always have.
    let counter = |name: &str| {
        trace
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let (panics, nonfinite, retries) = (
        counter("eval_panics"),
        counter("eval_nonfinite"),
        counter("ledger_retries"),
    );
    if panics + nonfinite + retries > 0 {
        out.push('\n');
        let _ = writeln!(
            out,
            "failures: {panics} evaluation panic(s), {nonfinite} non-finite loss(es), \
             {retries} ledger write retry(ies) — all isolated; see the run ledger for details"
        );
    }

    for h in &trace.histograms {
        out.push('\n');
        let mean = if h.count > 0 {
            format!("{} ms mean", fnum(h.sum_secs / h.count as f64 * 1e3))
        } else {
            "no observations".to_string()
        };
        let _ = writeln!(out, "histogram {}: {} obs, {}", h.name, h.count, mean);
        for (i, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let label = match h.bounds_secs.get(i) {
                Some(&b) => format!("<= {} ms", fnum(b * 1e3)),
                None => "overflow".to_string(),
            };
            let _ = writeln!(out, "  {label:>12}  {c}");
        }
    }
    out
}

fn pct_of(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".to_string();
    }
    format!("{:.1}%", part as f64 / whole as f64 * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> String {
        let rec = obs::TraceRecorder::new();
        use obs::Recorder as _;
        let sweep = rec.span_start("sweep", None, &[("family", "toy".to_string())]);
        let cal = rec.span_start("calibrate", Some(sweep), &[]);
        let run = rec.span_start("run", Some(cal), &[]);
        rec.span_end(run);
        rec.span_end(cal);
        let ev = rec.span_start("evaluate", Some(sweep), &[]);
        rec.span_end(ev);
        rec.span_end(sweep);
        rec.add(obs::Counter::EvalCacheMisses, 7);
        rec.observe(obs::Hist::EvalLatency, 0.002);
        rec.to_jsonl()
    }

    #[test]
    fn parse_and_report_round_trip() {
        let trace = parse_trace(&toy_trace()).unwrap();
        assert_eq!(trace.version, obs::trace::SCHEMA_VERSION);
        assert_eq!(trace.spans.len(), 4);
        assert!(trace
            .counters
            .iter()
            .any(|(n, v)| n == "eval_cache_misses" && *v == 7));
        let text = render_report(&trace);
        assert!(text.contains("root span: sweep"));
        assert!(text.contains("calibrate"));
        assert!(text.contains("evaluate"));
        assert!(text.contains("run"));
        assert!(text.contains("eval_latency_secs: 1 obs"));
    }

    #[test]
    fn phase_rows_sum_to_root_duration() {
        let trace = parse_trace(&toy_trace()).unwrap();
        let root = trace
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .max_by_key(|s| s.dur_us)
            .unwrap();
        let phase_total: u64 = trace
            .spans
            .iter()
            .filter(|s| s.parent == Some(root.id))
            .map(|s| s.dur_us)
            .sum();
        assert!(phase_total <= root.dur_us);
    }

    #[test]
    fn foreign_and_newer_files_are_rejected() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("{\"schema\":\"something-else\",\"version\":1}\n").is_err());
        let newer = format!(
            "{{\"schema\":\"{}\",\"version\":{}}}\n",
            obs::trace::SCHEMA_NAME,
            obs::trace::SCHEMA_VERSION + 1
        );
        assert!(parse_trace(&newer).is_err());
    }

    #[test]
    fn unknown_events_and_torn_lines_are_skipped() {
        let text = format!(
            "{{\"schema\":\"{}\",\"version\":1}}\n{{\"event\":\"future-thing\",\"x\":1}}\n{{\"event\":\"span\",\"id\":1,\"parent\":null,\"name\":\"sweep\",\"thread\":0,\"start_us\":0,\"dur_us\":10}}\n{{\"event\":\"span\",\"id\":2,\"par",
            obs::trace::SCHEMA_NAME
        );
        let trace = parse_trace(&text).unwrap();
        assert_eq!(trace.spans.len(), 1);
    }
}
