//! The decision layer: accuracy-versus-cost Pareto front and the ranked
//! ε-recommendation.
//!
//! Accuracy is the version's held-out test error; cost is its
//! deterministic simulation work (see
//! [`crate::family::UnitEval::work_units`]). The recommendation answers
//! the practitioner's question directly: among versions whose error is
//! within a factor `1 + ε` of the best version's error, which is cheapest
//! to simulate?

use serde::{Deserialize, Serialize};

/// Pareto-front membership on (error, work): `true` where no other point
/// is at least as good on both axes and strictly better on one.
///
/// ```
/// use lodsel::pareto::pareto_front;
///
/// // (test error, simulation work): the last point is dominated by the
/// // first — it has both a worse error and a higher cost.
/// let points = [(0.10, 50), (0.25, 10), (0.12, 80)];
/// assert_eq!(pareto_front(&points), vec![true, true, false]);
/// ```
pub fn pareto_front(points: &[(f64, u64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&(err_i, work_i)| {
            !points.iter().any(|&(err_j, work_j)| {
                err_j <= err_i && work_j <= work_i && (err_j < err_i || work_j < work_i)
            })
        })
        .collect()
}

/// One version's entry in a [`Recommendation`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VersionScore {
    /// Version label.
    pub label: String,
    /// Held-out test error (mean over the version's samples).
    pub test_error: f64,
    /// Deterministic simulation work of evaluating the test set.
    pub work_units: u64,
    /// Error within `best_error * (1 + epsilon)`.
    pub eligible: bool,
    /// On the accuracy-versus-cost Pareto front.
    pub on_front: bool,
}

/// The ranked level-of-detail recommendation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Relative accuracy tolerance used for eligibility.
    pub epsilon: f64,
    /// The lowest test error of any version.
    pub best_error: f64,
    /// The recommended version: cheapest eligible (ties: lower error,
    /// then earlier sweep order).
    pub chosen: String,
    /// All versions, ranked: eligible by ascending work, then ineligible
    /// by ascending error.
    pub scores: Vec<VersionScore>,
}

/// A recommendation could not be made: every surviving version's test
/// error is non-finite (NaN or infinite), so there is no best error to
/// anchor the ε-eligibility threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecommendError {
    /// How many versions were considered (all with non-finite errors).
    pub versions: usize,
}

impl std::fmt::Display for RecommendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no version has a finite test error ({} considered)",
            self.versions
        )
    }
}

impl std::error::Error for RecommendError {}

/// Rank versions and pick the cheapest one within ε of the best accuracy.
///
/// ```
/// use lodsel::pareto::recommend;
///
/// let labels: Vec<String> = ["high", "mid", "low"].iter().map(|s| s.to_string()).collect();
/// // "mid" is within 10% of the best error at a tenth of the cost.
/// let rec = recommend(&labels, &[0.100, 0.105, 0.300], &[1000, 100, 10], 0.1);
/// assert_eq!(rec.chosen, "mid");
/// assert_eq!(rec.best_error, 0.100);
/// assert!(rec.scores[0].eligible);
/// ```
///
/// # Panics
/// Panics if the slices are empty or of unequal length, or if no version
/// has a finite test error — use [`try_recommend`] to handle the latter
/// without unwinding.
pub fn recommend(labels: &[String], errors: &[f64], works: &[u64], epsilon: f64) -> Recommendation {
    try_recommend(labels, errors, works, epsilon).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`recommend`], but returning a typed error when every version's
/// test error is non-finite instead of silently producing a NaN
/// `best_error` (and with it a position-dependent, meaningless ranking).
///
/// Versions with non-finite errors are never eligible, never counted as
/// Pareto-front members, and rank after every finite-error version.
///
/// # Panics
/// Still panics on the programming errors: empty or unequal-length
/// slices.
pub fn try_recommend(
    labels: &[String],
    errors: &[f64],
    works: &[u64],
    epsilon: f64,
) -> Result<Recommendation, RecommendError> {
    assert!(!labels.is_empty(), "no versions to recommend from");
    assert!(
        labels.len() == errors.len() && labels.len() == works.len(),
        "mismatched version data"
    );
    let best_error = errors
        .iter()
        .copied()
        .filter(|e| e.is_finite())
        .fold(f64::INFINITY, f64::min);
    if !best_error.is_finite() {
        return Err(RecommendError {
            versions: labels.len(),
        });
    }
    let threshold = best_error * (1.0 + epsilon);
    let front = pareto_front(
        &errors
            .iter()
            .zip(works)
            .map(|(&e, &w)| (e, w))
            .collect::<Vec<_>>(),
    );

    let mut order: Vec<usize> = (0..labels.len()).collect();
    let eligible = |i: usize| errors[i].is_finite() && errors[i] <= threshold;
    order.sort_by(|&a, &b| {
        match (eligible(a), eligible(b)) {
            (true, false) => return std::cmp::Ordering::Less,
            (false, true) => return std::cmp::Ordering::Greater,
            _ => {}
        }
        let key = |i: usize| {
            if eligible(i) {
                // Cheapest first; break work ties by accuracy.
                (works[i] as i64, errors[i])
            } else {
                // Closest to eligibility first; `total_cmp` below ranks
                // non-finite errors (inf, then NaN) after every finite one.
                (0, errors[i])
            }
        };
        let (ka, kb) = (key(a), key(b));
        ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1)).then(a.cmp(&b))
    });

    let scores: Vec<VersionScore> = order
        .iter()
        .map(|&i| VersionScore {
            label: labels[i].clone(),
            test_error: errors[i],
            work_units: works[i],
            eligible: eligible(i),
            // A NaN error compares false against everything, so the
            // dominance test can never rule such a point out; require a
            // finite error for front membership.
            on_front: front[i] && errors[i].is_finite(),
        })
        .collect();
    Ok(Recommendation {
        epsilon,
        best_error,
        chosen: scores[0].label.clone(),
        scores,
    })
}

/// Multi-line human-readable rendering of a recommendation.
pub fn render_recommendation(rec: &Recommendation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recommendation (epsilon = {:.0}%): {}",
        rec.epsilon * 100.0,
        rec.chosen
    );
    let _ = writeln!(
        out,
        "  cheapest version within {:.0}% of the best test error ({:.2}%)",
        rec.epsilon * 100.0,
        rec.best_error * 100.0
    );
    for (rank, s) in rec.scores.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:>2}. {:<40} err {:>7.2}%  work {:>12}  {}{}",
            rank + 1,
            s.label,
            s.test_error * 100.0,
            s.work_units,
            if s.eligible { "eligible" } else { "        " },
            if s.on_front { " [pareto]" } else { "" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn front_keeps_non_dominated_points_only() {
        // (error, work): v3 is dominated by v0 (worse error, more work).
        let pts = [(0.30, 1), (0.10, 100), (0.105, 10), (0.35, 5)];
        assert_eq!(pareto_front(&pts), vec![true, true, true, false]);
    }

    #[test]
    fn duplicate_points_stay_on_the_front() {
        let pts = [(0.2, 10), (0.2, 10)];
        assert_eq!(pareto_front(&pts), vec![true, true]);
    }

    #[test]
    fn recommends_cheapest_within_epsilon() {
        let errs = [0.30, 0.10, 0.105, 0.35];
        let works = [1, 100, 10, 5];
        let rec = recommend(&labels(4), &errs, &works, 0.1);
        assert_eq!(rec.chosen, "v2"); // within 10% of 0.10, much cheaper
        assert_eq!(rec.best_error, 0.10);
        let ranked: Vec<&str> = rec.scores.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(ranked, vec!["v2", "v1", "v0", "v3"]);
        assert_eq!(
            rec.scores.iter().map(|s| s.eligible).collect::<Vec<_>>(),
            vec![true, true, false, false]
        );
    }

    #[test]
    fn zero_epsilon_picks_the_most_accurate_breaking_ties_by_work() {
        let errs = [0.2, 0.1, 0.1];
        let works = [1, 50, 20];
        let rec = recommend(&labels(3), &errs, &works, 0.0);
        assert_eq!(rec.chosen, "v2"); // both v1/v2 hit best error; v2 cheaper
    }

    #[test]
    fn single_version_is_trivially_chosen() {
        let rec = recommend(&labels(1), &[0.5], &[7], 0.1);
        assert_eq!(rec.chosen, "v0");
        assert!(rec.scores[0].eligible && rec.scores[0].on_front);
    }

    #[test]
    fn non_finite_errors_are_ineligible_and_ranked_last() {
        // Regression: a NaN test error used to poison `best_error`
        // (fold over min with NaN first yields NaN), make its version
        // spuriously Pareto-optimal, and leave its rank position-
        // dependent. It must lose to every finite version.
        let errs = [f64::NAN, 0.10, f64::INFINITY, 0.12];
        let works = [1, 100, 2, 10];
        let rec = try_recommend(&labels(4), &errs, &works, 0.5).unwrap();
        assert_eq!(rec.best_error, 0.10);
        assert_eq!(rec.chosen, "v3"); // cheapest eligible finite version
        let ranked: Vec<&str> = rec.scores.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(ranked, vec!["v3", "v1", "v2", "v0"]); // inf before NaN
        for s in &rec.scores {
            if !s.test_error.is_finite() {
                assert!(!s.eligible, "{}", s.label);
                assert!(!s.on_front, "{}", s.label);
            }
        }
    }

    #[test]
    fn all_non_finite_errors_yield_a_typed_error() {
        let errs = [f64::NAN, f64::INFINITY];
        let err = try_recommend(&labels(2), &errs, &[1, 2], 0.1).unwrap_err();
        assert_eq!(err, RecommendError { versions: 2 });
        assert!(err
            .to_string()
            .contains("no version has a finite test error"));
    }

    #[test]
    fn recommend_panics_when_nothing_is_finite() {
        let caught = std::panic::catch_unwind(|| {
            recommend(&labels(1), &[f64::NAN], &[1], 0.1);
        });
        assert!(caught.is_err());
    }

    #[test]
    fn rendering_mentions_the_choice_and_every_version() {
        let rec = recommend(&labels(2), &[0.2, 0.1], &[1, 10], 0.1);
        let text = render_recommendation(&rec);
        assert!(text.contains(&rec.chosen));
        assert!(text.contains("v0") && text.contains("v1"));
        assert!(text.contains("[pareto]"));
    }
}
