//! Multi-start calibration: N independent restarts, keep the best by
//! *training* loss (what a practitioner does with a multi-start optimizer;
//! no test data is consulted).
//!
//! Every case study used to carry its own copy of this logic; the seed
//! derivation and the tie-breaking below are now the single source of
//! truth, and changing either would silently change every reported table —
//! hence the pinned unit tests.

use simcal::prelude::{Budget, CalibrationResult, Calibrator, Objective};

/// Seed of restart `restart` derived from a master `seed`.
///
/// The derivation is independent of which unit is being calibrated, so a
/// sweep reproduces exactly the restart seeds the standalone experiment
/// binaries have always used.
pub fn restart_seed(seed: u64, restart: usize) -> u64 {
    seed ^ ((restart as u64) << 32)
}

/// Index of the best result: lowest training loss among the finite
/// losses, first-wins on ties. A non-finite loss (NaN/inf) can never win
/// while any finite result exists — regardless of slice order. Only when
/// *every* loss is non-finite does the first entry win, so callers always
/// get an index back.
///
/// (The previous `partial_cmp(..).unwrap_or(Equal)` made NaN compare
/// equal to everything, so a NaN in front of the slice was crowned —
/// the winner depended on restart order. Same fix as
/// `simcal::synthetic::best_pair`.)
///
/// # Panics
/// Panics on an empty slice.
pub fn pick_best(results: &[CalibrationResult]) -> usize {
    let by_loss = |&(_, a): &(usize, &CalibrationResult), &(_, b): &(usize, &CalibrationResult)| {
        a.loss.total_cmp(&b.loss)
    };
    results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.loss.is_finite())
        .min_by(by_loss)
        .or_else(|| results.iter().enumerate().next())
        .expect("at least one result")
        .0
}

/// The best of an iterator of results, by [`pick_best`]'s ordering.
pub fn best_result<I>(results: I) -> Option<CalibrationResult>
where
    I: IntoIterator<Item = CalibrationResult>,
{
    let all: Vec<CalibrationResult> = results.into_iter().collect();
    if all.is_empty() {
        return None;
    }
    let idx = pick_best(&all);
    all.into_iter().nth(idx)
}

/// Calibrate `objective` with `restarts` independent seeds (at least one),
/// keeping the calibration with the lowest training loss.
pub fn calibrate_best_of(
    objective: &dyn Objective,
    budget: Budget,
    seed: u64,
    restarts: usize,
) -> CalibrationResult {
    best_result(
        (0..restarts.max(1))
            .map(|r| Calibrator::bo_gp(budget, restart_seed(seed, r)).calibrate(objective)),
    )
    .expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcal::prelude::{Calibration, FnObjective, ParamKind, ParameterSpace};

    #[test]
    fn restart_seed_matches_the_historical_derivation() {
        // Pinned: the experiment binaries always derived restart seeds as
        // `seed ^ (r as u64) << 32` (shift binds tighter than xor).
        let seed = 20250706u64;
        for r in 0..6usize {
            assert_eq!(restart_seed(seed, r), seed ^ (r as u64) << 32);
        }
        assert_eq!(restart_seed(seed, 0), seed);
    }

    fn result_with_loss(loss: f64, marker: f64) -> CalibrationResult {
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 10.0 });
        let obj = FnObjective::new(space, |_c: &Calibration| 0.0);
        let mut r = Calibrator::bo_gp(Budget::Evaluations(1), 0).calibrate(&obj);
        r.loss = loss;
        r.calibration.values[0] = marker;
        r
    }

    #[test]
    fn pick_best_is_first_wins_on_ties() {
        let results = vec![
            result_with_loss(2.0, 0.0),
            result_with_loss(1.0, 1.0),
            result_with_loss(1.0, 2.0),
        ];
        assert_eq!(pick_best(&results), 1);
        let best = best_result(results).unwrap();
        assert_eq!(best.calibration.values[0], 1.0);
    }

    #[test]
    fn nan_never_displaces_a_finite_incumbent() {
        let results = vec![result_with_loss(3.0, 0.0), result_with_loss(f64::NAN, 1.0)];
        assert_eq!(pick_best(&results), 0);
    }

    #[test]
    fn nan_restart_is_never_crowned_regardless_of_order() {
        // Regression: `partial_cmp(..).unwrap_or(Equal)` made every
        // comparison against NaN a tie, so a NaN in slot 0 won first-wins
        // and the reported winner depended on restart order.
        let results = vec![
            result_with_loss(f64::NAN, 0.0),
            result_with_loss(3.0, 1.0),
            result_with_loss(2.0, 2.0),
        ];
        assert_eq!(pick_best(&results), 2);
        let best = best_result(results).unwrap();
        assert_eq!(best.calibration.values[0], 2.0);

        // Infinities are non-finite too: they lose to any finite loss.
        let results = vec![
            result_with_loss(f64::INFINITY, 0.0),
            result_with_loss(9.0, 1.0),
        ];
        assert_eq!(pick_best(&results), 1);

        // All-non-finite input still returns an index (first-wins).
        let results = vec![
            result_with_loss(f64::NAN, 0.0),
            result_with_loss(f64::INFINITY, 1.0),
        ];
        assert_eq!(pick_best(&results), 0);
    }

    #[test]
    fn calibrate_best_of_improves_on_a_single_restart() {
        let space = ParameterSpace::new().with("x", ParamKind::Continuous { lo: 0.0, hi: 10.0 });
        let obj = FnObjective::new(space, |c: &Calibration| (c.values[0] - 7.0).powi(2));
        let single = calibrate_best_of(&obj, Budget::Evaluations(20), 5, 1);
        let multi = calibrate_best_of(&obj, Budget::Evaluations(20), 5, 4);
        assert!(multi.loss <= single.loss);
        // Zero restarts is clamped to one.
        let clamped = calibrate_best_of(&obj, Budget::Evaluations(20), 5, 0);
        assert_eq!(clamped.loss, single.loss);
    }
}
