//! The abstraction a simulator family implements to become sweepable.
//!
//! A *family* is a set of simulator versions (levels of detail) together
//! with the datasets they are calibrated against and evaluated on. The
//! sweep orchestrator only ever talks to this trait, so the four case
//! studies — and any future simulator — plug into the same machinery.

use simcal::prelude::{Budget, Calibration, CalibrationResult, Fidelity};

/// One calibration work item of a sweep.
///
/// Most families calibrate each version once, so a version has exactly one
/// unit. Case study #1 follows the paper's §5.4 protocol of calibrating
/// each version once *per application*, so there a version has one unit
/// per application.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepUnit {
    /// Index into [`VersionFamily::version_labels`].
    pub version: usize,
    /// Which of the family's sub-datasets this unit calibrates against
    /// (0 for families with one unit per version).
    pub slot: usize,
    /// Stable human-readable identifier, unique within the family; part
    /// of the ledger's checkpoint keys.
    pub label: String,
}

/// Held-out evaluation of one calibrated unit.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitEval {
    /// Test errors, one per sample the version's Figure-2/5-style summary
    /// aggregates over (per application for workflows, per scenario for
    /// MPI, per trace for batch scheduling).
    pub samples: Vec<f64>,
    /// Deterministic simulation work spent evaluating the test set
    /// (discrete events processed, or the analytic solve size for the
    /// event-loop-free MPI model). This — not wall-clock, which would
    /// break bit-for-bit resume equality — is the cost axis of the
    /// accuracy-versus-cost Pareto front.
    pub work_units: u64,
}

/// A set of simulator versions plus the data to calibrate and judge them.
///
/// Implementations must be deterministic: for a fixed seed and a fixed
/// evaluation budget, [`VersionFamily::calibrate`] and
/// [`VersionFamily::evaluate`] must return identical values on every call,
/// on any machine, at any thread count. That determinism is what lets the
/// sweep orchestrator replay ledger checkpoints bit-for-bit.
pub trait VersionFamily: Sync {
    /// Short family identifier (`"wf"`, `"mpi"`, `"batch"`, `"grid"`).
    fn name(&self) -> &str;

    /// Content hash of the family's configuration and datasets. Two
    /// family instances with equal fingerprints must behave identically;
    /// the ledger keys embed it so checkpoints are never replayed against
    /// different data.
    fn fingerprint(&self) -> u64;

    /// Version labels, in sweep order.
    fn version_labels(&self) -> Vec<String>;

    /// Dimensionality of a version's parameter space.
    fn dim(&self, version: usize) -> usize;

    /// All units, version-major, in a deterministic order.
    fn units(&self) -> Vec<SweepUnit>;

    /// Calibrate one unit against its training data.
    fn calibrate(&self, unit: &SweepUnit, budget: Budget, seed: u64) -> CalibrationResult;

    /// Calibrate one unit at a reduced fidelity: against the
    /// deterministic, seed-derived scenario subset `fidelity` selects
    /// out of the unit's training data ([`simcal::fidelity`]). The cheap
    /// rungs of successive-halving sweeps call this instead of
    /// [`VersionFamily::calibrate`].
    ///
    /// Contract: at full fidelity (`fidelity.is_full(n)` for the unit's
    /// `n` training scenarios) this must return **bit-for-bit** what
    /// `calibrate(unit, budget, seed)` returns — implementations should
    /// simply delegate in that case, which also shares loss-cache
    /// entries with fixed-budget sweeps. At reduced fidelity the subset
    /// objective must carry a subset-specific cache fingerprint
    /// ([`simcal::fidelity::SubsampledObjective::tag`]) so subset losses
    /// never collide with full-set losses.
    ///
    /// The default ignores `fidelity` and calibrates at full fidelity —
    /// correct for any family (successive halving then only saves budget,
    /// not scenarios), and what families without a meaningful scenario
    /// axis keep.
    fn calibrate_at(
        &self,
        unit: &SweepUnit,
        budget: Budget,
        seed: u64,
        fidelity: &Fidelity,
    ) -> CalibrationResult {
        let _ = fidelity;
        self.calibrate(unit, budget, seed)
    }

    /// Evaluate a calibration on the unit's held-out test data.
    fn evaluate(&self, unit: &SweepUnit, calibration: &Calibration) -> UnitEval;
}
