//! Sharded sweep execution: slice the (unit × restart) plan across N
//! ledger shards, run each slice independently, and merge the shards
//! back into one sweep ledger whose replay produces a [`SweepOutcome`]
//! bit-for-bit equal to a single-process [`run_sweep`](crate::sweep::run_sweep).
//!
//! The partition is round-robin over the deterministic plan order: run
//! `i` of the full grid belongs to shard `i % shards`. Every shard
//! computes the *full* plan (budgets and checkpoint keys must not depend
//! on where a shard boundary lands) and executes only its slice,
//! appending [`LedgerEvent::RunCompleted`] / [`LedgerEvent::RunFailed`]
//! checkpoints to its own shard file — the same records, bit-for-bit,
//! that a single-process sweep would have written. A shard file opens
//! with a [`LedgerEvent::ShardStarted`] header carrying the sweep-plan
//! fingerprint ([`crate::sweep::sweep_fingerprint`]); the merge step
//! refuses (with a typed [`ShardError`], never a panic) to combine
//! shards whose fingerprints disagree, so shards of two different sweeps
//! can never be silently mixed.
//!
//! [`merge_shards`] reduces shard files into one target ledger, first
//! write wins on duplicate run keys (duplicates are bit-identical
//! anyway: runs are deterministic and content-keyed). Running the sweep
//! against the merged ledger serves every calibration run from a
//! checkpoint — zero objective re-invocations — and the evaluate/reduce
//! phases are deterministic, so the merged outcome's digest equals the
//! single-process digest. That equality is pinned by golden tests.

use crate::family::VersionFamily;
use crate::ledger::{Ledger, LedgerEvent};
use crate::sweep::{
    calibrate_one, plan_sweep, run_sh_phase, sweep_fingerprint, try_run_sweep, RunStatus,
    SweepConfig, SweepError, SweepOutcome,
};
use rayon::prelude::*;
use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// File name of shard `index` under the sharded sweep's directory `dir`.
pub fn shard_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index}.jsonl"))
}

/// Why a sharded operation was refused. Merging never panics on bad
/// inputs: a foreign or headerless shard is a typed error the caller
/// (e.g. the calibd daemon) reports and survives.
#[derive(Debug)]
pub enum ShardError {
    /// Reading or writing a ledger file failed.
    Io(io::Error),
    /// A shard file carries no [`LedgerEvent::ShardStarted`] header, so
    /// there is no way to tell which sweep it belongs to.
    MissingHeader {
        /// The offending shard file.
        path: PathBuf,
    },
    /// A shard was produced by a different sweep configuration than the
    /// one being merged.
    FingerprintMismatch {
        /// The offending shard file.
        path: PathBuf,
        /// The sweep-plan fingerprint being merged.
        expected: u64,
        /// The fingerprint recorded in the shard's header.
        found: u64,
    },
    /// The sweep itself cannot be planned (e.g. the total budget is
    /// smaller than the run plan) — nothing was executed.
    Plan(SweepError),
    /// The budget policy cannot run under this shard partition
    /// (successive halving needs global rung barriers, so it only runs
    /// unsharded).
    PolicyUnsupported {
        /// The offending policy, serialized.
        policy: String,
        /// The requested partition width.
        shards: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard I/O error: {e}"),
            ShardError::MissingHeader { path } => write!(
                f,
                "shard {} has no ShardStarted header (not a shard ledger?)",
                path.display()
            ),
            ShardError::FingerprintMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "shard {} belongs to a different sweep: fingerprint {found:016x}, \
                 expected {expected:016x}",
                path.display()
            ),
            ShardError::Plan(e) => write!(f, "sweep cannot be planned: {e}"),
            ShardError::PolicyUnsupported { policy, shards } => write!(
                f,
                "budget policy {policy} needs global rung barriers and cannot run \
                 across {shards} shards (use 1 shard)"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// First `ShardStarted` header of a shard's event stream, or a typed
/// error when there is none.
fn shard_header(path: &Path, events: &[LedgerEvent]) -> Result<u64, ShardError> {
    events
        .iter()
        .find_map(|e| match e {
            LedgerEvent::ShardStarted { sweep, .. } => Some(*sweep),
            _ => None,
        })
        .ok_or_else(|| ShardError::MissingHeader {
            path: path.to_path_buf(),
        })
}

/// Execute shard `index` of a `shards`-way partition of the sweep,
/// checkpointing into `shard_path(dir, index)`. Resumable exactly like
/// [`run_sweep`](crate::sweep::run_sweep): runs already checkpointed in the shard file are not
/// re-executed, and recorded failures count against the retry allowance.
/// Returns the number of calibration runs newly completed (or newly
/// failed) in this call — a fully-checkpointed shard returns 0.
///
/// A shard file left behind by a *different* sweep configuration is
/// refused with [`ShardError::FingerprintMismatch`] instead of being
/// silently polluted.
pub fn run_shard(
    family: &dyn VersionFamily,
    config: &SweepConfig,
    index: usize,
    shards: usize,
    dir: &Path,
) -> Result<usize, ShardError> {
    assert!(shards >= 1, "a sharded sweep needs at least one shard");
    assert!(index < shards, "shard index {index} out of {shards}");
    let fp = sweep_fingerprint(family, config);
    let planned = plan_sweep(family, config).map_err(ShardError::Plan)?;
    if planned.schedule.is_some() && shards > 1 {
        return Err(ShardError::PolicyUnsupported {
            policy: planned.policy_json.clone(),
            shards,
        });
    }
    let path = shard_path(dir, index);
    let ledger = Ledger::open(&path)?;
    let events = ledger.events();
    if events
        .iter()
        .any(|e| matches!(e, LedgerEvent::ShardStarted { .. }))
    {
        let found = shard_header(&path, &events)?;
        if found != fp {
            return Err(ShardError::FingerprintMismatch {
                path,
                expected: fp,
                found,
            });
        }
    }
    ledger
        .append(&LedgerEvent::ShardStarted {
            sweep: fp,
            shard: index,
            shards,
            family: planned.name.clone(),
            fingerprint: planned.fingerprint,
        })
        .map_err(ShardError::Io)?;

    let active_units = config
        .max_units
        .unwrap_or(planned.units.len())
        .min(planned.units.len());

    // Successive halving runs the full rung ladder into the (single)
    // shard ledger: rung records and promotion decisions land there, and
    // the post-merge replay serves everything from them.
    if let Some(schedule) = &planned.schedule {
        let active_plans: Vec<_> = planned
            .plans
            .iter()
            .take(active_units * planned.restarts)
            .collect();
        let phase = run_sh_phase(
            family,
            &planned.labels,
            &planned.units,
            schedule,
            &active_plans,
            config,
            Some(&ledger),
        );
        return Ok(phase.executed);
    }

    let (cached_runs, _) = ledger.checkpoints();
    let failure_history = ledger.failure_history();
    let max_attempts = 1 + config.max_fault_retries;
    let attempts_of = |key: u64| failure_history.get(&key).map_or(0, |h| h.attempts);
    // This shard's slice: round-robin over the truncation-aware plan
    // prefix, minus work already checkpointed or out of retries.
    let pending: Vec<_> = planned
        .plans
        .iter()
        .take(active_units * planned.restarts)
        .enumerate()
        .filter(|(i, _)| i % shards == index)
        .map(|(_, p)| p)
        .filter(|p| !cached_runs.contains_key(&p.key) && attempts_of(p.key) < max_attempts)
        .collect();

    let shard_span = obs::span!(
        "shard",
        index = index,
        shards = shards,
        pending = pending.len()
    );
    let shard_id = shard_span.id();
    let statuses: Vec<RunStatus> = pending
        .par_iter()
        .map(|p| {
            let attrs = if obs::enabled() {
                vec![
                    ("unit", planned.units[p.unit_idx].label.clone()),
                    ("restart", p.restart.to_string()),
                ]
            } else {
                Vec::new()
            };
            let _run = obs::SpanGuard::enter_under("run", shard_id, attrs);
            let attempt = attempts_of(p.key) + 1;
            calibrate_one(
                family,
                &planned.units[p.unit_idx],
                p,
                attempt,
                Some(&ledger),
            )
        })
        .collect();
    Ok(statuses.len())
}

/// Merge shard ledgers into the target ledger at `target`, validating
/// that every shard belongs to the same sweep. First write wins on
/// duplicate run keys (re-merging is idempotent); failure events are
/// deduplicated by full content so retry counting stays correct across
/// repeated merges. Returns the open merged ledger, ready to be passed
/// to [`run_sweep`](crate::sweep::run_sweep).
pub fn merge_shards(shard_paths: &[PathBuf], target: &Path) -> Result<Ledger, ShardError> {
    let merged = Ledger::open(target)?;
    let mut seen_runs: HashSet<u64> = HashSet::new();
    let mut seen_units: HashSet<u64> = HashSet::new();
    let mut seen_failures: HashSet<String> = HashSet::new();
    for event in merged.events() {
        match &event {
            LedgerEvent::RunCompleted { record } => {
                seen_runs.insert(record.key);
            }
            LedgerEvent::UnitCompleted { record } => {
                seen_units.insert(record.key);
            }
            LedgerEvent::RunFailed { .. } => {
                if let Ok(line) = serde_json::to_string(&event) {
                    seen_failures.insert(line);
                }
            }
            _ => {}
        }
    }

    let mut expected: Option<u64> = None;
    for path in shard_paths {
        let events = Ledger::read(path)?;
        let sweep = shard_header(path, &events)?;
        match expected {
            None => expected = Some(sweep),
            Some(fp) if fp != sweep => {
                return Err(ShardError::FingerprintMismatch {
                    path: path.clone(),
                    expected: fp,
                    found: sweep,
                });
            }
            Some(_) => {}
        }
        for event in &events {
            match event {
                LedgerEvent::RunCompleted { record } => {
                    if seen_runs.insert(record.key) {
                        merged.append(event).map_err(ShardError::Io)?;
                    }
                }
                LedgerEvent::RungCompleted { record, .. } => {
                    // Rung keys are content hashes of (base, rung,
                    // budget, subset), so first-write-wins per key is as
                    // idempotent as plain run records.
                    if seen_runs.insert(record.key) {
                        merged.append(event).map_err(ShardError::Io)?;
                    }
                }
                LedgerEvent::UnitCompleted { record } => {
                    if seen_units.insert(record.key) {
                        merged.append(event).map_err(ShardError::Io)?;
                    }
                }
                LedgerEvent::RunFailed { .. }
                | LedgerEvent::RunPromoted { .. }
                | LedgerEvent::RunEliminated { .. } => {
                    let line = serde_json::to_string(event).unwrap_or_default();
                    if seen_failures.insert(line) {
                        merged.append(event).map_err(ShardError::Io)?;
                    }
                }
                // Shard headers and per-execution markers stay in their
                // shard files; the merged ledger is a plain sweep ledger.
                LedgerEvent::ShardStarted { .. }
                | LedgerEvent::SweepStarted { .. }
                | LedgerEvent::SweepCompleted { .. } => {}
            }
        }
        obs::counter(obs::Counter::ShardMerges, 1);
    }
    Ok(merged)
}

/// Run the whole sweep as `shards` slices under `dir`, merge the shard
/// ledgers into `dir/merged.jsonl`, and replay the merged ledger through
/// [`run_sweep`](crate::sweep::run_sweep). The outcome — including its digest — is bit-for-bit
/// equal to a single-process `run_sweep` of the same configuration, and
/// the final replay performs zero calibration work (every run is served
/// from a merged checkpoint).
pub fn run_sweep_sharded(
    family: &dyn VersionFamily,
    config: &SweepConfig,
    shards: usize,
    dir: &Path,
) -> Result<SweepOutcome, ShardError> {
    for index in 0..shards {
        run_shard(family, config, index, shards, dir)?;
    }
    let paths: Vec<PathBuf> = (0..shards).map(|i| shard_path(dir, i)).collect();
    let merged = merge_shards(&paths, &dir.join("merged.jsonl"))?;
    try_run_sweep(family, config, Some(&merged)).map_err(ShardError::Plan)
}
