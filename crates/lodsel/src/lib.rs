//! # lodsel — level-of-detail selection
//!
//! The paper's end product is not a calibration: it is a *decision* — which
//! level of detail should a practitioner simulate at? This crate turns the
//! workspace's calibration machinery into that decision. It orchestrates
//! the full (version × restart) calibration sweep behind a small
//! [`family::VersionFamily`] trait (implemented for the workflow, MPI,
//! batch-scheduling, and data-grid simulator families), fans the runs onto the
//! work-stealing pool, and reduces the results to an accuracy-versus-cost
//! Pareto front plus a ranked recommendation: *the cheapest version whose
//! held-out error is within ε of the best*.
//!
//! Sweeps are **resumable**. Every completed calibration run and every
//! completed unit evaluation is checkpointed to a [`ledger::Ledger`] — an
//! append-only JSONL event log — keyed by a content hash of the
//! family/version/budget/seed that produced it. Re-running an interrupted
//! sweep against the same ledger serves the completed work from the
//! checkpoints without re-consuming any budget, and (because every
//! calibration is deterministic for a fixed seed and evaluation budget)
//! the resumed sweep's outcome is bit-for-bit identical to an
//! uninterrupted one. The ledger doubles as the subsystem's observability
//! surface: `--bin lodsel --status` summarizes any ledger file.
//!
//! Layout:
//!
//! - [`family`] — the [`family::VersionFamily`] abstraction a simulator
//!   family implements to become sweepable;
//! - [`multistart`] — the shared multi-start (best-of-N-restarts) helper
//!   used by every case study;
//! - [`sweep`] — the orchestrator: budget division, fan-out, checkpoint
//!   replay, outcome assembly;
//! - [`ledger`] — the JSONL run ledger and its content-hash keys;
//! - [`shard`] — sharded sweep execution: plan slicing, per-shard
//!   ledgers, and the deterministic merge back to one outcome;
//! - [`pareto`] — Pareto front and the ε-recommendation;
//! - [`families`] — [`family::VersionFamily`] implementations for the
//!   four case studies;
//! - [`report`] — plain-text table rendering (shared with the experiment
//!   binaries);
//! - [`trace`] — `--trace` JSONL parsing and the `--trace-report`
//!   per-phase summary.

#![warn(missing_docs)]

pub mod families;
pub mod family;
pub mod ledger;
pub mod multistart;
pub mod pareto;
pub mod report;
pub mod shard;
pub mod sweep;
pub mod trace;

/// One-stop imports for sweep drivers.
pub mod prelude {
    pub use crate::families::batch::BatchFamily;
    pub use crate::families::grid::GridFamily;
    pub use crate::families::mpi::MpiFamily;
    pub use crate::families::wf::WfFamily;
    pub use crate::family::{SweepUnit, UnitEval, VersionFamily};
    pub use crate::ledger::{
        ledger_status, FailureHistory, Ledger, LedgerEvent, LedgerStatus, RunRecord, UnitRecord,
    };
    pub use crate::multistart::{best_result, calibrate_best_of, pick_best, restart_seed};
    pub use crate::pareto::{
        pareto_front, recommend, render_recommendation, try_recommend, RecommendError,
        Recommendation, VersionScore,
    };
    pub use crate::report::{fnum, pct, Table};
    pub use crate::shard::{merge_shards, run_shard, run_sweep_sharded, shard_path, ShardError};
    pub use crate::sweep::{
        front_flags, run_sweep, sweep_fingerprint, try_run_sweep, BudgetPolicy, RunFailure,
        ShReport, ShRung, ShRungReport, ShSchedule, SweepConfig, SweepError, SweepOutcome,
        UnitOutcome, VersionOutcome,
    };
    pub use crate::trace::{parse_trace, render_report, TraceFile};
}
