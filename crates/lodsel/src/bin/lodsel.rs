//! Standalone level-of-detail selection driver.
//!
//! Sweeps one of the four simulator families — calibrating every version
//! with multi-start, scoring held-out accuracy against deterministic
//! simulation cost — and prints the per-version table plus the ranked
//! ε-recommendation. With `--ledger`, completed work is checkpointed so an
//! interrupted sweep resumes (bit-for-bit) instead of starting over;
//! `--status` summarizes a ledger without running anything. With
//! `--trace`, the sweep records a JSONL trace (spans, counters,
//! histograms); `--trace-report` summarizes such a file into a per-phase
//! time table without running anything.
//!
//! Output convention: result tables go to stdout, diagnostics go to
//! stderr (prefixed with the program name), machine-readable data goes
//! to `--ledger`/`--trace` files.

use lodsel::prelude::*;
use simcal::prelude::Budget;
use std::process::exit;
use std::sync::Arc;

const USAGE: &str = "\
usage: lodsel [options]
  --family <name>          family to sweep: wf, mpi, batch, or grid
                           (default: batch)
  --fast                   shrunken experiment grid for smoke runs
  --budget-evals <n>       per-run evaluation budget (default: 60)
  --total-evals <n>        instead: one shared budget divided fairly
  --budget sh:T:E[:M]      instead: successive halving — total budget T
                           split over log_E rungs, top 1/E promoted per
                           rung, scenario subsets growing to the full set
                           (M = minimum subset size, default 1)
  --restarts <n>           calibration restarts per unit (default: 2)
  --seed <n>               master seed (default: 42)
  --epsilon <f>            recommendation tolerance (default: 0.1)
  --max-fault-retries <n>  resume retries for failed runs (default: 2)
  --cache <dir>            persistent loss-cache directory (overrides the
                           CALIB_CACHE environment variable)
  --ledger <path>          JSONL run ledger to checkpoint to / resume from
  --status                 summarize the ledger (requires --ledger) and exit
  --status-json            like --status, but one machine-readable JSON line
  --trace <path>           record a JSONL trace of the sweep to <path>
  --trace-report <path>    summarize a recorded trace and exit
  --help                   print this help";

struct Opts {
    family: String,
    fast: bool,
    budget_evals: usize,
    total_evals: Option<usize>,
    policy: Option<BudgetPolicy>,
    restarts: usize,
    seed: u64,
    epsilon: f64,
    max_fault_retries: usize,
    cache: Option<String>,
    ledger: Option<String>,
    status: bool,
    status_json: bool,
    trace: Option<String>,
    trace_report: Option<String>,
}

fn die(msg: &str) -> ! {
    obs::diag!("{msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        family: "batch".into(),
        fast: false,
        budget_evals: 60,
        total_evals: None,
        policy: None,
        restarts: 2,
        seed: 42,
        epsilon: 0.1,
        max_fault_retries: 2,
        cache: None,
        ledger: None,
        status: false,
        status_json: false,
        trace: None,
        trace_report: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--family" => opts.family = value("--family"),
            "--fast" => opts.fast = true,
            "--budget-evals" => {
                opts.budget_evals = value("--budget-evals")
                    .parse()
                    .unwrap_or_else(|_| die("--budget-evals must be an integer"));
            }
            "--total-evals" => {
                opts.total_evals = Some(
                    value("--total-evals")
                        .parse()
                        .unwrap_or_else(|_| die("--total-evals must be an integer")),
                );
            }
            "--budget" => {
                let spec = value("--budget");
                opts.policy = Some(parse_budget_spec(&spec).unwrap_or_else(|e| die(&e)));
            }
            "--restarts" => {
                opts.restarts = value("--restarts")
                    .parse()
                    .unwrap_or_else(|_| die("--restarts must be an integer"));
            }
            "--seed" => {
                opts.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed must be an integer"));
            }
            "--epsilon" => {
                opts.epsilon = value("--epsilon")
                    .parse()
                    .unwrap_or_else(|_| die("--epsilon must be a number"));
            }
            "--max-fault-retries" => {
                opts.max_fault_retries = value("--max-fault-retries")
                    .parse()
                    .unwrap_or_else(|_| die("--max-fault-retries must be an integer"));
            }
            "--cache" => opts.cache = Some(value("--cache")),
            "--ledger" => opts.ledger = Some(value("--ledger")),
            "--status" => opts.status = true,
            "--status-json" => opts.status_json = true,
            "--trace" => opts.trace = Some(value("--trace")),
            "--trace-report" => opts.trace_report = Some(value("--trace-report")),
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }
    opts
}

/// Parse a `--budget` spec. Only the `sh:TOTAL:ETA[:MIN]` form exists
/// today (plain budgets keep their dedicated flags).
fn parse_budget_spec(spec: &str) -> Result<BudgetPolicy, String> {
    let rest = spec
        .strip_prefix("sh:")
        .ok_or_else(|| format!("--budget spec {spec} not understood (want sh:TOTAL:ETA[:MIN])"))?;
    let parts: Vec<&str> = rest.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(format!(
            "--budget spec {spec} not understood (want sh:TOTAL:ETA[:MIN])"
        ));
    }
    let field = |i: usize, name: &str| -> Result<usize, String> {
        parts[i]
            .parse()
            .map_err(|_| format!("--budget {name} must be an integer (got {})", parts[i]))
    };
    Ok(BudgetPolicy::SuccessiveHalving {
        total: field(0, "TOTAL")?,
        eta: field(1, "ETA")?,
        min_scenarios: if parts.len() == 3 {
            field(2, "MIN")?
        } else {
            1
        },
    })
}

fn print_status(path: &str, json: bool) {
    let events = match Ledger::read(path) {
        Ok(events) => events,
        Err(e) => die(&format!("cannot read ledger {path}: {e}")),
    };
    let status = ledger_status(&events);
    if json {
        let line = serde_json::to_string(&status)
            .unwrap_or_else(|e| die(&format!("cannot serialize status: {e}")));
        println!("{line}");
    } else {
        print!("{}", status.render_text(path));
    }
}

fn print_trace_report(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read trace {path}: {e}")));
    let trace =
        parse_trace(&text).unwrap_or_else(|e| die(&format!("cannot parse trace {path}: {e}")));
    print!("{}", render_report(&trace));
}

fn main() {
    let opts = parse_opts();
    if let Some(path) = &opts.trace_report {
        print_trace_report(path);
        return;
    }
    if opts.status || opts.status_json {
        match &opts.ledger {
            Some(path) => print_status(path, opts.status_json),
            None => die("--status requires --ledger"),
        }
        return;
    }

    let family: Box<dyn VersionFamily> = match opts.family.as_str() {
        "wf" => Box::new(WfFamily::paper(opts.fast, opts.seed)),
        "mpi" => Box::new(MpiFamily::paper(opts.fast, opts.seed)),
        "batch" => Box::new(BatchFamily::paper(opts.fast, opts.seed)),
        "grid" => Box::new(GridFamily::paper(opts.fast, opts.seed)),
        other => die(&format!(
            "unknown family {other} (want wf, mpi, batch, or grid)"
        )),
    };
    let budget = match (opts.policy, opts.total_evals) {
        (Some(policy), _) => policy,
        (None, Some(total)) => BudgetPolicy::TotalEvaluations { total },
        (None, None) => BudgetPolicy::PerRun {
            budget: Budget::Evaluations(opts.budget_evals),
        },
    };
    let config = SweepConfig {
        budget,
        restarts: opts.restarts,
        seed: opts.seed,
        epsilon: opts.epsilon,
        max_units: None,
        max_fault_retries: opts.max_fault_retries,
        cache: opts.cache.as_ref().map(std::path::PathBuf::from),
    };
    let ledger = opts.ledger.as_ref().map(|path| {
        Ledger::open(path).unwrap_or_else(|e| die(&format!("cannot open ledger {path}: {e}")))
    });
    let recorder = opts.trace.as_ref().map(|_| {
        let rec = Arc::new(obs::TraceRecorder::new());
        obs::install(rec.clone());
        rec
    });

    obs::diag!(
        "sweeping family {} ({} units, {} restarts)",
        family.name(),
        family.units().len(),
        config.restarts,
    );
    let outcome = try_run_sweep(family.as_ref(), &config, ledger.as_ref())
        .unwrap_or_else(|e| die(&format!("cannot run sweep: {e}")));

    if let (Some(path), Some(rec)) = (&opts.trace, &recorder) {
        obs::uninstall();
        match rec.write_jsonl(std::path::Path::new(path)) {
            Ok(()) => obs::diag!("wrote trace {path}"),
            Err(e) => obs::diag!("failed to write trace {path}: {e}"),
        }
    }

    // The rung ladder first: it explains where the budget went before the
    // per-version table shows what it bought.
    if let Some(sh) = &outcome.sh {
        let mut rungs = Table::new(&[
            "rung",
            "entrants",
            "run budget",
            "scenarios",
            "promoted",
            "failed",
        ]);
        for r in &sh.rungs {
            rungs.row(vec![
                r.rung.to_string(),
                r.entrants.to_string(),
                r.budget.to_string(),
                if r.scenario_denom <= 1 {
                    "full".to_string()
                } else {
                    format!("1/{}", r.scenario_denom)
                },
                r.promoted.to_string(),
                r.failed.to_string(),
            ]);
        }
        println!(
            "successive halving (eta {}, total {}, planned {} evaluations):",
            sh.eta, sh.total, sh.planned_evaluations
        );
        println!("{}", rungs.render());
    }

    let front = front_flags(&outcome.versions);
    let chosen = outcome
        .recommendation
        .as_ref()
        .map(|r| r.chosen.clone())
        .unwrap_or_default();
    let mut table = Table::new(&[
        "version",
        "params",
        "test err (%)",
        "sim work",
        "wall (s)",
        "pareto",
        "pick",
    ]);
    for (v, on_front) in outcome.versions.iter().zip(&front) {
        table.row(vec![
            v.label.clone(),
            v.dim.to_string(),
            pct(v.test_error),
            v.work_units.to_string(),
            format!("{:.2}", v.wall_secs),
            if *on_front { "*" } else { "" }.to_string(),
            if v.label == chosen { "<==" } else { "" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    // Only degraded sweeps print the failure table, so fault-free stdout
    // stays byte-identical to what it was before failures existed.
    if !outcome.failures.is_empty() {
        let mut failed = Table::new(&["version", "unit", "restart", "stage", "attempt", "reason"]);
        for f in &outcome.failures {
            failed.row(vec![
                f.version.clone(),
                f.unit.clone(),
                f.restart.to_string(),
                f.stage.clone(),
                format!("{}{}", f.attempt, if f.retriable { "" } else { " (final)" }),
                f.reason.clone(),
            ]);
        }
        println!("failed runs ({}):", outcome.failures.len());
        println!("{}", failed.render());
    }
    match &outcome.recommendation {
        Some(rec) => print!("{}", render_recommendation(rec)),
        None if !outcome.complete => println!("sweep incomplete: no recommendation"),
        None => println!("no recommendation: every version failed or none has a finite test error"),
    }
}
