//! Plain-text table rendering and TSV output for the experiment binaries.
//!
//! Every experiment binary prints an aligned table to stdout (mirroring
//! the corresponding paper table/figure) and can optionally write the raw
//! rows as TSV for plotting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Write the table as tab-separated values.
    pub fn write_tsv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut s = self.header.join("\t");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join("\t"));
            s.push('\n');
        }
        fs::write(path, s)
    }
}

/// Format a float with a sensible number of digits for a report cell.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a fraction as a percentage cell.
pub fn pct(v: f64) -> String {
    fnum(v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("2.5").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = std::env::temp_dir().join("lodcal_test_table.tsv");
        t.write_tsv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\ty\n1\t2\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(1234.56), "1235");
        assert_eq!(fnum(56.78), "56.8");
        assert_eq!(fnum(4.24159), "4.24");
        assert_eq!(pct(0.2), "20.0");
    }
}
