//! Oracle tests: the hidden ground truth must be strictly richer than
//! every candidate version (so no candidate reproduces it exactly), and
//! when every candidate is handed the *true* hidden parameter values, the
//! richest version must predict the truth best — the construction the
//! paper's methodology relies on in each case study.

use gridsim::prelude::*;

/// The true-parameter calibration for `version` (hit-ratio versions get a
/// mid-range ratio, since the hidden system has no such parameter).
fn true_calibration(
    version: GridVersion,
    cfg: &GridEmulatorConfig,
) -> simcal::prelude::Calibration {
    let space = version.parameter_space();
    let mut pairs: Vec<(&str, f64)> = vec![
        ("core_speed", cfg.core_speed),
        ("wan_bandwidth", cfg.wan_bandwidth),
        ("wan_latency", cfg.wan_latency),
        ("disk_bandwidth", cfg.disk_bandwidth),
    ];
    match version.cache {
        CacheDetail::Lru => pairs.push(("cache_mb", cfg.cache_mb)),
        CacheDetail::HitRatio => pairs.push(("hit_ratio", 0.5)),
    }
    if version.transfer == TransferDetail::PerFile {
        pairs.push(("transfer_startup", cfg.transfer_startup));
    }
    if version.broker == BrokerDetail::PerJob {
        pairs.push(("broker_overhead", cfg.broker_overhead));
    }
    space.calibration_from_pairs(&pairs)
}

/// Mean relative makespan error of `version` (at the true parameters)
/// over the scenario set.
fn makespan_error(
    version: GridVersion,
    scenarios: &[GridScenario],
    cfg: &GridEmulatorConfig,
) -> f64 {
    let sim = GridSimulator::new(version);
    let calib = true_calibration(version, cfg);
    let errs: Vec<f64> = scenarios
        .iter()
        .map(|s| {
            let out = sim.simulate(&s.workload, &calib);
            ((out.makespan - s.makespan) / s.makespan).abs()
        })
        .collect();
    numeric::mean(&errs)
}

#[test]
fn no_candidate_reproduces_the_ground_truth() {
    let cfg = GridEmulatorConfig::default();
    let scenarios = dataset(&default_grid(3), &cfg, 3, 17);
    for version in GridVersion::all() {
        let err = makespan_error(version, &scenarios, &cfg);
        assert!(
            err > 1e-6,
            "{} reproduces the hidden system exactly (err {err}): \
             the ground truth must be strictly richer than every candidate",
            version.label()
        );
    }
}

#[test]
fn richest_version_is_closest_to_the_truth() {
    let cfg = GridEmulatorConfig::default();
    let scenarios = dataset(&default_grid(3), &cfg, 3, 17);
    let richest = GridVersion::highest_detail();
    let richest_err = makespan_error(richest, &scenarios, &cfg);
    for version in GridVersion::all() {
        if version == richest {
            continue;
        }
        let err = makespan_error(version, &scenarios, &cfg);
        assert!(
            richest_err <= err,
            "at the true parameters the richest version ({} err {richest_err}) must beat {} (err {err})",
            richest.label(),
            version.label()
        );
    }
}
