//! Synthetic federated-grid workloads: a file catalog distributed over
//! sites plus a stream of analysis jobs reading (mostly popular) files.
//!
//! The generator reproduces the workload shape the HEP data-grid models
//! are calibrated against: datasets concentrated at a few "experiment"
//! sites, Zipf-like file popularity (so caches matter), and job input
//! sizes that drive both the WAN transfer volume and the compute time.

use numeric::{lognormal, rng_from_seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How to generate one workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Number of sites in the federation.
    pub sites: usize,
    /// Compute slots per site.
    pub slots_per_site: u32,
    /// Files in the catalog.
    pub files: usize,
    /// Jobs submitted.
    pub jobs: usize,
    /// Mean file size in MB (lognormal).
    pub mean_file_mb: f64,
    /// Files read per job.
    pub reads_per_job: usize,
    /// Mean job interarrival time (s), exponential.
    pub mean_interarrival: f64,
    /// Compute work per MB of input (ops/MB).
    pub work_per_mb: f64,
    /// Popularity skew: larger values concentrate reads (and file homes)
    /// on fewer files (and sites); `0.0` is uniform.
    pub skew: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for GridSpec {
    fn default() -> Self {
        Self {
            sites: 4,
            slots_per_site: 8,
            files: 96,
            jobs: 60,
            mean_file_mb: 80.0,
            reads_per_job: 3,
            mean_interarrival: 6.0,
            work_per_mb: 1.5,
            skew: 1.2,
            seed: 1,
        }
    }
}

/// One catalog file: its size and the site whose storage element holds
/// the authoritative replica.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridFile {
    /// Size in MB.
    pub size_mb: f64,
    /// Home site index.
    pub home: usize,
}

/// One analysis job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridJob {
    /// Submission time (s).
    pub submit_time: f64,
    /// Catalog indices of the files this job reads.
    pub reads: Vec<usize>,
    /// Compute work (ops), proportional to the input volume.
    pub work: f64,
}

/// A generated workload: the catalog plus the job stream, with the
/// federation shape it was generated for.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridWorkload {
    /// Number of sites.
    pub sites: usize,
    /// Compute slots per site.
    pub slots_per_site: u32,
    /// The file catalog.
    pub files: Vec<GridFile>,
    /// Jobs, sorted by submission time.
    pub jobs: Vec<GridJob>,
}

impl GridWorkload {
    /// Total MB a job reads.
    pub fn input_mb(&self, job: &GridJob) -> f64 {
        job.reads.iter().map(|&f| self.files[f].size_mb).sum()
    }
}

/// Skewed index draw: maps a uniform `u` in `[0,1)` to `[0, n)` with mass
/// concentrated at low indices for positive `skew`.
fn skewed_index(u: f64, n: usize, skew: f64) -> usize {
    let idx = (u.powf(1.0 + skew) * n as f64) as usize;
    idx.min(n - 1)
}

/// Deterministically generate the workload a spec describes.
///
/// # Panics
/// Panics if the spec has no sites, files, jobs, or reads per job.
pub fn generate(spec: &GridSpec) -> GridWorkload {
    assert!(
        spec.sites > 0 && spec.files > 0 && spec.jobs > 0 && spec.reads_per_job > 0,
        "grid spec must have sites, files, jobs, and reads"
    );
    assert!(spec.slots_per_site > 0, "sites need compute slots");
    let mut rng = rng_from_seed(spec.seed ^ 0x9e37_79b9_7f4a_7c15);

    // Catalog: homes concentrated at low-index ("experiment") sites,
    // sizes lognormal around the mean.
    let sigma = 0.6;
    let files: Vec<GridFile> = (0..spec.files)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            let home = skewed_index(u, spec.sites, spec.skew);
            let size_mb = spec.mean_file_mb * lognormal(&mut rng, -sigma * sigma / 2.0, sigma);
            GridFile { size_mb, home }
        })
        .collect();

    // Jobs: Poisson arrivals, Zipf-like file popularity.
    let mut t = 0.0;
    let jobs: Vec<GridJob> = (0..spec.jobs)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -spec.mean_interarrival * (1.0 - u).ln();
            let mut reads = Vec::with_capacity(spec.reads_per_job);
            while reads.len() < spec.reads_per_job {
                let u: f64 = rng.gen_range(0.0..1.0);
                let f = skewed_index(u, spec.files, spec.skew);
                if !reads.contains(&f) {
                    reads.push(f);
                }
            }
            let input_mb: f64 = reads.iter().map(|&f| files[f].size_mb).sum();
            GridJob {
                submit_time: t,
                reads,
                work: input_mb * spec.work_per_mb,
            }
        })
        .collect();

    GridWorkload {
        sites: spec.sites,
        slots_per_site: spec.slots_per_site,
        files,
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = GridSpec::default();
        assert_eq!(generate(&spec), generate(&spec));
        let other = GridSpec {
            seed: 2,
            ..GridSpec::default()
        };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn shapes_match_the_spec() {
        let spec = GridSpec {
            files: 40,
            jobs: 25,
            reads_per_job: 4,
            ..GridSpec::default()
        };
        let w = generate(&spec);
        assert_eq!(w.files.len(), 40);
        assert_eq!(w.jobs.len(), 25);
        for j in &w.jobs {
            assert_eq!(j.reads.len(), 4);
            assert!(j.work > 0.0);
            let mut sorted = j.reads.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "reads must be distinct");
        }
        let mut prev = 0.0;
        for j in &w.jobs {
            assert!(j.submit_time >= prev, "arrivals must be ordered");
            prev = j.submit_time;
        }
    }

    #[test]
    fn skew_concentrates_homes_on_low_sites() {
        let spec = GridSpec {
            files: 400,
            skew: 2.0,
            ..GridSpec::default()
        };
        let w = generate(&spec);
        let at_site0 = w.files.iter().filter(|f| f.home == 0).count();
        assert!(
            at_site0 > 400 / spec.sites,
            "skewed homes: {at_site0} of 400 at site 0"
        );
        for f in &w.files {
            assert!(f.home < spec.sites);
            assert!(f.size_mb > 0.0);
        }
    }

    #[test]
    fn input_mb_sums_read_sizes() {
        let w = generate(&GridSpec::default());
        let j = &w.jobs[0];
        let expected: f64 = j.reads.iter().map(|&f| w.files[f].size_mb).sum();
        assert_eq!(w.input_mb(j), expected);
    }
}
