//! The federated data-grid simulator: jobs brokered to sites, inputs
//! staged from storage elements through site caches and WAN links, then
//! computed on site slots — with configurable levels of detail for the
//! transfer, cache, and broker models.
//!
//! All sizes are in MB and all rates in MB/s; times are seconds.

use crate::versions::{BrokerDetail, CacheDetail, GridVersion, TransferDetail};
use crate::workload::GridWorkload;
use dessim::{ActivityKind, Engine, LinkId, Platform};
use numeric::{lognormal, rng_from_seed};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of simulating one workload execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridOutput {
    /// Time the last job finished (s).
    pub makespan: f64,
    /// Per-job turnaround times: completion minus submission (s).
    pub turnarounds: Vec<f64>,
    /// Deterministic simulation-cost counter: kernel events processed
    /// plus explicit cache-model operations. Never wall-clock.
    pub sim_events: u64,
}

/// Fully-resolved model (one value per knob).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ResolvedGrid {
    /// Slot speed: work units per second.
    pub core_speed: f64,
    /// Per-site WAN access-link bandwidth (MB/s).
    pub wan_bandwidth: f64,
    /// End-to-end WAN latency budget per remote transfer (s).
    pub wan_latency: f64,
    /// Storage-element read bandwidth (MB/s).
    pub disk_bandwidth: f64,
    /// Analytic cache hit ratio (hit-ratio cache versions only).
    pub hit_ratio: f64,
    /// Explicit cache capacity in MB (LRU versions only).
    pub cache_mb: f64,
    /// Per-file middleware startup cost (per-file transfer versions only).
    pub transfer_startup: f64,
    /// Serial broker decision overhead (per-job broker versions only).
    pub broker_overhead: f64,
    /// Ground-truth-only lognormal sigma on job runtimes.
    pub noise_sigma: f64,
    /// Ground-truth-only noise seed.
    pub noise_seed: u64,
    /// Ground-truth-only extra bytes per WAN transfer (TCP ramp-up, MB).
    pub ramp_mb: f64,
}

/// Map a calibration in `version`'s space to a resolved model.
pub(crate) fn resolve(version: GridVersion, calib: &simcal::prelude::Calibration) -> ResolvedGrid {
    let space = version.parameter_space();
    let get = |name: &str| space.value(calib, name);
    ResolvedGrid {
        core_speed: get("core_speed"),
        wan_bandwidth: get("wan_bandwidth"),
        wan_latency: get("wan_latency"),
        disk_bandwidth: get("disk_bandwidth"),
        hit_ratio: match version.cache {
            CacheDetail::HitRatio => get("hit_ratio"),
            CacheDetail::Lru => 0.0,
        },
        cache_mb: match version.cache {
            CacheDetail::Lru => get("cache_mb"),
            CacheDetail::HitRatio => 0.0,
        },
        transfer_startup: match version.transfer {
            TransferDetail::PerFile => get("transfer_startup"),
            TransferDetail::FlowLevel => 0.0,
        },
        broker_overhead: match version.broker {
            BrokerDetail::PerJob => get("broker_overhead"),
            BrokerDetail::Bulk => 0.0,
        },
        noise_sigma: 0.0,
        noise_seed: 0,
        ramp_mb: 0.0,
    }
}

/// A calibratable data-grid simulator at one level of detail.
#[derive(Clone, Copy, Debug)]
pub struct GridSimulator {
    /// The level-of-detail configuration.
    pub version: GridVersion,
}

impl GridSimulator {
    /// A simulator at `version`'s level of detail.
    pub fn new(version: GridVersion) -> Self {
        Self { version }
    }

    /// Simulate `workload` under `calibration`.
    pub fn simulate(
        &self,
        workload: &GridWorkload,
        calibration: &simcal::prelude::Calibration,
    ) -> GridOutput {
        execute(workload, self.version, &resolve(self.version, calibration))
    }
}

/// Per-site explicit LRU cache over catalog file identities.
///
/// Small catalogs make linear scans cheaper than hashing here, and —
/// more importantly — keep every operation deterministic. Each logical
/// cache operation (probe, insert, evict) increments `ops`, the
/// deterministic surcharge that makes the explicit cache *cost more to
/// simulate* than the analytic one, as the real middleware models do.
struct LruCache {
    /// Most-recently-used last: (catalog index, size MB).
    entries: VecDeque<(usize, f64)>,
    used_mb: f64,
    capacity_mb: f64,
    ops: u64,
}

impl LruCache {
    fn new(capacity_mb: f64) -> Self {
        Self {
            entries: VecDeque::new(),
            used_mb: 0.0,
            capacity_mb,
            ops: 0,
        }
    }

    /// Probe for `file`; a hit refreshes its recency.
    fn probe(&mut self, file: usize) -> bool {
        self.ops += 1;
        if let Some(pos) = self.entries.iter().position(|&(f, _)| f == file) {
            let e = self.entries.remove(pos).expect("present");
            self.entries.push_back(e);
            true
        } else {
            false
        }
    }

    /// Insert `file` after a miss, evicting LRU entries until it fits.
    /// Files larger than the whole cache are not retained.
    fn insert(&mut self, file: usize, size_mb: f64) {
        self.ops += 1;
        if size_mb > self.capacity_mb {
            return;
        }
        while self.used_mb + size_mb > self.capacity_mb {
            let (_, evicted) = self
                .entries
                .pop_front()
                .expect("over-full cache has entries");
            self.used_mb -= evicted;
            self.ops += 1;
        }
        self.entries.push_back((file, size_mb));
        self.used_mb += size_mb;
    }

    fn contains(&self, file: usize) -> bool {
        self.entries.iter().any(|&(f, _)| f == file)
    }
}

/// Event-driven grid execution over a [`dessim::Engine`].
///
/// Tag scheme (`n` = job count): `[0, n)` compute completion of job
/// `tag`; `[n, 2n)` arrival of job `tag - n`; `[2n, 3n)` broker decision
/// for job `tag - 2n`; `3n + j` completion of one of job `j`'s input
/// transfers (jobs track their own pending-transfer counts, so several
/// activities may share a tag).
pub(crate) fn execute(
    workload: &GridWorkload,
    version: GridVersion,
    model: &ResolvedGrid,
) -> GridOutput {
    let n = workload.jobs.len();
    if n == 0 {
        return GridOutput {
            makespan: 0.0,
            turnarounds: Vec::new(),
            sim_events: 0,
        };
    }

    // Pre-drawn runtime noise (ground-truth emulator only).
    let noise: Vec<f64> = if model.noise_sigma > 0.0 {
        let mut rng = rng_from_seed(model.noise_seed);
        let s = model.noise_sigma;
        (0..n)
            .map(|_| lognormal(&mut rng, -s * s / 2.0, s))
            .collect()
    } else {
        vec![1.0; n]
    };

    // Platform: one WAN access link per site plus, for per-file
    // transfers, a shared "grid middleware" link whose latency charges
    // the per-file startup once per flow (its bandwidth is effectively
    // infinite so it never throttles).
    let mut platform = Platform::new();
    let access: Vec<LinkId> = (0..workload.sites)
        .map(|_| platform.add_link(model.wan_bandwidth, model.wan_latency / 2.0))
        .collect();
    let middleware = match version.transfer {
        TransferDetail::PerFile => Some(platform.add_link(1e12, model.transfer_startup)),
        TransferDetail::FlowLevel => None,
    };

    let mut sim = Sim {
        workload,
        version,
        model,
        noise,
        access,
        middleware,
        engine: Engine::new(platform),
        free_slots: vec![workload.slots_per_site; workload.sites],
        site_queue: vec![VecDeque::new(); workload.sites],
        caches: match version.cache {
            CacheDetail::Lru => (0..workload.sites)
                .map(|_| LruCache::new(model.cache_mb))
                .collect(),
            CacheDetail::HitRatio => Vec::new(),
        },
        exec_site: vec![usize::MAX; n],
        pending_transfers: vec![0; n],
        end_time: vec![f64::NAN; n],
        makespan: 0.0,
        completed: 0,
        broker_queue: VecDeque::new(),
        broker_busy: false,
    };
    sim.run();

    let cache_ops: u64 = sim.caches.iter().map(|c| c.ops).sum();
    let turnarounds: Vec<f64> = workload
        .jobs
        .iter()
        .zip(&sim.end_time)
        .map(|(j, &e)| {
            debug_assert!(e.is_finite(), "every job must have finished");
            e - j.submit_time
        })
        .collect();
    GridOutput {
        makespan: sim.makespan,
        turnarounds,
        sim_events: sim.engine.events_processed() + cache_ops,
    }
}

/// Grid state machine over a [`dessim::Engine`] event queue.
struct Sim<'a> {
    workload: &'a GridWorkload,
    version: GridVersion,
    model: &'a ResolvedGrid,
    noise: Vec<f64>,
    access: Vec<LinkId>,
    middleware: Option<LinkId>,
    engine: Engine,
    free_slots: Vec<u32>,
    /// Per-site FIFO queue of placed jobs waiting for a slot.
    site_queue: Vec<VecDeque<usize>>,
    /// Per-site explicit caches (LRU versions only).
    caches: Vec<LruCache>,
    exec_site: Vec<usize>,
    pending_transfers: Vec<u32>,
    end_time: Vec<f64>,
    makespan: f64,
    completed: usize,
    /// Jobs awaiting a broker decision (per-job broker only).
    broker_queue: VecDeque<usize>,
    broker_busy: bool,
}

impl Sim<'_> {
    /// Input bytes of job `j` the broker judges local to `site`.
    ///
    /// The bulk broker sees static file homes only; the per-job broker
    /// additionally credits dynamic site state — explicit cache contents
    /// under the LRU model, the expected locally-served fraction under
    /// the analytic model.
    fn local_mb(&self, j: usize, site: usize, dynamic: bool) -> f64 {
        let mut local = 0.0;
        let mut remote = 0.0;
        for &f in &self.workload.jobs[j].reads {
            let file = &self.workload.files[f];
            let cached =
                dynamic && self.version.cache == CacheDetail::Lru && self.caches[site].contains(f);
            if file.home == site || cached {
                local += file.size_mb;
            } else {
                remote += file.size_mb;
            }
        }
        if dynamic && self.version.cache == CacheDetail::HitRatio {
            local += self.model.hit_ratio * remote;
        }
        local
    }

    /// Pick the execution site for job `j` (most local input bytes, ties
    /// to the lowest site index).
    fn choose_site(&self, j: usize, dynamic: bool) -> usize {
        let mut best = 0;
        let mut best_mb = f64::NEG_INFINITY;
        for site in 0..self.workload.sites {
            let mb = self.local_mb(j, site, dynamic);
            if mb > best_mb {
                best = site;
                best_mb = mb;
            }
        }
        best
    }

    /// Place job `j` on `site`: queue it, and start it if a slot is free.
    fn place(&mut self, j: usize, site: usize, now: f64) {
        self.exec_site[j] = site;
        self.site_queue[site].push_back(j);
        self.try_start(site, now);
    }

    /// Start queued jobs on `site` while slots remain.
    fn try_start(&mut self, site: usize, now: f64) {
        while self.free_slots[site] > 0 {
            let Some(j) = self.site_queue[site].pop_front() else {
                return;
            };
            self.free_slots[site] -= 1;
            self.stage(j, now);
        }
    }

    /// Stage job `j`'s inputs on its execution site: resolve cache hits,
    /// launch WAN transfers for the misses, or go straight to compute.
    fn stage(&mut self, j: usize, now: f64) {
        let site = self.exec_site[j];
        let workload = self.workload;
        let n = workload.jobs.len() as u64;
        // Catalog indices (with sizes) that must come over the WAN.
        let mut misses: Vec<(usize, f64)> = Vec::new();
        for &f in &workload.jobs[j].reads {
            let file = workload.files[f];
            if file.home == site {
                continue;
            }
            match self.version.cache {
                CacheDetail::Lru => {
                    if !self.caches[site].probe(f) {
                        self.caches[site].insert(f, file.size_mb);
                        misses.push((f, file.size_mb));
                    }
                }
                CacheDetail::HitRatio => {
                    // Analytic cache: a fixed fraction of every remote
                    // read is served locally.
                    let mb = file.size_mb * (1.0 - self.model.hit_ratio);
                    if mb > 0.0 {
                        misses.push((f, mb));
                    }
                }
            }
        }

        if misses.is_empty() {
            self.start_compute(j, now);
            return;
        }
        match self.version.transfer {
            TransferDetail::PerFile => {
                let middleware = self.middleware.expect("per-file versions have middleware");
                self.pending_transfers[j] = misses.len() as u32;
                for (f, mb) in misses {
                    let home = self.workload.files[f].home;
                    let route = vec![middleware, self.access[home], self.access[site]];
                    self.engine.add_activity(
                        ActivityKind::flow(route, mb + self.model.ramp_mb),
                        3 * n + j as u64,
                    );
                }
            }
            TransferDetail::FlowLevel => {
                // One aggregate flow into the execution site; sources are
                // deliberately not modelled at this level of detail.
                let total: f64 = misses.iter().map(|&(_, mb)| mb).sum();
                self.pending_transfers[j] = 1;
                self.engine.add_activity(
                    ActivityKind::flow(vec![self.access[site]], total),
                    3 * n + j as u64,
                );
            }
        }
    }

    /// All inputs staged: run the compute phase as one absolute timer.
    fn start_compute(&mut self, j: usize, now: f64) {
        let job = &self.workload.jobs[j];
        let input_mb = self.workload.input_mb(job);
        let runtime = (job.work / self.model.core_speed + input_mb / self.model.disk_bandwidth)
            * self.noise[j];
        let end = now + runtime;
        self.end_time[j] = end;
        self.makespan = self.makespan.max(end);
        self.engine
            .add_activity(ActivityKind::timer_at(end), j as u64);
    }

    /// Broker intake for job `j` at arrival time `now`.
    fn arrive(&mut self, j: usize, now: f64) {
        let n = self.workload.jobs.len() as u64;
        match self.version.broker {
            BrokerDetail::Bulk => {
                let site = self.choose_site(j, false);
                self.place(j, site, now);
            }
            BrokerDetail::PerJob => {
                if self.broker_busy {
                    self.broker_queue.push_back(j);
                } else {
                    self.broker_busy = true;
                    self.engine.add_activity(
                        ActivityKind::timer_at(now + self.model.broker_overhead),
                        2 * n + j as u64,
                    );
                }
            }
        }
    }

    /// Per-job broker decision completed for job `j`.
    fn broker_done(&mut self, j: usize, now: f64) {
        let n = self.workload.jobs.len() as u64;
        let site = self.choose_site(j, true);
        self.place(j, site, now);
        if let Some(next) = self.broker_queue.pop_front() {
            self.engine.add_activity(
                ActivityKind::timer_at(now + self.model.broker_overhead),
                2 * n + next as u64,
            );
        } else {
            self.broker_busy = false;
        }
    }

    fn run(&mut self) {
        let n = self.workload.jobs.len();
        // All arrivals enter the engine as one batch of absolute timers.
        let arrivals: Vec<(ActivityKind, u64)> = self
            .workload
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| (ActivityKind::timer_at(job.submit_time), (n + j) as u64))
            .collect();
        self.engine.add_activities(arrivals);

        while self.completed < n {
            let c = self
                .engine
                .step()
                .unwrap_or_else(|| panic!("no events but {} jobs incomplete", n - self.completed));
            let now = c.time;
            let tag = c.tag as usize;
            if tag < n {
                // Compute completion: free the slot, admit the next job.
                let site = self.exec_site[tag];
                self.free_slots[site] += 1;
                self.completed += 1;
                self.try_start(site, now);
            } else if tag < 2 * n {
                self.arrive(tag - n, now);
            } else if tag < 3 * n {
                self.broker_done(tag - 2 * n, now);
            } else {
                let j = tag - 3 * n;
                self.pending_transfers[j] -= 1;
                if self.pending_transfers[j] == 0 {
                    self.start_compute(j, now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, GridSpec};

    fn resolved() -> ResolvedGrid {
        ResolvedGrid {
            core_speed: 1.0,
            wan_bandwidth: 10.0,
            wan_latency: 0.2,
            disk_bandwidth: 100.0,
            hit_ratio: 0.0,
            cache_mb: 1024.0,
            transfer_startup: 1.0,
            broker_overhead: 0.5,
            noise_sigma: 0.0,
            noise_seed: 0,
            ramp_mb: 0.0,
        }
    }

    fn workload() -> GridWorkload {
        generate(&GridSpec {
            jobs: 30,
            files: 48,
            ..GridSpec::default()
        })
    }

    #[test]
    fn every_version_completes_every_job() {
        let w = workload();
        for v in GridVersion::all() {
            let out = execute(&w, v, &resolved());
            assert_eq!(out.turnarounds.len(), w.jobs.len(), "{}", v.label());
            assert!(out.makespan > 0.0);
            assert!(out.turnarounds.iter().all(|t| *t > 0.0));
            assert!(out.sim_events > 0);
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let w = workload();
        for v in GridVersion::all() {
            assert_eq!(
                execute(&w, v, &resolved()),
                execute(&w, v, &resolved()),
                "{}",
                v.label()
            );
        }
    }

    #[test]
    fn versions_differ_in_predictions_and_cost() {
        let w = workload();
        let low = execute(&w, GridVersion::lowest_detail(), &resolved());
        let high = execute(&w, GridVersion::highest_detail(), &resolved());
        assert_ne!(low.makespan, high.makespan);
        assert!(
            high.sim_events > low.sim_events,
            "higher detail must cost more: {} vs {}",
            high.sim_events,
            low.sim_events
        );
    }

    #[test]
    fn perfect_hit_ratio_removes_wan_time() {
        let w = workload();
        let v = GridVersion::lowest_detail();
        let cold = execute(&w, v, &resolved());
        let mut warm_model = resolved();
        warm_model.hit_ratio = 1.0;
        let warm = execute(&w, v, &warm_model);
        assert!(
            warm.makespan < cold.makespan,
            "warm {} vs cold {}",
            warm.makespan,
            cold.makespan
        );
    }

    #[test]
    fn bigger_lru_cache_never_hurts_much_and_usually_helps() {
        let w = generate(&GridSpec {
            jobs: 60,
            files: 32,
            skew: 2.0,
            ..GridSpec::default()
        });
        let v = GridVersion {
            cache: CacheDetail::Lru,
            ..GridVersion::lowest_detail()
        };
        let mut small = resolved();
        small.cache_mb = 1.0; // effectively no cache
        let mut big = resolved();
        big.cache_mb = 1e6; // everything fits
        let out_small = execute(&w, v, &small);
        let out_big = execute(&w, v, &big);
        assert!(
            out_big.makespan < out_small.makespan,
            "big cache {} vs none {}",
            out_big.makespan,
            out_small.makespan
        );
    }

    #[test]
    fn per_file_startup_slows_transfers_down() {
        let w = workload();
        let flow = execute(
            &w,
            GridVersion {
                transfer: TransferDetail::FlowLevel,
                ..GridVersion::lowest_detail()
            },
            &resolved(),
        );
        let mut expensive = resolved();
        expensive.transfer_startup = 30.0;
        let perfile = execute(
            &w,
            GridVersion {
                transfer: TransferDetail::PerFile,
                ..GridVersion::lowest_detail()
            },
            &expensive,
        );
        assert!(
            perfile.makespan > flow.makespan,
            "per-file {} vs flow {}",
            perfile.makespan,
            flow.makespan
        );
    }

    #[test]
    fn broker_overhead_serialises_placements() {
        let w = workload();
        let bulk = execute(&w, GridVersion::lowest_detail(), &resolved());
        let mut slow = resolved();
        slow.broker_overhead = 20.0;
        let perjob = execute(
            &w,
            GridVersion {
                broker: BrokerDetail::PerJob,
                ..GridVersion::lowest_detail()
            },
            &slow,
        );
        assert!(
            perjob.makespan > bulk.makespan,
            "per-job {} vs bulk {}",
            perjob.makespan,
            bulk.makespan
        );
    }

    #[test]
    fn simulator_api_is_deterministic() {
        let w = workload();
        let version = GridVersion::highest_detail();
        let space = version.parameter_space();
        let calib = space.denormalize(&vec![0.5; space.dim()]);
        let sim = GridSimulator::new(version);
        assert_eq!(sim.simulate(&w, &calib), sim.simulate(&w, &calib));
    }

    #[test]
    fn lru_cache_evicts_in_recency_order() {
        let mut c = LruCache::new(10.0);
        c.insert(0, 4.0);
        c.insert(1, 4.0);
        assert!(c.probe(0)); // 0 is now most recent
        c.insert(2, 4.0); // evicts 1
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert!(c.ops > 0);
    }

    #[test]
    fn oversized_file_is_not_retained() {
        let mut c = LruCache::new(10.0);
        c.insert(0, 50.0);
        assert!(!c.contains(0));
        assert_eq!(c.used_mb, 0.0);
    }
}
