//! The 8 level-of-detail versions of the data-grid case study.
//!
//! All versions execute the same federated workload (jobs brokered to
//! sites, reading files from storage elements, remote files fetched over
//! WAN links); what varies is how much of the grid middleware's behaviour
//! is modelled, along the three axes the HEP infrastructure models of
//! Horzela et al. and CGSim expose:
//!
//! - **transfer detail** — every remote file as its own kernel flow
//!   (max-min bandwidth sharing on the source *and* destination access
//!   links) versus one aggregate flow-level transfer per job on the
//!   destination link only;
//! - **cache detail** — an explicit per-site LRU over file identities
//!   with a calibratable capacity versus an analytic hit-ratio model;
//! - **broker detail** — a serial per-job broker with a decision
//!   overhead and a dynamic (cache-aware) placement policy versus
//!   instant bulk placement from static file homes.
//!
//! `2 x 2 x 2 = 8` versions, in the spirit of the paper's Tables 2 and 4.

use serde::{Deserialize, Serialize};
use simcal::prelude::{ParamKind, ParameterSpace};

/// WAN-transfer level of detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferDetail {
    /// One flow-level transfer per job: all remote bytes arrive through
    /// the destination site's access link as a single flow, sources are
    /// not modelled, and there is no per-file startup cost.
    FlowLevel,
    /// One kernel flow per remote file, routed over the source and
    /// destination access links (so a hot data site's uplink is a real
    /// bottleneck), each paying a calibratable middleware startup.
    PerFile,
}

/// Site-cache level of detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheDetail {
    /// Analytic cache: a calibratable fraction of every remote read is
    /// served locally; no per-file state is kept.
    HitRatio,
    /// Explicit per-site LRU over file identities with a calibratable
    /// byte capacity; hits depend on the actual access sequence.
    Lru,
}

/// Job-broker level of detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrokerDetail {
    /// All arrivals are placed instantly (no broker service time) at the
    /// site holding the most of the job's input bytes, judged from
    /// static file homes only.
    Bulk,
    /// A serial broker places one job at a time, each decision paying a
    /// calibratable overhead, and judges locality from the dynamic site
    /// state (storage elements plus current cache contents).
    PerJob,
}

/// One of the 8 grid-simulator versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridVersion {
    /// WAN-transfer level of detail.
    pub transfer: TransferDetail,
    /// Site-cache level of detail.
    pub cache: CacheDetail,
    /// Job-broker level of detail.
    pub broker: BrokerDetail,
}

impl GridVersion {
    /// All 8 versions, transfer-major (flow-level first, then per-file).
    pub fn all() -> Vec<GridVersion> {
        let mut v = Vec::with_capacity(8);
        for transfer in [TransferDetail::FlowLevel, TransferDetail::PerFile] {
            for cache in [CacheDetail::HitRatio, CacheDetail::Lru] {
                for broker in [BrokerDetail::Bulk, BrokerDetail::PerJob] {
                    v.push(GridVersion {
                        transfer,
                        cache,
                        broker,
                    });
                }
            }
        }
        v
    }

    /// The highest level of detail (per-file + LRU + per-job broker) —
    /// 7 parameters.
    pub fn highest_detail() -> GridVersion {
        GridVersion {
            transfer: TransferDetail::PerFile,
            cache: CacheDetail::Lru,
            broker: BrokerDetail::PerJob,
        }
    }

    /// The lowest level of detail (flow-level + hit-ratio + bulk) —
    /// 5 parameters.
    pub fn lowest_detail() -> GridVersion {
        GridVersion {
            transfer: TransferDetail::FlowLevel,
            cache: CacheDetail::HitRatio,
            broker: BrokerDetail::Bulk,
        }
    }

    /// Short report label, e.g. `"perfile/lru/perjob"`.
    pub fn label(&self) -> String {
        let t = match self.transfer {
            TransferDetail::FlowLevel => "flow",
            TransferDetail::PerFile => "perfile",
        };
        let c = match self.cache {
            CacheDetail::HitRatio => "hitratio",
            CacheDetail::Lru => "lru",
        };
        let b = match self.broker {
            BrokerDetail::Bulk => "bulk",
            BrokerDetail::PerJob => "perjob",
        };
        format!("{t}/{c}/{b}")
    }

    /// The calibration parameter space this version exposes.
    ///
    /// Every version calibrates the platform (core speed, WAN link
    /// bandwidth and latency, storage-element bandwidth); each
    /// higher-detail axis adds the knob of the behaviour it models.
    /// Sizes are in MB and rates in MB/s throughout the crate.
    pub fn parameter_space(&self) -> ParameterSpace {
        let mut space = ParameterSpace::new();
        space.add(
            "core_speed",
            ParamKind::Exponential {
                lo_exp: -4.0,
                hi_exp: 4.0,
            },
        );
        space.add(
            "wan_bandwidth",
            ParamKind::Exponential {
                lo_exp: 0.0,
                hi_exp: 9.0,
            },
        );
        space.add("wan_latency", ParamKind::Continuous { lo: 0.0, hi: 2.0 });
        space.add(
            "disk_bandwidth",
            ParamKind::Exponential {
                lo_exp: 3.0,
                hi_exp: 11.0,
            },
        );
        match self.cache {
            CacheDetail::HitRatio => {
                space.add("hit_ratio", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
            }
            CacheDetail::Lru => space.add(
                "cache_mb",
                ParamKind::Exponential {
                    lo_exp: 7.0,
                    hi_exp: 15.0,
                },
            ),
        }
        if self.transfer == TransferDetail::PerFile {
            space.add(
                "transfer_startup",
                ParamKind::Continuous { lo: 0.0, hi: 8.0 },
            );
        }
        if self.broker == BrokerDetail::PerJob {
            space.add(
                "broker_overhead",
                ParamKind::Continuous { lo: 0.0, hi: 10.0 },
            );
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_distinct_versions() {
        let all = GridVersion::all();
        assert_eq!(all.len(), 8);
        let mut labels: Vec<String> = all.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn dimension_range() {
        assert_eq!(GridVersion::lowest_detail().parameter_space().dim(), 5);
        assert_eq!(GridVersion::highest_detail().parameter_space().dim(), 7);
    }

    #[test]
    fn every_space_has_the_platform_parameters() {
        for v in GridVersion::all() {
            let space = v.parameter_space();
            for name in [
                "core_speed",
                "wan_bandwidth",
                "wan_latency",
                "disk_bandwidth",
            ] {
                assert!(space.index_of(name).is_some(), "{}: {name}", v.label());
            }
        }
    }

    #[test]
    fn axis_knobs_appear_exactly_when_modelled() {
        for v in GridVersion::all() {
            let space = v.parameter_space();
            assert_eq!(
                space.index_of("cache_mb").is_some(),
                v.cache == CacheDetail::Lru
            );
            assert_eq!(
                space.index_of("hit_ratio").is_some(),
                v.cache == CacheDetail::HitRatio
            );
            assert_eq!(
                space.index_of("transfer_startup").is_some(),
                v.transfer == TransferDetail::PerFile
            );
            assert_eq!(
                space.index_of("broker_overhead").is_some(),
                v.broker == BrokerDetail::PerJob
            );
        }
    }
}
