//! # gridsim — case study #4: a federated data grid
//!
//! The first three case-study families (workflow, MPI, batch scheduling)
//! never exercise *data locality*: none of them has files with homes,
//! caches that remember, or wide-area links that congest. This crate adds
//! that missing workload class, following the published LoD axes of the
//! HEP infrastructure models (Horzela et al.; CGSim): a federation of
//! sites, each with compute slots, a storage element, and a site cache,
//! joined by WAN access links; a broker places analysis jobs that read
//! files from the distributed catalog, remote inputs are staged over the
//! WAN, and then the job computes.
//!
//! Three binary LoD axes give **8 versions** of the simulator
//! ([`versions::GridVersion`]):
//!
//! - per-file WAN flows (source + destination contention, per-file
//!   middleware startup) vs. one aggregate flow per job;
//! - explicit per-site LRU caches vs. an analytic hit-ratio;
//! - a serial, cache-aware per-job broker vs. instant bulk placement.
//!
//! The hidden [ground truth](ground_truth) is the highest-detail model
//! made strictly richer by a per-transfer TCP ramp-up surcharge and
//! stochastic runtime noise — the same construction rule as every other
//! family in the workspace. [`scenario`] plugs the simulator into
//! [`simcal`]'s structured losses unchanged.
//!
//! ## Example: build a small grid and run one version
//!
//! ```
//! use gridsim::prelude::*;
//!
//! // A 3-site federation, 24 files, 10 jobs.
//! let spec = GridSpec { sites: 3, files: 24, jobs: 10, ..GridSpec::default() };
//! let workload = generate(&spec);
//! assert_eq!(workload.jobs.len(), 10);
//!
//! // Simulate it at the lowest level of detail, mid-range parameters.
//! let version = GridVersion::lowest_detail();
//! let space = version.parameter_space();
//! let calib = space.denormalize(&vec![0.5; space.dim()]);
//! let out = GridSimulator::new(version).simulate(&workload, &calib);
//! assert!(out.makespan > 0.0);
//! assert_eq!(out.turnarounds.len(), 10);
//! ```
//!
//! ## Example: calibrate a version against the hidden grid
//!
//! ```
//! use gridsim::prelude::*;
//! use simcal::prelude::*;
//!
//! let cfg = GridEmulatorConfig::default();
//! let scenarios = dataset(&default_grid(1)[..1], &cfg, 2, 42);
//! let sim = GridSimulator::new(GridVersion::lowest_detail());
//! let obj = objective(&sim, &scenarios,
//!     StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"));
//! let result = Calibrator::bo_gp(Budget::Evaluations(30), 1).calibrate(&obj);
//! assert!(result.loss.is_finite());
//! ```

#![warn(missing_docs)]

pub mod ground_truth;
pub mod scenario;
pub mod simulator;
pub mod versions;
pub mod workload;

/// One-stop imports for case-study-4 users.
pub mod prelude {
    pub use crate::ground_truth::{
        dataset, default_grid, GridEmulatorConfig, GridGroundTruthRecord,
    };
    pub use crate::scenario::{objective, GridScenario};
    pub use crate::simulator::{GridOutput, GridSimulator};
    pub use crate::versions::{BrokerDetail, CacheDetail, GridVersion, TransferDetail};
    pub use crate::workload::{generate, GridFile, GridJob, GridSpec, GridWorkload};
}
