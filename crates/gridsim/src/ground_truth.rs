//! Ground-truth emulator for the data-grid case study.
//!
//! Substitutes for traces of a real federated infrastructure with a
//! hidden "production grid": the highest-detail model (per-file WAN
//! flows, explicit LRU site caches, a serial cache-aware broker) made
//! strictly richer than every candidate by two behaviours no candidate
//! models — a TCP ramp-up surcharge on every WAN transfer and stochastic
//! runtime noise. Same construction rule as the wfsim/mpisim/batchsim
//! emulators.

use crate::simulator::{execute, GridOutput, ResolvedGrid};
use crate::versions::GridVersion;
use crate::workload::{generate, GridSpec, GridWorkload};
use serde::{Deserialize, Serialize};

/// Hidden parameters of the emulated production grid.
#[derive(Clone, Copy, Debug)]
pub struct GridEmulatorConfig {
    /// Effective slot speed (work units per second).
    pub core_speed: f64,
    /// WAN access-link bandwidth (MB/s).
    pub wan_bandwidth: f64,
    /// End-to-end WAN latency budget (s).
    pub wan_latency: f64,
    /// Storage-element read bandwidth (MB/s).
    pub disk_bandwidth: f64,
    /// Per-site cache capacity (MB).
    pub cache_mb: f64,
    /// Per-file middleware transfer startup (s).
    pub transfer_startup: f64,
    /// Serial broker decision overhead (s).
    pub broker_overhead: f64,
    /// TCP ramp-up surcharge per WAN transfer (MB) — hidden from every
    /// candidate version.
    pub ramp_mb: f64,
    /// Lognormal sigma on job runtimes — hidden from every candidate.
    pub noise_sigma: f64,
}

impl Default for GridEmulatorConfig {
    fn default() -> Self {
        Self {
            core_speed: 1.1,
            wan_bandwidth: 12.0,
            wan_latency: 0.15,
            disk_bandwidth: 150.0,
            cache_mb: 2048.0,
            transfer_startup: 1.2,
            broker_overhead: 0.8,
            ramp_mb: 4.0,
            noise_sigma: 0.06,
        }
    }
}

impl GridEmulatorConfig {
    /// Emulate one "real" execution of `workload`; `noise_seed`
    /// distinguishes repetitions.
    pub fn emulate(&self, workload: &GridWorkload, noise_seed: u64) -> GridOutput {
        let model = ResolvedGrid {
            core_speed: self.core_speed,
            wan_bandwidth: self.wan_bandwidth,
            wan_latency: self.wan_latency,
            disk_bandwidth: self.disk_bandwidth,
            hit_ratio: 0.0,
            cache_mb: self.cache_mb,
            transfer_startup: self.transfer_startup,
            broker_overhead: self.broker_overhead,
            noise_sigma: self.noise_sigma,
            noise_seed,
            ramp_mb: self.ramp_mb,
        };
        execute(workload, GridVersion::highest_detail(), &model)
    }
}

/// One ground-truth data point: a workload with its observed execution
/// metrics (averaged over repetitions).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridGroundTruthRecord {
    /// How the workload was generated.
    pub spec: GridSpec,
    /// The workload itself (regenerable from `spec`, embedded for direct
    /// use).
    pub workload: GridWorkload,
    /// Observed makespan (mean over repetitions).
    pub makespan: f64,
    /// Observed per-job turnaround times (mean over repetitions).
    pub turnarounds: Vec<f64>,
}

/// Generate ground truth for a grid of workload intensities.
pub fn dataset(
    specs: &[GridSpec],
    config: &GridEmulatorConfig,
    repetitions: usize,
    seed: u64,
) -> Vec<GridGroundTruthRecord> {
    specs
        .iter()
        .map(|spec| {
            let workload = generate(spec);
            let mut makespans = Vec::with_capacity(repetitions);
            let mut sums = vec![0.0; workload.jobs.len()];
            for rep in 0..repetitions.max(1) {
                let out = config.emulate(&workload, seed ^ spec.seed ^ (rep as u64) << 40);
                makespans.push(out.makespan);
                for (s, t) in sums.iter_mut().zip(&out.turnarounds) {
                    *s += t;
                }
            }
            let reps = repetitions.max(1) as f64;
            GridGroundTruthRecord {
                spec: *spec,
                workload,
                makespan: numeric::mean(&makespans),
                turnarounds: sums.iter().map(|s| s / reps).collect(),
            }
        })
        .collect()
}

/// A small scenario grid: two arrival intensities x two popularity
/// skews — the workload diversity the methodology needs (the skew axis
/// moves how much the caches and the WAN matter).
pub fn default_grid(base_seed: u64) -> Vec<GridSpec> {
    let mut specs = Vec::new();
    for (i, &interarrival) in [3.0, 9.0].iter().enumerate() {
        for (j, &skew) in [0.4, 1.8].iter().enumerate() {
            specs.push(GridSpec {
                mean_interarrival: interarrival,
                skew,
                seed: base_seed ^ ((i * 2 + j) as u64) << 8,
                ..GridSpec::default()
            });
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulation_is_reproducible_and_noisy() {
        let cfg = GridEmulatorConfig::default();
        let w = generate(&GridSpec::default());
        let a = cfg.emulate(&w, 1);
        let b = cfg.emulate(&w, 1);
        let c = cfg.emulate(&w, 2);
        assert_eq!(a, b);
        assert_ne!(a.makespan, c.makespan);
        assert!((a.makespan - c.makespan).abs() / a.makespan < 0.3);
    }

    #[test]
    fn dataset_covers_the_grid() {
        let specs = default_grid(5);
        assert_eq!(specs.len(), 4);
        let records = dataset(&specs[..2], &GridEmulatorConfig::default(), 2, 3);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.turnarounds.len(), r.workload.jobs.len());
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn ramp_surcharge_slows_the_hidden_system_down() {
        let w = generate(&GridSpec::default());
        let with_ramp = GridEmulatorConfig::default();
        let without = GridEmulatorConfig {
            ramp_mb: 0.0,
            noise_sigma: 0.0,
            ..with_ramp
        };
        let quiet = GridEmulatorConfig {
            noise_sigma: 0.0,
            ..with_ramp
        };
        let slow = quiet.emulate(&w, 0);
        let fast = without.emulate(&w, 0);
        assert!(
            slow.makespan > fast.makespan,
            "ramp {} vs none {}",
            slow.makespan,
            fast.makespan
        );
    }

    #[test]
    fn heavier_arrivals_increase_turnarounds() {
        let cfg = GridEmulatorConfig::default();
        let light = GridSpec {
            mean_interarrival: 30.0,
            ..GridSpec::default()
        };
        let heavy = GridSpec {
            mean_interarrival: 1.0,
            ..GridSpec::default()
        };
        let r = dataset(&[light, heavy], &cfg, 1, 1);
        let mean_light = numeric::mean(&r[0].turnarounds);
        let mean_heavy = numeric::mean(&r[1].turnarounds);
        assert!(mean_heavy > mean_light, "{mean_heavy} vs {mean_light}");
    }
}
