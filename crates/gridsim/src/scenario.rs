//! Integration with the calibration framework.

use crate::ground_truth::GridGroundTruthRecord;
use crate::simulator::GridSimulator;
use simcal::prelude::{
    relative_error, Calibration, ScenarioError, SimulationObjective, Simulator, StructuredLoss,
};

/// One calibration scenario: a workload plus observed metrics.
pub type GridScenario = GridGroundTruthRecord;

impl Simulator for GridSimulator {
    type Scenario = GridScenario;
    type Output = ScenarioError;

    /// Simulate the workload and report the makespan error plus per-job
    /// turnaround errors — the same structured-error shape as the other
    /// case studies, so the paper's L1–L6 losses apply unchanged.
    fn run(&self, scenario: &GridScenario, calibration: &Calibration) -> ScenarioError {
        let out = self.simulate(&scenario.workload, calibration);
        ScenarioError {
            scalar: relative_error(scenario.makespan, out.makespan),
            elements: scenario
                .turnarounds
                .iter()
                .zip(&out.turnarounds)
                .map(|(&gt, &sim)| relative_error(gt, sim))
                .collect(),
        }
    }
}

/// The calibration objective for one version over a scenario dataset.
pub fn objective<'a>(
    simulator: &'a GridSimulator,
    scenarios: &'a [GridScenario],
    loss: StructuredLoss,
) -> SimulationObjective<'a, GridSimulator, StructuredLoss> {
    SimulationObjective::new(
        simulator,
        scenarios,
        loss,
        simulator.version.parameter_space(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::{dataset, default_grid, GridEmulatorConfig};
    use crate::versions::GridVersion;
    use simcal::prelude::{Agg, Budget, Calibrator, ElementMix, Objective};

    #[test]
    fn calibration_improves_over_arbitrary_point() {
        let cfg = GridEmulatorConfig::default();
        let scenarios = dataset(&default_grid(1)[..2], &cfg, 2, 7);
        let version = GridVersion::highest_detail();
        let sim = GridSimulator::new(version);
        let obj = objective(
            &sim,
            &scenarios,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        );
        let arbitrary = obj.loss(
            &version
                .parameter_space()
                .denormalize(&vec![0.2; obj.space().dim()]),
        );
        let result = Calibrator::bo_gp(Budget::Evaluations(80), 3).calibrate(&obj);
        assert!(result.loss <= arbitrary, "{} vs {arbitrary}", result.loss);
        assert!(result.loss < 0.6, "calibrated loss {}", result.loss);
    }
}
