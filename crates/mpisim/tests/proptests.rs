//! Property-based tests for the MPI simulator: totality across the whole
//! version/parameter space, physical sanity of the rate model, and
//! workload invariants.

use mpisim::prelude::*;
use proptest::prelude::*;
use simcal::prelude::Calibration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every version at every in-range calibration produces positive,
    /// finite rates bounded by the memory-copy ceiling times the largest
    /// protocol factor.
    #[test]
    fn transfer_rates_are_total_and_bounded(
        version_idx in 0usize..16,
        unit in proptest::collection::vec(0.02f64..0.98, 11),
        bench_idx in 0usize..4,
        n_nodes in 2usize..24,
    ) {
        let version = MpiSimulatorVersion::all()[version_idx];
        let space = version.parameter_space();
        let calib: Calibration = space.denormalize(&unit[..space.dim()]);
        let benchmark = BenchmarkKind::ALL[bench_idx];
        let sizes = [1024.0, 65536.0, 4194304.0];
        let rates = MpiSimulator::new(version)
            .transfer_rates(benchmark, n_nodes, &sizes, &calib);
        prop_assert_eq!(rates.len(), 3);
        let ceiling = 1.5 * INTRA_NODE_BW; // max factor x memory ceiling
        for r in &rates {
            prop_assert!(r.is_finite() && *r > 0.0);
            prop_assert!(*r <= ceiling * (1.0 + 1e-9), "rate {r} above ceiling");
        }
    }

    /// With a flat protocol (all factors equal) and zero latency, rates
    /// are non-decreasing in message size (no latency to amortize, fixed
    /// allocation); with positive latency small messages are slower.
    #[test]
    fn latency_amortization(seed_factor in 0.2f64..1.4) {
        let version = MpiSimulatorVersion::lowest_detail();
        let space = version.parameter_space();
        let calib = space.calibration_from_pairs(&[
            ("bb_bw", 1e10),
            ("bb_lat", 2e-6),
            ("factor_small", seed_factor),
            ("factor_medium", seed_factor),
            ("factor_large", seed_factor),
        ]);
        let sizes = message_sizes();
        let rates = MpiSimulator::new(version)
            .transfer_rates(BenchmarkKind::PingPong, 8, &sizes, &calib);
        for w in rates.windows(2) {
            prop_assert!(w[1] >= w[0] * (1.0 - 1e-9), "{:?}", rates);
        }
    }

    /// The emulator's measured samples always scatter around the
    /// noise-free truth within a few sigma.
    #[test]
    fn measurement_noise_is_bounded(n_nodes in 2usize..16, seed in 0u64..100) {
        let cfg = MpiEmulatorConfig { repetitions: 4, ..Default::default() };
        let sizes = [131072.0];
        let truth = cfg.true_rates(BenchmarkKind::PingPong, n_nodes, &sizes)[0];
        let samples = &cfg.measure(BenchmarkKind::PingPong, n_nodes, &sizes, seed)[0];
        for s in samples {
            let ratio = s / truth;
            prop_assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
        }
    }

    /// BiRandom pairings are perfect matchings for any even rank count.
    #[test]
    fn birandom_matching(n_nodes in 1usize..50, seed in 0u64..100) {
        let n_ranks = n_nodes * RANKS_PER_NODE;
        let flows = BenchmarkKind::BiRandom.flows(n_ranks, seed);
        let mut degree = vec![0u32; n_ranks];
        for (s, d) in flows {
            prop_assert!(s != d);
            degree[s] += 1;
            degree[d] += 1;
        }
        prop_assert!(degree.iter().all(|&d| d == 2));
    }

    /// More nodes never increases the per-flow rate on a fixed-capacity
    /// shared backbone (contention is monotone). Uses PingPong, whose
    /// deterministic pairing keeps every flow inter-node: BiRandom's seeded
    /// matching includes a varying number of intra-node (memory-speed)
    /// flows, so its *mean* rate is monotone only in expectation, not for
    /// every draw.
    #[test]
    fn backbone_contention_monotone(steps in 1usize..4) {
        let version = MpiSimulatorVersion::lowest_detail();
        let space = version.parameter_space();
        let calib = space.calibration_from_pairs(&[
            ("bb_bw", 5e10),
            ("bb_lat", 1e-6),
            ("factor_small", 1.0),
            ("factor_medium", 1.0),
            ("factor_large", 1.0),
        ]);
        let sizes = [4194304.0];
        let sim = MpiSimulator::new(version);
        let mut last = f64::INFINITY;
        for k in 0..=steps {
            let nodes = 4 << k;
            let r = sim.transfer_rates(BenchmarkKind::PingPong, nodes, &sizes, &calib)[0];
            prop_assert!(r <= last * (1.0 + 1e-9), "nodes {nodes}: {r} > {last}");
            last = r;
        }
    }
}
