//! Specification-based (uncalibrated) parameter values — the §6.4
//! baseline: set the lowest-detail simulator's parameters straight from
//! Summit's published specifications.
//!
//! Specs quote peak link rates (dual-rail EDR InfiniBand: 25 GB/s per
//! node) and say nothing about protocol behaviour, so a spec-driven user
//! leaves every bandwidth factor at 1 — missing the rendezvous dips, the
//! effective (much lower) end-to-end rates, and all software latency.

use crate::versions::MpiSimulatorVersion;
use simcal::prelude::Calibration;

/// Parameter values read off Summit's spec sheet.
pub fn spec_calibration(version: MpiSimulatorVersion) -> Calibration {
    let space = version.parameter_space();
    let values: Vec<f64> = space
        .params()
        .iter()
        .map(|p| match p.name.as_str() {
            // Non-blocking fat tree, read as "bandwidth is never the
            // bottleneck": a giant shared backbone.
            "bb_bw" => 1e12,
            "link_bw" | "down_bw" => 2.5e10, // dual-rail EDR, peak
            "up_bw" => 2.5e10 * 18.0,        // non-blocking uplinks
            "bb_lat" | "link_lat" => 1e-6,   // switch spec latency
            "xbus_bw" => 6.4e10,
            "pcie_bw" => 1.6e10,
            // No documented protocol behaviour: factors of 1.
            "factor_small" | "factor_medium" | "factor_large" => 1.0,
            "changepoint1_log2" => 13.0,
            "changepoint2_log2" => 17.0,
            other => panic!("unexpected parameter {other}"),
        })
        .collect();
    Calibration::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_calibration_fits_every_version_space() {
        for v in MpiSimulatorVersion::all() {
            assert_eq!(
                spec_calibration(v).values.len(),
                v.parameter_space().dim(),
                "{}",
                v.label()
            );
        }
    }

    #[test]
    fn spec_factors_are_unity() {
        let v = MpiSimulatorVersion::lowest_detail();
        let c = spec_calibration(v);
        let s = v.parameter_space();
        assert_eq!(s.value(&c, "factor_small"), 1.0);
        assert_eq!(s.value(&c, "factor_large"), 1.0);
    }
}
