//! The Intel MPI Benchmarks (IMB) communication patterns the ground truth
//! was collected with (paper §6.1): PingPing, PingPong, BiRandom, and
//! Stencil, with `2^x`-byte messages for `x in 10..=22`, on 128, 256, and
//! 512 compute nodes with six MPI ranks per node.

use numeric::rng_from_seed;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// MPI ranks per compute node (Summit practice: one per GPU).
pub const RANKS_PER_NODE: usize = 6;

/// The paper's message sizes: `2^x` bytes for `x in 10..=22`.
pub fn message_sizes() -> Vec<f64> {
    (10..=22).map(|x| f64::from(2u32.pow(x))).collect()
}

/// The paper's node counts.
pub const NODE_COUNTS: [usize; 3] = [128, 256, 512];

/// An IMB point-to-point benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkKind {
    /// Simultaneous bidirectional exchange between paired ranks.
    PingPing,
    /// Alternating send/receive between paired ranks (one direction active
    /// at a time).
    PingPong,
    /// Bidirectional exchange between randomly permuted rank pairs.
    BiRandom,
    /// 2-D nearest-neighbour halo exchange.
    Stencil,
}

impl BenchmarkKind {
    /// All benchmarks, in paper order.
    pub const ALL: [BenchmarkKind; 4] = [
        BenchmarkKind::PingPing,
        BenchmarkKind::PingPong,
        BenchmarkKind::BiRandom,
        BenchmarkKind::Stencil,
    ];

    /// The three benchmarks used for calibration in §6.4 (Stencil is held
    /// out for the §6.5 generalization study).
    pub const CALIBRATION_SET: [BenchmarkKind; 3] = [
        BenchmarkKind::PingPing,
        BenchmarkKind::PingPong,
        BenchmarkKind::BiRandom,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkKind::PingPing => "PingPing",
            BenchmarkKind::PingPong => "PingPong",
            BenchmarkKind::BiRandom => "BiRandom",
            BenchmarkKind::Stencil => "Stencil",
        }
    }

    /// The set of *simultaneously active* directed flows `(src, dst)` over
    /// rank ids, for `n_ranks` ranks. This is the steady-state contention
    /// pattern whose max-min allocation determines per-flow rates.
    ///
    /// - PingPong pairs rank `i` with `i + n/2`; only one direction is in
    ///   flight at a time, so one flow per pair.
    /// - PingPing uses the same pairs with both directions concurrently.
    /// - BiRandom pairs ranks by a seeded random permutation,
    ///   bidirectionally.
    /// - Stencil arranges ranks in a (near-)square grid; each rank
    ///   exchanges with its four neighbours (torus wrap), bidirectionally.
    pub fn flows(self, n_ranks: usize, seed: u64) -> Vec<(usize, usize)> {
        assert!(n_ranks >= 2, "need at least two ranks");
        match self {
            BenchmarkKind::PingPong => {
                let half = n_ranks / 2;
                (0..half).map(|i| (i, i + half)).collect()
            }
            BenchmarkKind::PingPing => {
                let half = n_ranks / 2;
                (0..half)
                    .flat_map(|i| [(i, i + half), (i + half, i)])
                    .collect()
            }
            BenchmarkKind::BiRandom => {
                let mut ranks: Vec<usize> = (0..n_ranks).collect();
                let mut rng = rng_from_seed(seed);
                ranks.shuffle(&mut rng);
                ranks
                    .chunks_exact(2)
                    .flat_map(|p| [(p[0], p[1]), (p[1], p[0])])
                    .collect()
            }
            BenchmarkKind::Stencil => {
                // Widest grid no wider than sqrt, so the grid is near-square.
                let mut width = (n_ranks as f64).sqrt().floor() as usize;
                while width > 1 && !n_ranks.is_multiple_of(width) {
                    width -= 1;
                }
                let height = n_ranks / width.max(1);
                let width = width.max(1);
                let at = |r: usize, c: usize| r * width + c;
                let mut flows = Vec::with_capacity(n_ranks * 2);
                for r in 0..height {
                    for c in 0..width {
                        let me = at(r, c);
                        // Right and down neighbours with torus wrap, both
                        // directions: covers all four neighbour exchanges.
                        let right = at(r, (c + 1) % width);
                        let down = at((r + 1) % height, c);
                        if right != me {
                            flows.push((me, right));
                            flows.push((right, me));
                        }
                        if down != me {
                            flows.push((me, down));
                            flows.push((down, me));
                        }
                    }
                }
                flows
            }
        }
    }

    /// Parse a benchmark name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "pingping" => Some(BenchmarkKind::PingPing),
            "pingpong" => Some(BenchmarkKind::PingPong),
            "birandom" => Some(BenchmarkKind::BiRandom),
            "stencil" => Some(BenchmarkKind::Stencil),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn message_sizes_match_paper() {
        let s = message_sizes();
        assert_eq!(s.len(), 13);
        assert_eq!(s[0], 1024.0);
        assert_eq!(s[12], 4_194_304.0);
    }

    #[test]
    fn pingpong_has_one_flow_per_pair() {
        let flows = BenchmarkKind::PingPong.flows(12, 0);
        assert_eq!(flows.len(), 6);
        assert!(flows.iter().all(|&(s, d)| d == s + 6));
    }

    #[test]
    fn pingping_doubles_pingpong() {
        let pp = BenchmarkKind::PingPong.flows(12, 0);
        let pi = BenchmarkKind::PingPing.flows(12, 0);
        assert_eq!(pi.len(), 2 * pp.len());
        // Every reverse flow is present.
        let set: HashSet<(usize, usize)> = pi.iter().copied().collect();
        for &(s, d) in &pp {
            assert!(set.contains(&(s, d)) && set.contains(&(d, s)));
        }
    }

    #[test]
    fn birandom_is_a_perfect_bidirectional_matching() {
        let flows = BenchmarkKind::BiRandom.flows(100, 7);
        assert_eq!(flows.len(), 100);
        let mut degree = vec![0usize; 100];
        for &(s, d) in &flows {
            assert_ne!(s, d);
            degree[s] += 1;
            degree[d] += 1;
        }
        // Each rank appears in exactly one pair, both directions.
        assert!(degree.iter().all(|&d| d == 2));
    }

    #[test]
    fn birandom_is_seeded() {
        assert_eq!(
            BenchmarkKind::BiRandom.flows(50, 3),
            BenchmarkKind::BiRandom.flows(50, 3)
        );
        assert_ne!(
            BenchmarkKind::BiRandom.flows(50, 3),
            BenchmarkKind::BiRandom.flows(50, 4)
        );
    }

    #[test]
    fn stencil_every_rank_communicates() {
        let flows = BenchmarkKind::Stencil.flows(36, 0);
        let mut touched = [false; 36];
        for &(s, d) in &flows {
            touched[s] = true;
            touched[d] = true;
        }
        assert!(touched.iter().all(|&t| t));
    }

    #[test]
    fn stencil_degree_is_bounded_by_eight() {
        // 4 neighbours x 2 directions.
        let flows = BenchmarkKind::Stencil.flows(64, 0);
        let mut out = vec![0usize; 64];
        for &(s, _) in &flows {
            out[s] += 1;
        }
        assert!(
            out.iter().all(|&d| d <= 4),
            "max out-degree {:?}",
            out.iter().max()
        );
    }

    #[test]
    fn flows_respect_rank_bounds() {
        for b in BenchmarkKind::ALL {
            for n in [2, 6, 100, 768] {
                for (s, d) in b.flows(n, 1) {
                    assert!(s < n && d < n, "{} n={n}", b.name());
                }
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for b in BenchmarkKind::ALL {
            assert_eq!(BenchmarkKind::parse(b.name()), Some(b));
        }
    }
}
