//! The 16 simulator versions of case study #2 (paper Table 4).
//!
//! A version picks a level of detail for three components: the network
//! topology (4 options), the compute node (2 options), and the adaptive
//! MPI communication protocol (2 options) — `4 x 2 x 2 = 16` versions.
//!
//! Parameter ranges follow §6.3.1: bandwidths/latencies span at least one
//! order of magnitude below and above Summit's hardware specification.

use serde::{Deserialize, Serialize};
use simcal::prelude::{ParamKind, ParameterSpace};

/// Level of detail for the network topology (Table 4, top).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyModel {
    /// A single shared backbone link.
    Backbone,
    /// A shared backbone plus a dedicated link per compute node.
    BackboneLinks,
    /// A 4-ary tree of switches with uniform links.
    Tree4,
    /// A Summit-like fat tree: per-node down links and per-L1-switch up
    /// links into a non-blocking core (18 nodes per L1 switch).
    FatTree,
}

/// Level of detail for the compute node (Table 4, middle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeModel {
    /// Multi-core node with an abstract NIC: intra-node details elided.
    Simple,
    /// Two-socket node: ranks reach the NIC via a PCIe bus, far-socket
    /// ranks additionally cross the X-Bus SMP interconnect.
    Complex,
}

/// Level of detail for the adaptive MPI protocol (Table 4, bottom).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolModel {
    /// Protocol switches at two *known* message sizes (determined
    /// empirically); three bandwidth factors to calibrate.
    FixedChangepoints,
    /// Change points are unknown: three factors plus two change points to
    /// calibrate.
    ArbitraryChangepoints,
}

/// The message-size change points of the "fixed" protocol model, as
/// log2(bytes): eager/segmented at 8 KiB, rendezvous at 128 KiB.
pub const FIXED_CHANGEPOINTS_LOG2: [f64; 2] = [13.0, 17.0];

/// One of the 16 simulator versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MpiSimulatorVersion {
    /// Network topology level of detail.
    pub topology: TopologyModel,
    /// Compute-node level of detail.
    pub node: NodeModel,
    /// Adaptive-protocol level of detail.
    pub protocol: ProtocolModel,
}

impl MpiSimulatorVersion {
    /// All 16 versions, node-major (matching Figure 5's layout: simple-node
    /// half first, then complex-node).
    pub fn all() -> Vec<MpiSimulatorVersion> {
        let mut v = Vec::with_capacity(16);
        for node in [NodeModel::Simple, NodeModel::Complex] {
            for topology in [
                TopologyModel::Backbone,
                TopologyModel::BackboneLinks,
                TopologyModel::Tree4,
                TopologyModel::FatTree,
            ] {
                for protocol in [
                    ProtocolModel::FixedChangepoints,
                    ProtocolModel::ArbitraryChangepoints,
                ] {
                    v.push(MpiSimulatorVersion {
                        topology,
                        node,
                        protocol,
                    });
                }
            }
        }
        v
    }

    /// The highest level of detail (fat tree, complex node, arbitrary
    /// change points).
    pub fn highest_detail() -> MpiSimulatorVersion {
        MpiSimulatorVersion {
            topology: TopologyModel::FatTree,
            node: NodeModel::Complex,
            protocol: ProtocolModel::ArbitraryChangepoints,
        }
    }

    /// The lowest level of detail (backbone, simple node, fixed change
    /// points). Used by the §6.4 uncalibrated baseline.
    pub fn lowest_detail() -> MpiSimulatorVersion {
        MpiSimulatorVersion {
            topology: TopologyModel::Backbone,
            node: NodeModel::Simple,
            protocol: ProtocolModel::FixedChangepoints,
        }
    }

    /// Short report label, e.g. `"backbone+links/simple/fixed"`.
    pub fn label(&self) -> String {
        let t = match self.topology {
            TopologyModel::Backbone => "backbone",
            TopologyModel::BackboneLinks => "backbone+links",
            TopologyModel::Tree4 => "4-ary-tree",
            TopologyModel::FatTree => "fat-tree",
        };
        let n = match self.node {
            NodeModel::Simple => "simple",
            NodeModel::Complex => "complex",
        };
        let p = match self.protocol {
            ProtocolModel::FixedChangepoints => "fixed",
            ProtocolModel::ArbitraryChangepoints => "arbitrary",
        };
        format!("{t}/{n}/{p}")
    }

    /// The calibration parameter space this version exposes.
    pub fn parameter_space(&self) -> ParameterSpace {
        // Summit spec is ~12.5 GB/s per port (2^33.5); span well over an
        // order of magnitude on both sides.
        let bw = ParamKind::Exponential {
            lo_exp: 25.0,
            hi_exp: 40.0,
        };
        let lat = ParamKind::Continuous { lo: 0.0, hi: 1e-3 };
        let factor = ParamKind::Continuous { lo: 0.05, hi: 1.5 };
        let mut space = ParameterSpace::new();

        match self.topology {
            TopologyModel::Backbone => {
                space.add("bb_bw", bw);
                space.add("bb_lat", lat);
            }
            TopologyModel::BackboneLinks => {
                space.add("bb_bw", bw);
                space.add("bb_lat", lat);
                space.add("link_bw", bw);
                space.add("link_lat", lat);
            }
            TopologyModel::Tree4 => {
                space.add("link_bw", bw);
                space.add("link_lat", lat);
            }
            TopologyModel::FatTree => {
                space.add("down_bw", bw);
                space.add("up_bw", bw);
                space.add("link_lat", lat);
            }
        }
        if self.node == NodeModel::Complex {
            space.add("xbus_bw", bw);
            space.add("pcie_bw", bw);
        }
        space.add("factor_small", factor);
        space.add("factor_medium", factor);
        space.add("factor_large", factor);
        if self.protocol == ProtocolModel::ArbitraryChangepoints {
            let cp = ParamKind::Continuous { lo: 10.0, hi: 22.0 };
            space.add("changepoint1_log2", cp);
            space.add("changepoint2_log2", cp);
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_sixteen_distinct_versions() {
        let all = MpiSimulatorVersion::all();
        assert_eq!(all.len(), 16);
        let mut labels: Vec<String> = all.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 16);
    }

    #[test]
    fn dimension_extremes() {
        // Lowest: 2 (backbone) + 0 (simple) + 3 (factors) = 5.
        assert_eq!(
            MpiSimulatorVersion::lowest_detail().parameter_space().dim(),
            5
        );
        // Highest: 3 (fat tree) + 2 (complex) + 5 (arbitrary protocol) = 10.
        assert_eq!(
            MpiSimulatorVersion::highest_detail()
                .parameter_space()
                .dim(),
            10
        );
    }

    #[test]
    fn arbitrary_protocol_adds_two_dimensions() {
        for v in MpiSimulatorVersion::all() {
            let fixed = MpiSimulatorVersion {
                protocol: ProtocolModel::FixedChangepoints,
                ..v
            };
            let arb = MpiSimulatorVersion {
                protocol: ProtocolModel::ArbitraryChangepoints,
                ..v
            };
            assert_eq!(
                arb.parameter_space().dim(),
                fixed.parameter_space().dim() + 2
            );
        }
    }

    #[test]
    fn figure5_ordering_is_node_major() {
        let all = MpiSimulatorVersion::all();
        assert!(all[..8].iter().all(|v| v.node == NodeModel::Simple));
        assert!(all[8..].iter().all(|v| v.node == NodeModel::Complex));
    }

    #[test]
    fn every_space_has_protocol_factors() {
        for v in MpiSimulatorVersion::all() {
            let s = v.parameter_space();
            for name in ["factor_small", "factor_medium", "factor_large"] {
                assert!(s.index_of(name).is_some(), "{} missing {name}", v.label());
            }
        }
    }
}
