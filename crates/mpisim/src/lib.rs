//! # mpisim — case study #2: message-passing applications
//!
//! An SMPI-style MPI point-to-point benchmark simulator (§6) with
//! **sixteen level-of-detail versions** (4 topology x 2 node x 2 protocol
//! options, [`versions::MpiSimulatorVersion`]), the IMB communication
//! patterns PingPing / PingPong / BiRandom / Stencil ([`benchmarks`]), a
//! Summit-style [ground-truth emulator](ground_truth) with hidden
//! scale-dependent congestion, and the [`simcal`] integration
//! ([`scenario`]) using explained-variance losses.
//!
//! ## Example
//!
//! ```
//! use mpisim::prelude::*;
//! use simcal::prelude::*;
//!
//! let cfg = MpiEmulatorConfig { repetitions: 3, ..Default::default() };
//! let scenarios = dataset(&[BenchmarkKind::PingPong], &[8], &cfg, 42);
//!
//! let sim = MpiSimulator::new(MpiSimulatorVersion::lowest_detail());
//! let obj = objective(&sim, &scenarios, MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"));
//! let result = Calibrator::bo_gp(Budget::Evaluations(30), 1).calibrate(&obj);
//! assert!(result.loss.is_finite());
//! ```

pub mod benchmarks;
pub mod ground_truth;
pub mod scenario;
pub mod simulator;
pub mod spec;
pub mod versions;

/// One-stop imports for case-study-2 users.
pub mod prelude {
    pub use crate::benchmarks::{message_sizes, BenchmarkKind, NODE_COUNTS, RANKS_PER_NODE};
    pub use crate::ground_truth::{dataset, MpiEmulatorConfig, MpiGroundTruthRecord};
    pub use crate::scenario::{mean_relative_rate_error, objective, MpiScenario};
    pub use crate::simulator::{workload_seed, MpiSimulator, INTRA_NODE_BW};
    pub use crate::spec::spec_calibration;
    pub use crate::versions::{
        MpiSimulatorVersion, NodeModel, ProtocolModel, TopologyModel, FIXED_CHANGEPOINTS_LOG2,
    };
}
