//! Ground-truth emulator for case study #2.
//!
//! The paper's ground truth is IMB runs on ORNL's Summit. We do not have
//! Summit, so this module substitutes a **hidden testbed model**: a
//! fat-tree network with complex (two-socket, PCIe/X-Bus) nodes and an
//! adaptive protocol with hidden factors — plus two effects no candidate
//! simulator can express:
//!
//! - a *scale-dependent congestion* term (`rate x (128/n)^e`) modelling
//!   adaptive-routing degradation as node count grows, which reproduces
//!   the paper's §6.5 negative generalization result (calibrations
//!   computed at 128 nodes degrade at 256 and 512 nodes);
//! - multiplicative measurement noise across repetitions, giving each
//!   ground-truth point a *sample set* whose dispersion the explained-
//!   variance losses of §6.3.2 are defined against.

use crate::benchmarks::{message_sizes, BenchmarkKind};
use crate::simulator::{transfer_rates_resolved, ResolvedMpi};
use crate::versions::{NodeModel, TopologyModel, FIXED_CHANGEPOINTS_LOG2};
use numeric::{lognormal, rng_from_seed};
use serde::{Deserialize, Serialize};

/// Hidden "Summit" parameters of the emulated testbed.
#[derive(Clone, Copy, Debug)]
pub struct MpiEmulatorConfig {
    /// Node-to-switch (down) link bandwidth (bytes/s).
    pub down_bw: f64,
    /// Switch-to-core (up) link bandwidth (bytes/s).
    pub up_bw: f64,
    /// Per-hop latency (s).
    pub link_lat: f64,
    /// X-Bus SMP bandwidth (bytes/s).
    pub xbus_bw: f64,
    /// PCIe bandwidth (bytes/s).
    pub pcie_bw: f64,
    /// Hidden protocol bandwidth factors.
    pub factors: [f64; 3],
    /// Hidden protocol change points (log2 bytes).
    pub changepoints_log2: [f64; 2],
    /// Scale-congestion exponent (inexpressible by candidates).
    pub scale_exponent: f64,
    /// Lognormal sigma of per-sample measurement noise.
    pub noise_sigma: f64,
    /// Repetitions per ground-truth point (the paper's logs have several).
    pub repetitions: usize,
}

impl Default for MpiEmulatorConfig {
    fn default() -> Self {
        Self {
            // Summit-like EDR/dual-rail ballpark, effective not peak.
            down_bw: 1.9e10,
            up_bw: 1.4e11,
            link_lat: 1.8e-6,
            xbus_bw: 5.2e10,
            pcie_bw: 1.3e10,
            factors: [1.0, 0.62, 0.88],
            changepoints_log2: FIXED_CHANGEPOINTS_LOG2,
            scale_exponent: 0.35,
            noise_sigma: 0.08,
            repetitions: 5,
        }
    }
}

impl MpiEmulatorConfig {
    fn resolved(&self) -> ResolvedMpi {
        ResolvedMpi {
            topology: TopologyModel::FatTree,
            bb_bw: 0.0,
            bb_lat: 0.0,
            link_bw: 0.0,
            link_lat: self.link_lat,
            down_bw: self.down_bw,
            up_bw: self.up_bw,
            node: NodeModel::Complex,
            xbus_bw: self.xbus_bw,
            pcie_bw: self.pcie_bw,
            factors: self.factors,
            changepoints_log2: self.changepoints_log2,
            scale_exponent: self.scale_exponent,
        }
    }

    /// Noise-free "true" transfer rates of the hidden testbed.
    pub fn true_rates(&self, benchmark: BenchmarkKind, n_nodes: usize, sizes: &[f64]) -> Vec<f64> {
        transfer_rates_resolved(&self.resolved(), benchmark, n_nodes, sizes)
    }

    /// Emulate the measured ground truth: per message size, `repetitions`
    /// noisy samples around the hidden model's rate.
    pub fn measure(
        &self,
        benchmark: BenchmarkKind,
        n_nodes: usize,
        sizes: &[f64],
        seed: u64,
    ) -> Vec<Vec<f64>> {
        let truth = self.true_rates(benchmark, n_nodes, sizes);
        let mut rng = rng_from_seed(seed ^ (benchmark as u64) << 8 ^ (n_nodes as u64) << 16);
        let s = self.noise_sigma;
        truth
            .iter()
            .map(|&rate| {
                (0..self.repetitions)
                    .map(|_| rate * lognormal(&mut rng, -s * s / 2.0, s))
                    .collect()
            })
            .collect()
    }
}

/// One ground-truth data point: a benchmark run at one node count, with
/// measured transfer-rate samples per message size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MpiGroundTruthRecord {
    /// The benchmark.
    pub benchmark: BenchmarkKind,
    /// Node count (128, 256, or 512 in the paper).
    pub n_nodes: usize,
    /// Message sizes, bytes.
    pub sizes: Vec<f64>,
    /// `samples[size_index][repetition]` transfer rates, bytes/s.
    pub samples: Vec<Vec<f64>>,
}

impl MpiGroundTruthRecord {
    /// Mean measured rate per message size.
    pub fn mean_rates(&self) -> Vec<f64> {
        self.samples.iter().map(|s| numeric::mean(s)).collect()
    }
}

/// Generate the ground truth for the given benchmarks and node counts.
pub fn dataset(
    benchmarks: &[BenchmarkKind],
    node_counts: &[usize],
    config: &MpiEmulatorConfig,
    seed: u64,
) -> Vec<MpiGroundTruthRecord> {
    let sizes = message_sizes();
    let mut records = Vec::new();
    for &benchmark in benchmarks {
        for &n_nodes in node_counts {
            records.push(MpiGroundTruthRecord {
                benchmark,
                n_nodes,
                sizes: sizes.clone(),
                samples: config.measure(benchmark, n_nodes, &sizes, seed),
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_reproducible_per_seed() {
        let cfg = MpiEmulatorConfig::default();
        let sizes = message_sizes();
        let a = cfg.measure(BenchmarkKind::PingPong, 16, &sizes, 1);
        let b = cfg.measure(BenchmarkKind::PingPong, 16, &sizes, 1);
        assert_eq!(a, b);
        let c = cfg.measure(BenchmarkKind::PingPong, 16, &sizes, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_scatter_around_truth() {
        let cfg = MpiEmulatorConfig {
            repetitions: 50,
            ..Default::default()
        };
        let sizes = [1_048_576.0];
        let truth = cfg.true_rates(BenchmarkKind::PingPong, 16, &sizes)[0];
        let samples = &cfg.measure(BenchmarkKind::PingPong, 16, &sizes, 3)[0];
        let mean = numeric::mean(samples);
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean {mean} vs truth {truth}"
        );
        assert!(numeric::std_dev(samples) > 0.0);
    }

    #[test]
    fn scale_congestion_degrades_large_runs() {
        // Beyond topology contention, the hidden exponent cuts rates as
        // node count rises; verify the multiplier effect is present by
        // comparing against an exponent-free config.
        let with = MpiEmulatorConfig::default();
        let without = MpiEmulatorConfig {
            scale_exponent: 0.0,
            ..with
        };
        let sizes = [4_194_304.0];
        let r_with = with.true_rates(BenchmarkKind::PingPong, 256, &sizes)[0];
        let r_without = without.true_rates(BenchmarkKind::PingPong, 256, &sizes)[0];
        let expected_ratio = (128.0f64 / 256.0).powf(0.35);
        assert!(
            (r_with / r_without - expected_ratio).abs() < 0.05,
            "{r_with} / {r_without} vs {expected_ratio}"
        );
    }

    #[test]
    fn dataset_covers_benchmarks_and_scales() {
        let cfg = MpiEmulatorConfig {
            repetitions: 2,
            ..Default::default()
        };
        let recs = dataset(&BenchmarkKind::CALIBRATION_SET, &[16, 32], &cfg, 0);
        assert_eq!(recs.len(), 6);
        for r in &recs {
            assert_eq!(r.sizes.len(), 13);
            assert_eq!(r.samples.len(), 13);
            assert!(r.samples.iter().all(|s| s.len() == 2));
            assert!(r.mean_rates().iter().all(|&m| m > 0.0));
        }
    }

    #[test]
    fn rendezvous_dip_is_visible_in_truth() {
        // The hidden factor drops from 1.0 to 0.62 at 8 KiB: the
        // bandwidth-bound rate right above the change point is lower than
        // extrapolation from below would suggest. Verify factors order.
        let cfg = MpiEmulatorConfig::default();
        let rates = cfg.true_rates(BenchmarkKind::PingPong, 16, &[4096.0, 16384.0, 2e6]);
        // All rates positive and the large-message regime recovers
        // relative to the medium regime (0.88 > 0.62).
        assert!(rates.iter().all(|&r| r > 0.0));
    }
}
