//! Integration with the calibration framework: scenarios, explained-
//! variance outputs, and the `simcal::Simulator` implementation.

use crate::ground_truth::MpiGroundTruthRecord;
use crate::simulator::MpiSimulator;
use numeric::explained_variance;
use simcal::prelude::{Calibration, MatrixLoss, SimulationObjective, Simulator};

/// One calibration scenario: a benchmark at one node count with its
/// measured transfer-rate samples.
pub type MpiScenario = MpiGroundTruthRecord;

impl Simulator for MpiSimulator {
    type Scenario = MpiScenario;
    type Output = Vec<f64>;

    /// Simulate the scenario and report, per message size, the explained
    /// variance between the measured samples and the (deterministic)
    /// simulated rate (paper §6.3.2).
    fn run(&self, scenario: &MpiScenario, calibration: &Calibration) -> Vec<f64> {
        let rates = self.transfer_rates(
            scenario.benchmark,
            scenario.n_nodes,
            &scenario.sizes,
            calibration,
        );
        scenario
            .samples
            .iter()
            .zip(&rates)
            .map(|(samples, &rate)| explained_variance(samples, rate))
            .collect()
    }
}

/// The calibration objective for one simulator version over a scenario
/// dataset, under a given explained-variance loss.
pub fn objective<'a>(
    simulator: &'a MpiSimulator,
    scenarios: &'a [MpiScenario],
    loss: MatrixLoss,
) -> SimulationObjective<'a, MpiSimulator, MatrixLoss> {
    SimulationObjective::new(
        simulator,
        scenarios,
        loss,
        simulator.version.parameter_space(),
    )
}

/// Percent relative error between simulated and mean measured transfer
/// rates, averaged over message sizes — the accuracy metric of Figure 5
/// and the second row block of Table 5.
pub fn mean_relative_rate_error(
    simulator: &MpiSimulator,
    scenario: &MpiScenario,
    calibration: &Calibration,
) -> f64 {
    let rates = simulator.transfer_rates(
        scenario.benchmark,
        scenario.n_nodes,
        &scenario.sizes,
        calibration,
    );
    let means = scenario.mean_rates();
    let errs: Vec<f64> = means
        .iter()
        .zip(&rates)
        .map(|(&gt, &sim)| simcal::prelude::relative_error(gt, sim))
        .collect();
    numeric::mean(&errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::BenchmarkKind;
    use crate::ground_truth::{dataset, MpiEmulatorConfig};
    use crate::versions::MpiSimulatorVersion;
    use simcal::prelude::{Agg, Budget, Calibrator, Objective};

    fn tiny_dataset() -> Vec<MpiScenario> {
        let cfg = MpiEmulatorConfig {
            repetitions: 3,
            ..Default::default()
        };
        dataset(
            &[BenchmarkKind::PingPong, BenchmarkKind::BiRandom],
            &[8],
            &cfg,
            42,
        )
    }

    #[test]
    fn run_returns_one_ev_per_message_size() {
        let scenarios = tiny_dataset();
        let sim = MpiSimulator::new(MpiSimulatorVersion::lowest_detail());
        let calib =
            sim.version
                .parameter_space()
                .denormalize(&vec![0.5; sim.version.parameter_space().dim()]);
        let evs = sim.run(&scenarios[0], &calib);
        assert_eq!(evs.len(), 13);
        assert!(evs.iter().all(|&e| e > 0.0));
    }

    #[test]
    fn objective_is_finite_and_calibration_reduces_it() {
        let scenarios = tiny_dataset();
        let sim = MpiSimulator::new(MpiSimulatorVersion::lowest_detail());
        let obj = objective(&sim, &scenarios, MatrixLoss::new(Agg::Avg, Agg::Avg, "L1"));
        let dim = obj.space().dim();
        let arbitrary = obj.loss(&sim.version.parameter_space().denormalize(&vec![0.3; dim]));
        assert!(arbitrary.is_finite());
        let result = Calibrator::bo_gp(Budget::Evaluations(60), 5).calibrate(&obj);
        assert!(
            result.loss <= arbitrary,
            "calibrated {} vs arbitrary {arbitrary}",
            result.loss
        );
    }

    #[test]
    fn rate_error_is_zero_for_a_perfect_model() {
        // Build a scenario whose samples equal the simulator's own output.
        let sim = MpiSimulator::new(MpiSimulatorVersion::lowest_detail());
        let space = sim.version.parameter_space();
        let calib = space.denormalize(&vec![0.5; space.dim()]);
        let sizes = crate::benchmarks::message_sizes();
        let rates = sim.transfer_rates(BenchmarkKind::PingPong, 8, &sizes, &calib);
        let scenario = MpiScenario {
            benchmark: BenchmarkKind::PingPong,
            n_nodes: 8,
            sizes,
            samples: rates.iter().map(|&r| vec![r, r]).collect(),
        };
        let err = mean_relative_rate_error(&sim, &scenario, &calib);
        assert!(err < 1e-12, "err {err}");
    }
}
