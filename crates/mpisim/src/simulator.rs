//! The MPI benchmark simulator: computes steady-state data transfer rates
//! for an IMB communication pattern on a modelled platform (paper §6.2).
//!
//! Like SMPI, the model is fluid: every concurrently-active message flow
//! receives a max-min fair share of the links along its route (computed by
//! [`dessim::max_min_fair_share`]), the adaptive MPI protocol scales the
//! achievable rate by a message-size-dependent factor, and a flow's
//! transfer time is `latency + size / (factor * allocated_bandwidth)`.
//! The reported metric — as in the IMB logs the ground truth consists of —
//! is the data transfer rate per flow, averaged over flows.

use crate::benchmarks::{BenchmarkKind, RANKS_PER_NODE};
use crate::versions::{
    MpiSimulatorVersion, NodeModel, ProtocolModel, TopologyModel, FIXED_CHANGEPOINTS_LOG2,
};
use dessim::Workspace;
use simcal::prelude::Calibration;
use std::cell::RefCell;

/// Effective bandwidth for same-socket (shared-memory) exchanges, which no
/// version calibrates: 20 GB/s.
pub const INTRA_NODE_BW: f64 = 20e9;

/// Deterministic workload seed shared by the ground-truth emulator and all
/// candidate simulators: the BiRandom pairing is part of the workload, not
/// of the model.
pub fn workload_seed(benchmark: BenchmarkKind, n_nodes: usize) -> u64 {
    0xB1DA_0000_0000_0000 ^ ((benchmark as u64) << 32) ^ n_nodes as u64
}

/// Fully-resolved MPI platform model.
#[derive(Clone, Debug)]
pub(crate) struct ResolvedMpi {
    pub topology: TopologyModel,
    pub bb_bw: f64,
    pub bb_lat: f64,
    pub link_bw: f64,
    pub link_lat: f64,
    pub down_bw: f64,
    pub up_bw: f64,
    pub node: NodeModel,
    pub xbus_bw: f64,
    pub pcie_bw: f64,
    /// Protocol bandwidth factors: small / medium / large messages.
    pub factors: [f64; 3],
    /// Protocol change points, log2(bytes).
    pub changepoints_log2: [f64; 2],
    /// Ground-truth-only: per-flow rate multiplier `(128 / n_nodes)^e`
    /// modelling adaptive-routing congestion that grows with scale. Zero
    /// for every candidate simulator.
    pub scale_exponent: f64,
}

/// Map a calibration (in `version`'s space) to a resolved model.
pub(crate) fn resolve(version: MpiSimulatorVersion, calib: &Calibration) -> ResolvedMpi {
    let space = version.parameter_space();
    let get = |name: &str| space.value(calib, name);
    let (bb_bw, bb_lat, link_bw, link_lat, down_bw, up_bw) = match version.topology {
        TopologyModel::Backbone => (get("bb_bw"), get("bb_lat"), 0.0, 0.0, 0.0, 0.0),
        TopologyModel::BackboneLinks => (
            get("bb_bw"),
            get("bb_lat"),
            get("link_bw"),
            get("link_lat"),
            0.0,
            0.0,
        ),
        TopologyModel::Tree4 => (0.0, 0.0, get("link_bw"), get("link_lat"), 0.0, 0.0),
        TopologyModel::FatTree => (0.0, 0.0, 0.0, get("link_lat"), get("down_bw"), get("up_bw")),
    };
    let (xbus_bw, pcie_bw) = match version.node {
        NodeModel::Complex => (get("xbus_bw"), get("pcie_bw")),
        NodeModel::Simple => (0.0, 0.0),
    };
    let changepoints_log2 = match version.protocol {
        ProtocolModel::FixedChangepoints => FIXED_CHANGEPOINTS_LOG2,
        ProtocolModel::ArbitraryChangepoints => {
            let (a, b) = (get("changepoint1_log2"), get("changepoint2_log2"));
            // The two change points are unordered parameters; the model
            // sorts them so the piecewise regions are well-defined.
            if a <= b {
                [a, b]
            } else {
                [b, a]
            }
        }
    };
    ResolvedMpi {
        topology: version.topology,
        bb_bw,
        bb_lat,
        link_bw,
        link_lat,
        down_bw,
        up_bw,
        node: version.node,
        xbus_bw,
        pcie_bw,
        factors: [
            get("factor_small"),
            get("factor_medium"),
            get("factor_large"),
        ],
        changepoints_log2,
        scale_exponent: 0.0,
    }
}

impl ResolvedMpi {
    /// Protocol bandwidth factor for a message of `size` bytes.
    pub fn protocol_factor(&self, size: f64) -> f64 {
        let log2 = size.max(1.0).log2();
        if log2 < self.changepoints_log2[0] {
            self.factors[0]
        } else if log2 < self.changepoints_log2[1] {
            self.factors[1]
        } else {
            self.factors[2]
        }
    }
}

/// The network as links + per-flow routes, ready for max-min sharing.
struct FlowNetwork {
    capacities: Vec<f64>,
    latencies: Vec<f64>,
    routes: Vec<Vec<usize>>,
}

/// Build the link set and the route of every flow.
fn build_network(model: &ResolvedMpi, n_nodes: usize, flows: &[(usize, usize)]) -> FlowNetwork {
    let mut capacities = Vec::new();
    let mut latencies = Vec::new();
    let mut add_link = |bw: f64, lat: f64| -> usize {
        capacities.push(bw.max(1.0));
        latencies.push(lat.max(0.0));
        capacities.len() - 1
    };

    // Topology links and a node-to-node route function.
    enum Topo {
        Backbone {
            bb: usize,
        },
        BackboneLinks {
            bb: usize,
            node_links: Vec<usize>,
        },
        Tree {
            parent_link: Vec<Option<usize>>,
            parent: Vec<Option<usize>>,
            leaf: Vec<usize>,
        },
        FatTree {
            down: Vec<usize>,
            up: Vec<usize>,
        },
    }
    let topo = match model.topology {
        TopologyModel::Backbone => Topo::Backbone {
            bb: add_link(model.bb_bw, model.bb_lat),
        },
        TopologyModel::BackboneLinks => {
            let bb = add_link(model.bb_bw, model.bb_lat);
            let node_links = (0..n_nodes)
                .map(|_| add_link(model.link_bw, model.link_lat))
                .collect();
            Topo::BackboneLinks { bb, node_links }
        }
        TopologyModel::Tree4 => {
            // Vertices: n leaves, then ceil-by-4 groups per level up to a root.
            let mut parent: Vec<Option<usize>> = Vec::new();
            let mut parent_link: Vec<Option<usize>> = Vec::new();
            let mut level_start = 0usize;
            let mut level_count = n_nodes;
            let leaf: Vec<usize> = (0..n_nodes).collect();
            // Create leaf vertices.
            for _ in 0..n_nodes {
                parent.push(None);
                parent_link.push(None);
            }
            // Uplink capacity aggregates the subtree it serves (a switch
            // uplink carries its four children's traffic), so the single
            // calibratable bandwidth describes the leaf edge and the tree
            // is not artificially root-choked.
            let mut level = 0u32;
            while level_count > 1 {
                let next_count = level_count.div_ceil(4);
                let next_start = parent.len();
                for _ in 0..next_count {
                    parent.push(None);
                    parent_link.push(None);
                }
                let capacity = model.link_bw * 4f64.powi(level as i32);
                for i in 0..level_count {
                    let v = level_start + i;
                    let p = next_start + i / 4;
                    parent[v] = Some(p);
                    parent_link[v] = Some(add_link(capacity, model.link_lat));
                }
                level_start = next_start;
                level_count = next_count;
                level += 1;
            }
            Topo::Tree {
                parent_link,
                parent,
                leaf,
            }
        }
        TopologyModel::FatTree => {
            let down = (0..n_nodes)
                .map(|_| add_link(model.down_bw, model.link_lat))
                .collect();
            let n_switches = n_nodes.div_ceil(18);
            let up = (0..n_switches)
                .map(|_| add_link(model.up_bw, model.link_lat))
                .collect();
            Topo::FatTree { down, up }
        }
    };

    // Intra-node links for the complex node model.
    let (pcie, xbus): (Vec<usize>, Vec<usize>) = if model.node == NodeModel::Complex {
        (
            (0..n_nodes).map(|_| add_link(model.pcie_bw, 0.0)).collect(),
            (0..n_nodes).map(|_| add_link(model.xbus_bw, 0.0)).collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    let node_of = |rank: usize| rank / RANKS_PER_NODE;
    let socket_of = |rank: usize| (rank % RANKS_PER_NODE) / (RANKS_PER_NODE / 2);

    let node_route = |a: usize, b: usize| -> Vec<usize> {
        match &topo {
            Topo::Backbone { bb } => vec![*bb],
            Topo::BackboneLinks { bb, node_links } => vec![node_links[a], *bb, node_links[b]],
            Topo::Tree {
                parent_link,
                parent,
                leaf,
            } => {
                // Walk both leaves up to the LCA, collecting edge links.
                let mut pa = Vec::new();
                let mut pb = Vec::new();
                let mut va = leaf[a];
                let mut vb = leaf[b];
                let depth = |mut v: usize| {
                    let mut d = 0;
                    while let Some(p) = parent[v] {
                        v = p;
                        d += 1;
                    }
                    d
                };
                let (mut da, mut db) = (depth(va), depth(vb));
                while da > db {
                    pa.push(parent_link[va].expect("non-root has a parent link"));
                    va = parent[va].expect("non-root");
                    da -= 1;
                }
                while db > da {
                    pb.push(parent_link[vb].expect("non-root has a parent link"));
                    vb = parent[vb].expect("non-root");
                    db -= 1;
                }
                while va != vb {
                    pa.push(parent_link[va].expect("non-root"));
                    pb.push(parent_link[vb].expect("non-root"));
                    va = parent[va].expect("non-root");
                    vb = parent[vb].expect("non-root");
                }
                pa.extend(pb.into_iter().rev());
                pa
            }
            Topo::FatTree { down, up } => {
                let (sa, sb) = (a / 18, b / 18);
                if sa == sb {
                    vec![down[a], down[b]]
                } else {
                    vec![down[a], up[sa], up[sb], down[b]]
                }
            }
        }
    };

    let routes: Vec<Vec<usize>> = flows
        .iter()
        .map(|&(src, dst)| {
            let (na, nb) = (node_of(src), node_of(dst));
            let mut route = Vec::new();
            if na != nb {
                // Inter-node: rank -> (X-Bus if far socket) -> PCIe ->
                // NIC -> network -> NIC -> PCIe -> (X-Bus) -> rank.
                if model.node == NodeModel::Complex {
                    if socket_of(src) == 1 {
                        route.push(xbus[na]);
                    }
                    route.push(pcie[na]);
                }
                route.extend(node_route(na, nb));
                if model.node == NodeModel::Complex {
                    route.push(pcie[nb]);
                    if socket_of(dst) == 1 {
                        route.push(xbus[nb]);
                    }
                }
            } else if model.node == NodeModel::Complex && socket_of(src) != socket_of(dst) {
                // Cross-socket, same node: X-Bus only (PCIe models the
                // path to the NIC, which shared-memory traffic never
                // touches).
                route.push(xbus[na]);
            }
            // Same node, same socket: empty route (shared memory); the
            // rate model caps it at the memory-copy ceiling.
            route
        })
        .collect();

    FlowNetwork {
        capacities,
        latencies,
        routes,
    }
}

/// Per-flow data transfer rates (bytes/s) for one benchmark at one message
/// size, averaged into the benchmark's reported rate.
pub(crate) fn transfer_rates_resolved(
    model: &ResolvedMpi,
    benchmark: BenchmarkKind,
    n_nodes: usize,
    sizes: &[f64],
) -> Vec<f64> {
    thread_local! {
        /// Reused max-min solver buffers: calibration evaluates this
        /// function once per (version, scenario, size-grid) point in its
        /// hot loop, so the fair-share solve runs allocation-free after
        /// the first call on each thread.
        static SHARING_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
    }

    let n_ranks = n_nodes * RANKS_PER_NODE;
    let flows = benchmark.flows(n_ranks, workload_seed(benchmark, n_nodes));
    let net = build_network(model, n_nodes, &flows);
    let scale_mult = (128.0 / n_nodes as f64).powf(model.scale_exponent);

    SHARING_WS.with(|cell| {
        let mut ws = cell.borrow_mut();
        ws.load(&net.capacities, &net.routes);
        let allocations = ws.solve();

        sizes
            .iter()
            .map(|&size| {
                let factor = model.protocol_factor(size);
                let mut sum = 0.0;
                for (alloc, route) in allocations.iter().zip(&net.routes) {
                    // Memory-copy speed is a universal ceiling on any single
                    // MPI transfer (and the rate of same-socket exchanges,
                    // whose route is empty).
                    let bw = alloc.min(INTRA_NODE_BW) * scale_mult;
                    let lat: f64 = route.iter().map(|&l| net.latencies[l]).sum();
                    let t = lat + size / (factor * bw.max(1.0));
                    sum += size / t;
                }
                sum / flows.len() as f64
            })
            .collect()
    })
}

/// A calibratable MPI benchmark simulator at one level of detail.
#[derive(Clone, Copy, Debug)]
pub struct MpiSimulator {
    /// The level-of-detail configuration.
    pub version: MpiSimulatorVersion,
}

impl MpiSimulator {
    /// Construct a simulator for `version`.
    pub fn new(version: MpiSimulatorVersion) -> Self {
        Self { version }
    }

    /// Simulated data transfer rates (bytes/s), one per message size, for
    /// `benchmark` on `n_nodes` nodes under `calibration`.
    pub fn transfer_rates(
        &self,
        benchmark: BenchmarkKind,
        n_nodes: usize,
        sizes: &[f64],
        calibration: &Calibration,
    ) -> Vec<f64> {
        let model = resolve(self.version, calibration);
        transfer_rates_resolved(&model, benchmark, n_nodes, sizes)
    }

    /// Deterministic simulation-work estimate for one scenario: how much
    /// this level of detail costs to evaluate.
    ///
    /// The model is analytic (one fair-share solve, no event loop), so the
    /// natural analogue of an event count is the size of the solved
    /// problem: links in the modelled network, plus route hops across all
    /// flows, plus one rate computation per flow per message size. More
    /// detailed topologies/node models build strictly larger networks, so
    /// the measure orders versions by modelling cost — `lodsel` uses it as
    /// the cost axis of its accuracy-versus-cost Pareto front.
    pub fn simulation_work(
        &self,
        benchmark: BenchmarkKind,
        n_nodes: usize,
        sizes: &[f64],
        calibration: &Calibration,
    ) -> u64 {
        let model = resolve(self.version, calibration);
        let n_ranks = n_nodes * RANKS_PER_NODE;
        let flows = benchmark.flows(n_ranks, workload_seed(benchmark, n_nodes));
        let net = build_network(&model, n_nodes, &flows);
        let hops: usize = net.routes.iter().map(Vec::len).sum();
        (net.capacities.len() + hops + flows.len() * sizes.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::message_sizes;

    fn calib_for(version: MpiSimulatorVersion) -> Calibration {
        let space = version.parameter_space();
        let values: Vec<f64> = space
            .params()
            .iter()
            .map(|p| match p.name.as_str() {
                "bb_bw" => 2e11,
                "link_bw" | "down_bw" | "up_bw" => 12.5e9,
                "bb_lat" | "link_lat" => 1.5e-6,
                "xbus_bw" => 32e9,
                "pcie_bw" => 16e9,
                "factor_small" => 1.0,
                "factor_medium" => 0.7,
                "factor_large" => 0.9,
                "changepoint1_log2" => 13.0,
                "changepoint2_log2" => 17.0,
                other => panic!("unexpected parameter {other}"),
            })
            .collect();
        Calibration::new(values)
    }

    #[test]
    fn all_sixteen_versions_produce_rates() {
        let sizes = message_sizes();
        for version in MpiSimulatorVersion::all() {
            let sim = MpiSimulator::new(version);
            for b in BenchmarkKind::ALL {
                let rates = sim.transfer_rates(b, 16, &sizes, &calib_for(version));
                assert_eq!(rates.len(), 13, "{} {}", version.label(), b.name());
                assert!(
                    rates.iter().all(|&r| r > 0.0 && r.is_finite()),
                    "{} {}: {rates:?}",
                    version.label(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn rates_increase_with_message_size_under_latency_dominance() {
        // Small messages are latency-bound: rate grows with size.
        let version = MpiSimulatorVersion::lowest_detail();
        let sim = MpiSimulator::new(version);
        let sizes = message_sizes();
        let rates = sim.transfer_rates(BenchmarkKind::PingPong, 4, &sizes, &calib_for(version));
        assert!(rates[1] > rates[0], "{rates:?}");
    }

    #[test]
    fn pingpong_is_at_least_as_fast_as_pingping() {
        // PingPing has twice the concurrent flows -> more contention.
        let version = MpiSimulatorVersion::lowest_detail();
        let sim = MpiSimulator::new(version);
        let c = calib_for(version);
        let sizes = [4_194_304.0];
        let pong = sim.transfer_rates(BenchmarkKind::PingPong, 16, &sizes, &c)[0];
        let ping = sim.transfer_rates(BenchmarkKind::PingPing, 16, &sizes, &c)[0];
        assert!(pong >= ping, "pong {pong} vs ping {ping}");
    }

    #[test]
    fn backbone_contention_scales_with_node_count() {
        let version = MpiSimulatorVersion::lowest_detail();
        let sim = MpiSimulator::new(version);
        let c = calib_for(version);
        let sizes = [4_194_304.0];
        let r16 = sim.transfer_rates(BenchmarkKind::BiRandom, 16, &sizes, &c)[0];
        let r64 = sim.transfer_rates(BenchmarkKind::BiRandom, 64, &sizes, &c)[0];
        assert!(
            r64 < r16,
            "shared backbone must slow down at scale: {r16} -> {r64}"
        );
    }

    #[test]
    fn fat_tree_scales_better_than_backbone() {
        let bb = MpiSimulatorVersion::lowest_detail();
        let ft = MpiSimulatorVersion {
            topology: TopologyModel::FatTree,
            ..bb
        };
        let sizes = [4_194_304.0];
        let r_bb = MpiSimulator::new(bb).transfer_rates(
            BenchmarkKind::BiRandom,
            64,
            &sizes,
            &calib_for(bb),
        )[0];
        let r_ft = MpiSimulator::new(ft).transfer_rates(
            BenchmarkKind::BiRandom,
            64,
            &sizes,
            &calib_for(ft),
        )[0];
        assert!(r_ft > r_bb, "fat tree {r_ft} vs single backbone {r_bb}");
    }

    #[test]
    fn protocol_factor_is_piecewise_by_size() {
        let version = MpiSimulatorVersion::lowest_detail();
        let model = resolve(version, &calib_for(version));
        assert_eq!(model.protocol_factor(1024.0), 1.0);
        assert_eq!(model.protocol_factor(16_384.0), 0.7);
        assert_eq!(model.protocol_factor(1_048_576.0), 0.9);
    }

    #[test]
    fn arbitrary_changepoints_are_sorted() {
        let version = MpiSimulatorVersion {
            protocol: ProtocolModel::ArbitraryChangepoints,
            ..MpiSimulatorVersion::lowest_detail()
        };
        let space = version.parameter_space();
        let mut values = calib_for(version).values;
        // Swap the change points: 17 before 13.
        let i1 = space.index_of("changepoint1_log2").unwrap();
        let i2 = space.index_of("changepoint2_log2").unwrap();
        values[i1] = 17.0;
        values[i2] = 13.0;
        let model = resolve(version, &Calibration::new(values));
        assert_eq!(model.changepoints_log2, [13.0, 17.0]);
    }

    #[test]
    fn complex_node_pcie_contention_lowers_rates() {
        let simple = MpiSimulatorVersion::lowest_detail();
        let complex = MpiSimulatorVersion {
            node: NodeModel::Complex,
            ..simple
        };
        // Give the complex node a PCIe much slower than the network: the
        // six ranks of a node share it, so rates must drop.
        let space = complex.parameter_space();
        let mut values = calib_for(complex).values;
        values[space.index_of("pcie_bw").unwrap()] = 1e8;
        let sizes = [4_194_304.0];
        let r_simple = MpiSimulator::new(simple).transfer_rates(
            BenchmarkKind::PingPong,
            8,
            &sizes,
            &calib_for(simple),
        )[0];
        let r_complex = MpiSimulator::new(complex).transfer_rates(
            BenchmarkKind::PingPong,
            8,
            &sizes,
            &Calibration::new(values),
        )[0];
        assert!(r_complex < r_simple / 2.0, "{r_complex} vs {r_simple}");
    }

    #[test]
    fn deterministic_across_calls() {
        let version = MpiSimulatorVersion::highest_detail();
        let sim = MpiSimulator::new(version);
        let c = calib_for(version);
        let sizes = message_sizes();
        let a = sim.transfer_rates(BenchmarkKind::BiRandom, 32, &sizes, &c);
        let b = sim.transfer_rates(BenchmarkKind::BiRandom, 32, &sizes, &c);
        assert_eq!(a, b);
    }

    #[test]
    fn simulation_work_is_deterministic_and_orders_detail() {
        let lo = MpiSimulatorVersion::lowest_detail();
        let hi = MpiSimulatorVersion::highest_detail();
        let sizes = message_sizes();
        let w_lo = MpiSimulator::new(lo).simulation_work(
            BenchmarkKind::BiRandom,
            16,
            &sizes,
            &calib_for(lo),
        );
        let w_hi = MpiSimulator::new(hi).simulation_work(
            BenchmarkKind::BiRandom,
            16,
            &sizes,
            &calib_for(hi),
        );
        assert!(w_hi > w_lo, "detail must cost work: {w_lo} vs {w_hi}");
        let again = MpiSimulator::new(lo).simulation_work(
            BenchmarkKind::BiRandom,
            16,
            &sizes,
            &calib_for(lo),
        );
        assert_eq!(w_lo, again);
    }

    #[test]
    fn paper_scale_128_nodes_is_tractable() {
        let version = MpiSimulatorVersion::highest_detail();
        let sim = MpiSimulator::new(version);
        let start = std::time::Instant::now();
        let rates = sim.transfer_rates(
            BenchmarkKind::BiRandom,
            128,
            &message_sizes(),
            &calib_for(version),
        );
        assert!(rates.iter().all(|&r| r > 0.0));
        assert!(
            start.elapsed().as_millis() < 2_000,
            "128-node simulation too slow: {:?}",
            start.elapsed()
        );
    }
}
