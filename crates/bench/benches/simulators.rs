//! Criterion benches for both case-study simulators across their levels
//! of detail. The paper observes that "all simulators achieve comparable
//! simulation speed" within each case study — these benches verify that
//! property for our implementations and quantify the residual cost of the
//! higher-detail options.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::prelude::*;
use simcal::prelude::Calibration;
use std::hint::black_box;
use wfsim::prelude::*;

fn mid_calibration(dim: usize) -> Vec<f64> {
    vec![0.5; dim]
}

fn bench_wfsim_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("wfsim_versions");
    let wf = generate(&WorkflowSpec {
        app: AppKind::Genome1000,
        num_tasks: 54,
        work_per_task_secs: 1.47,
        data_footprint_bytes: 150e6,
        seed: 1,
    });
    for version in SimulatorVersion::all() {
        let sim = WorkflowSimulator::new(version);
        let space = version.parameter_space();
        let calib = space.denormalize(&mid_calibration(space.dim()));
        group.bench_with_input(
            BenchmarkId::from_parameter(version.label()),
            &calib,
            |b, calib: &Calibration| b.iter(|| black_box(sim.simulate(&wf, 4, calib).makespan)),
        );
    }
    group.finish();
}

fn bench_wfsim_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wfsim_task_count");
    let version = SimulatorVersion::highest_detail();
    let sim = WorkflowSimulator::new(version);
    let space = version.parameter_space();
    let calib = space.denormalize(&mid_calibration(space.dim()));
    for &n in &[54usize, 108, 270] {
        let wf = generate(&WorkflowSpec {
            app: AppKind::Genome1000,
            num_tasks: n,
            work_per_task_secs: 1.47,
            data_footprint_bytes: 150e6,
            seed: 1,
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &wf, |b, wf| {
            b.iter(|| black_box(sim.simulate(wf, 4, &calib).makespan))
        });
    }
    group.finish();
}

fn bench_mpisim_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_versions");
    let sizes = message_sizes();
    for version in MpiSimulatorVersion::all() {
        let sim = MpiSimulator::new(version);
        let space = version.parameter_space();
        let calib = space.denormalize(&mid_calibration(space.dim()));
        group.bench_with_input(
            BenchmarkId::from_parameter(version.label()),
            &calib,
            |b, calib: &Calibration| {
                b.iter(|| {
                    black_box(sim.transfer_rates(BenchmarkKind::BiRandom, 128, &sizes, calib))
                })
            },
        );
    }
    group.finish();
}

fn bench_mpisim_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_node_count");
    let version = MpiSimulatorVersion::highest_detail();
    let sim = MpiSimulator::new(version);
    let space = version.parameter_space();
    let calib = space.denormalize(&mid_calibration(space.dim()));
    let sizes = message_sizes();
    for &n in &NODE_COUNTS {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(sim.transfer_rates(BenchmarkKind::BiRandom, n, &sizes, &calib)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_wfsim_versions, bench_wfsim_scaling, bench_mpisim_versions, bench_mpisim_scaling
}
criterion_main!(benches);
