//! Criterion benches for the dessim kernel: max-min solver scaling and
//! discrete-event engine throughput. These quantify the cost side of the
//! level-of-detail trade-off the paper studies (more links and flows =
//! more detailed network models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dessim::{max_min_fair_share, ActivityKind, Engine, Platform, ReferenceEngine};
use std::hint::black_box;

/// The clustered workload shared with the `engine_scaling` binary (see
/// [`lodcal_bench::workloads::clustered`]): link contention decomposes
/// into many small groups, the regime the incremental engine targets.
fn clustered_workload(n: usize) -> (Platform, Vec<(ActivityKind, u64)>) {
    lodcal_bench::workloads::clustered(n)
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    for &n in &[1_000usize, 10_000] {
        let (p, batch) = clustered_workload(n);
        group.bench_with_input(BenchmarkId::new("incremental", n), &(), |b, _| {
            b.iter(|| {
                let mut e = Engine::new(p.clone());
                e.add_activities(batch.clone());
                black_box(e.run_to_completion().len())
            })
        });
        // The seed's full-recompute + linear-scan engine, kept as the
        // baseline: O(activities) work per event.
        group.bench_with_input(BenchmarkId::new("reference", n), &(), |b, _| {
            b.iter(|| {
                let mut e = ReferenceEngine::new(p.clone());
                e.add_activities(batch.clone());
                black_box(e.run_to_completion().len())
            })
        });
    }
    // Headroom point: the reference engine is quadratic and impractical
    // here, so only the incremental engine runs at this size.
    for &n in &[50_000usize, 200_000] {
        let (p, batch) = clustered_workload(n);
        group.bench_with_input(BenchmarkId::new("incremental", n), &(), |b, _| {
            b.iter(|| {
                let mut e = Engine::new(p.clone());
                e.add_activities(batch.clone());
                black_box(e.run_to_completion().len())
            })
        });
    }
    group.finish();
}

fn bench_max_min(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_min_fair_share");
    for &(n_links, n_flows) in &[(8usize, 32usize), (64, 256), (256, 1024), (512, 3072)] {
        let caps: Vec<f64> = (0..n_links).map(|i| 1e9 + (i as f64) * 1e6).collect();
        // Flows over 3-link routes spread deterministically.
        let routes: Vec<Vec<usize>> = (0..n_flows)
            .map(|f| vec![f % n_links, (f * 7 + 1) % n_links, (f * 13 + 2) % n_links])
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_links}l_{n_flows}f")),
            &(caps, routes),
            |b, (caps, routes)| b.iter(|| black_box(max_min_fair_share(caps, routes))),
        );
    }
    group.finish();
}

fn bench_engine_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &n in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("timers", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = Engine::new(Platform::new());
                for i in 0..n {
                    e.add_activity(ActivityKind::timer((i % 17) as f64 + 0.5), i as u64);
                }
                black_box(e.run_to_completion().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("shared_link_flows", n), &n, |b, &n| {
            b.iter(|| {
                let mut p = Platform::new();
                let l = p.add_link(1e9, 1e-4);
                let mut e = Engine::new(p);
                for i in 0..n {
                    e.add_activity(
                        ActivityKind::flow(vec![l], 1e6 + (i as f64) * 1e3),
                        i as u64,
                    );
                }
                black_box(e.run_to_completion().len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_max_min, bench_engine_events, bench_engine_scaling
}
criterion_main!(benches);
