//! Criterion benches for the calibration framework itself: surrogate
//! fit/predict cost and end-to-end optimizer throughput on an analytic
//! objective (bounding the *overhead* of the calibration process on top
//! of the simulator invocations), plus `calibration_throughput`, which
//! measures evaluation throughput on the real workflow objective and is
//! the headline number for the two-level parallel evaluation pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::ThreadPool;
use simcal::prelude::*;
use std::hint::black_box;
use wfsim::prelude as wf;

fn training_data(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = numeric::rng_from_seed(7);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|p| p.iter().map(|v| (v - 0.4) * (v - 0.4)).sum::<f64>())
        .collect();
    (x, y)
}

fn bench_surrogate_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate_fit_n100_d8");
    let (x, y) = training_data(100, 8);
    for kind in SurrogateKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut s = kind.build(1);
                    s.fit(&x, &y);
                    black_box(s.predict(&[0.5; 8]))
                })
            },
        );
    }
    group.finish();
}

fn bench_surrogate_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate_predict_n100_d8");
    let (x, y) = training_data(100, 8);
    for kind in SurrogateKind::ALL {
        let mut s = kind.build(1);
        s.fit(&x, &y);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| black_box(s.predict(&[0.31; 8])))
        });
    }
    group.finish();
}

fn bench_algorithms_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_100_evals_d6");
    group.sample_size(10);
    let mut space = ParameterSpace::new();
    for i in 0..6 {
        space.add(&format!("x{i}"), ParamKind::Continuous { lo: 0.0, hi: 1.0 });
    }
    for kind in [
        AlgorithmKind::Random,
        AlgorithmKind::Grid,
        AlgorithmKind::Gradient,
        AlgorithmKind::BoGp,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let obj = FnObjective::new(
                        ParameterSpace::new()
                            .with("a", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("b", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("c", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("d", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("e", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("f", ParamKind::Continuous { lo: 0.0, hi: 1.0 }),
                        |calib: &Calibration| {
                            calib.values.iter().map(|v| (v - 0.6) * (v - 0.6)).sum()
                        },
                    );
                    let r = Calibrator {
                        algorithm: kind,
                        budget: Budget::Evaluations(100),
                        seed: 3,
                    }
                    .calibrate(&obj);
                    black_box(r.loss)
                })
            },
        );
    }
    group.finish();
}

/// Seed-pipeline shape, kept as the throughput baseline: parallel across
/// candidate points only, each point's scenario sweep sequential. Wrapping
/// the real objective and inheriting the trait's *default*
/// `par_loss_batch` reproduces that shape exactly — a BO batch of 4 can
/// never occupy more than 4 workers, and one slow high-LoD point
/// serializes its whole scenario sweep.
struct PointLevelOnly<'a, O: ?Sized>(&'a O);

impl<O: Objective + ?Sized> Objective for PointLevelOnly<'_, O> {
    fn space(&self) -> &ParameterSpace {
        self.0.space()
    }
    fn loss(&self, calibration: &Calibration) -> f64 {
        self.0.loss(calibration)
    }
}

/// Thread counts to sweep: 1, 4, and the machine width, deduplicated.
fn thread_sweep() -> Vec<usize> {
    let n = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut ts = vec![1, 4, n];
    ts.sort_unstable();
    ts.dedup();
    ts
}

/// Evaluation throughput (points/sec = 1 / (time-per-iter / 4)) on the
/// real workflow objective: a fixed BO-style batch of 4 candidate points
/// over a 64-scenario Table-1 sub-grid, comparing the point-level-only
/// baseline against the two-level (point x scenario) fan-out at 1, 4, and
/// N threads, plus end-to-end RAND and BO-GP runs at the same widths.
fn bench_calibration_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration_throughput");
    group.sample_size(10);
    let records = wf::dataset_for(
        wf::AppKind::Forkjoin,
        &wf::DatasetOptions {
            repetitions: 2,
            size_indices: vec![0, 1],
            work_indices: vec![0, 1, 2, 3],
            footprint_indices: vec![0, 2],
            worker_counts: vec![1, 2, 4, 6],
            ..Default::default()
        },
    );
    let scenarios = wf::WfScenario::from_records(&records);
    assert!(
        scenarios.len() >= 64,
        "throughput bench needs a >= 64-scenario dataset, got {}",
        scenarios.len()
    );
    let sim = wf::WorkflowSimulator::new(wf::SimulatorVersion::lowest_detail());
    let obj = wf::objective(
        &sim,
        &scenarios,
        StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
    );

    // Fixed BO-style proposal batch of 4 points.
    let mut rng = numeric::rng_from_seed(11);
    let dim = obj.space().dim();
    let batch: Vec<Calibration> = (0..4)
        .map(|_| {
            let unit: Vec<f64> = (0..dim).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect();
            obj.space().denormalize(&unit)
        })
        .collect();

    for t in thread_sweep() {
        let pool = ThreadPool::new(t);
        let baseline = PointLevelOnly(&obj);
        group.bench_with_input(
            BenchmarkId::new("batch4_seq_scenario", t),
            &batch,
            |b, batch| b.iter(|| pool.install(|| black_box(baseline.par_loss_batch(batch)))),
        );
        group.bench_with_input(
            BenchmarkId::new("batch4_two_level", t),
            &batch,
            |b, batch| b.iter(|| pool.install(|| black_box(obj.par_loss_batch(batch)))),
        );
        for (label, algorithm) in [
            ("rand_32evals", AlgorithmKind::Random),
            ("bo_gp_32evals", AlgorithmKind::BoGp),
        ] {
            group.bench_with_input(BenchmarkId::new(label, t), &algorithm, |b, &algorithm| {
                b.iter(|| {
                    let r = pool.install(|| {
                        Calibrator {
                            algorithm,
                            budget: Budget::Evaluations(32),
                            seed: 5,
                        }
                        .calibrate(&obj)
                    });
                    black_box(r.loss)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_surrogate_fit, bench_surrogate_predict, bench_algorithms_end_to_end,
        bench_calibration_throughput
}
criterion_main!(benches);
