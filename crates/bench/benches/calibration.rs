//! Criterion benches for the calibration framework itself: surrogate
//! fit/predict cost and end-to-end optimizer throughput on an analytic
//! objective. These bound the *overhead* of the calibration process on
//! top of the simulator invocations (which dominate in real use).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcal::prelude::*;
use std::hint::black_box;

fn training_data(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = numeric::rng_from_seed(7);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|p| p.iter().map(|v| (v - 0.4) * (v - 0.4)).sum::<f64>())
        .collect();
    (x, y)
}

fn bench_surrogate_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate_fit_n100_d8");
    let (x, y) = training_data(100, 8);
    for kind in SurrogateKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut s = kind.build(1);
                    s.fit(&x, &y);
                    black_box(s.predict(&[0.5; 8]))
                })
            },
        );
    }
    group.finish();
}

fn bench_surrogate_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate_predict_n100_d8");
    let (x, y) = training_data(100, 8);
    for kind in SurrogateKind::ALL {
        let mut s = kind.build(1);
        s.fit(&x, &y);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| black_box(s.predict(&[0.31; 8])))
        });
    }
    group.finish();
}

fn bench_algorithms_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_100_evals_d6");
    group.sample_size(10);
    let mut space = ParameterSpace::new();
    for i in 0..6 {
        space.add(&format!("x{i}"), ParamKind::Continuous { lo: 0.0, hi: 1.0 });
    }
    for kind in [
        AlgorithmKind::Random,
        AlgorithmKind::Grid,
        AlgorithmKind::Gradient,
        AlgorithmKind::BoGp,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let obj = FnObjective::new(
                        ParameterSpace::new()
                            .with("a", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("b", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("c", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("d", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("e", ParamKind::Continuous { lo: 0.0, hi: 1.0 })
                            .with("f", ParamKind::Continuous { lo: 0.0, hi: 1.0 }),
                        |calib: &Calibration| {
                            calib.values.iter().map(|v| (v - 0.6) * (v - 0.6)).sum()
                        },
                    );
                    let r = Calibrator {
                        algorithm: kind,
                        budget: Budget::Evaluations(100),
                        seed: 3,
                    }
                    .calibrate(&obj);
                    black_box(r.loss)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_surrogate_fit, bench_surrogate_predict, bench_algorithms_end_to_end
}
criterion_main!(benches);
