//! Shared plumbing for the case-study-2 (MPI) experiment binaries.

use mpisim::prelude::*;
use simcal::prelude::*;

/// Node counts used by the experiments. The paper runs 128/256/512; the
/// `--fast` grid shrinks the base scale (contention structure is
//  preserved) so smoke runs finish in seconds.
pub fn node_counts(fast: bool) -> Vec<usize> {
    if fast {
        vec![32, 64, 128]
    } else {
        NODE_COUNTS.to_vec()
    }
}

/// Ground-truth emulator configuration for the experiments.
pub fn emulator_config(fast: bool) -> MpiEmulatorConfig {
    MpiEmulatorConfig {
        repetitions: if fast { 3 } else { 5 },
        ..Default::default()
    }
}

/// Calibrate `version` against `train` under `loss`.
pub fn calibrate_version(
    version: MpiSimulatorVersion,
    train: &[MpiScenario],
    loss: MatrixLoss,
    budget: Budget,
    seed: u64,
) -> CalibrationResult {
    let sim = MpiSimulator::new(version);
    let obj = objective(&sim, train, loss);
    Calibrator::bo_gp(budget, seed).calibrate(&obj)
}

/// Calibrate with `restarts` independent seeds, keeping the calibration
/// with the lowest *training* loss.
pub fn calibrate_version_best_of(
    version: MpiSimulatorVersion,
    train: &[MpiScenario],
    loss: MatrixLoss,
    budget: Budget,
    seed: u64,
    restarts: usize,
) -> CalibrationResult {
    (0..restarts.max(1))
        .map(|r| {
            calibrate_version(
                version,
                train,
                loss.clone(),
                budget,
                seed ^ (r as u64) << 32,
            )
        })
        .min_by(|a, b| {
            a.loss
                .partial_cmp(&b.loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one restart")
}

/// Percent relative transfer-rate error (averaged over message sizes) of
/// `calibration` on each scenario.
pub fn rate_errors(
    version: MpiSimulatorVersion,
    calibration: &Calibration,
    scenarios: &[MpiScenario],
) -> Vec<f64> {
    let sim = MpiSimulator::new(version);
    scenarios
        .iter()
        .map(|s| mean_relative_rate_error(&sim, s, calibration))
        .collect()
}
