//! Shared plumbing for the case-study-2 (MPI) experiment binaries.

use mpisim::prelude::*;
use simcal::prelude::*;

// The experiment grid lives with the sweepable family definition now; the
// old paths keep working for the single-version binaries.
pub use lodsel::families::mpi::{dataset_fingerprint, emulator_config, node_counts};

/// Cache fingerprint of one (version, training set, loss) calibration —
/// the same identity the MPI sweep family uses, so standalone binaries
/// and sweeps share persistent-cache entries.
pub fn cache_fingerprint(
    version: MpiSimulatorVersion,
    train: &[MpiScenario],
    loss: &MatrixLoss,
) -> CacheFingerprint {
    CacheFingerprint::of(
        "mpi",
        &version.label(),
        dataset_fingerprint(train, loss.name()),
    )
}

/// Calibrate `version` against `train` under `loss`.
pub fn calibrate_version(
    version: MpiSimulatorVersion,
    train: &[MpiScenario],
    loss: MatrixLoss,
    budget: Budget,
    seed: u64,
) -> CalibrationResult {
    let sim = MpiSimulator::new(version);
    let fingerprint = cache_fingerprint(version, train, &loss);
    let obj = objective(&sim, train, loss).with_cache_fingerprint(fingerprint);
    Calibrator::bo_gp(budget, seed).calibrate(&obj)
}

/// Calibrate with `restarts` independent seeds, keeping the calibration
/// with the lowest *training* loss. Thin wrapper over the shared
/// multi-start helper (same seed derivation and tie-breaking as every
/// other case study).
pub fn calibrate_version_best_of(
    version: MpiSimulatorVersion,
    train: &[MpiScenario],
    loss: MatrixLoss,
    budget: Budget,
    seed: u64,
    restarts: usize,
) -> CalibrationResult {
    let sim = MpiSimulator::new(version);
    let fingerprint = cache_fingerprint(version, train, &loss);
    let obj = objective(&sim, train, loss).with_cache_fingerprint(fingerprint);
    lodsel::multistart::calibrate_best_of(&obj, budget, seed, restarts)
}

/// Percent relative transfer-rate error (averaged over message sizes) of
/// `calibration` on each scenario.
pub fn rate_errors(
    version: MpiSimulatorVersion,
    calibration: &Calibration,
    scenarios: &[MpiScenario],
) -> Vec<f64> {
    let sim = MpiSimulator::new(version);
    scenarios
        .iter()
        .map(|s| mean_relative_rate_error(&sim, s, calibration))
        .collect()
}
