//! Deterministic kernel workloads shared by the `engine_scaling`
//! Criterion bench and the `engine_scaling` measurement binary.
//!
//! Two shapes, chosen to exercise the two structural regimes of the
//! incremental engine:
//!
//! - [`clustered`]: many small independent sharing components. Per-event
//!   cost is bounded by the component size, so throughput measures the
//!   constant factors of the hot path (storage layout, heap, solver).
//! - [`backbone`]: one giant connected component — every group of links
//!   is bridged to a shared backbone by a few long-lived cross flows.
//!   A whole-component re-solve is `O(n)` per event here; only a
//!   frontier-limited re-solve keeps events local.

use dessim::{ActivityKind, Platform};

/// Links per group in both workloads.
pub const LINKS_PER_GROUP: usize = 4;

/// A large mixed workload whose link contention decomposes into many
/// small connected components: groups of 4 links (group count scaling
/// with `n` so components stay ~128 activities), every flow routed
/// inside one group, plus computes and timers.
pub fn clustered(n: usize) -> (Platform, Vec<(ActivityKind, u64)>) {
    let groups = (n / 128).max(16);
    let mut p = Platform::new();
    let links: Vec<Vec<_>> = (0..groups)
        .map(|g| {
            (0..LINKS_PER_GROUP)
                .map(|i| p.add_link(1e9 + ((g * LINKS_PER_GROUP + i) as f64) * 1e6, 0.0))
                .collect()
        })
        .collect();
    let batch = (0..n)
        .map(|i| {
            let kind = match i % 8 {
                0 => ActivityKind::compute(1e9 + (i as f64) * 1e3, 1e9),
                1 => ActivityKind::timer(0.5 + (i % 97) as f64 * 0.01),
                _ => {
                    let group = &links[i % groups];
                    let a = group[i % LINKS_PER_GROUP];
                    let b = group[(i / groups + 1) % LINKS_PER_GROUP];
                    let route = if a == b { vec![a] } else { vec![a, b] };
                    ActivityKind::flow(route, 1e6 + (i as f64) * 37.0)
                }
            };
            (kind, i as u64)
        })
        .collect();
    (p, batch)
}

/// Number of backbone-crossing flows in the [`backbone`] workload,
/// independent of `n`: enough to weld every group into one connected
/// component, few enough that a frontier-limited solve stays cheap.
pub const BACKBONE_CROSS_FLOWS: usize = 64;

/// A single-component workload: the [`clustered`] group structure plus
/// one low-capacity backbone link and [`BACKBONE_CROSS_FLOWS`] long
/// cross flows, each routed over the backbone and one group link. The
/// backbone's capacity is chosen so cross flows bottleneck *on the
/// backbone* (its fair share is far below any group share); group-local
/// events therefore never change a cross flow's rate, and a
/// frontier-limited re-solve touches one group plus the backbone
/// instead of the whole `n`-activity component.
pub fn backbone(n: usize) -> (Platform, Vec<(ActivityKind, u64)>) {
    let groups = (n / 128).max(16);
    let mut p = Platform::new();
    // Backbone fair share ~1e6/s per cross flow vs ~1e7/s group shares.
    let bb = p.add_link(BACKBONE_CROSS_FLOWS as f64 * 1e6, 0.0);
    let links: Vec<Vec<_>> = (0..groups)
        .map(|g| {
            (0..LINKS_PER_GROUP)
                .map(|i| p.add_link(1e9 + ((g * LINKS_PER_GROUP + i) as f64) * 1e6, 0.0))
                .collect()
        })
        .collect();
    let mut batch: Vec<(ActivityKind, u64)> = Vec::with_capacity(n);
    for i in 0..n.saturating_sub(BACKBONE_CROSS_FLOWS) {
        let kind = match i % 8 {
            0 => ActivityKind::compute(1e9 + (i as f64) * 1e3, 1e9),
            1 => ActivityKind::timer(0.5 + (i % 97) as f64 * 0.01),
            _ => {
                let group = &links[i % groups];
                let a = group[i % LINKS_PER_GROUP];
                let b = group[(i / groups + 1) % LINKS_PER_GROUP];
                let route = if a == b { vec![a] } else { vec![a, b] };
                ActivityKind::flow(route, 1e6 + (i as f64) * 37.0)
            }
        };
        batch.push((kind, i as u64));
    }
    // Long-lived cross flows: large enough to stay active for most of
    // the run, welding every `i % groups`-th group to the backbone.
    let base = batch.len();
    for c in 0..BACKBONE_CROSS_FLOWS.min(n) {
        let group = &links[(c * (groups / BACKBONE_CROSS_FLOWS).max(1)) % groups];
        let route = vec![bb, group[c % LINKS_PER_GROUP]];
        batch.push((
            ActivityKind::flow(route, 1e9 + (c as f64) * 1e5),
            (base + c) as u64,
        ));
    }
    (p, batch)
}
