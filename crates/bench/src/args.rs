//! Minimal shared CLI parsing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! - `--budget-evals N`  — loss evaluations per calibration (deterministic);
//! - `--budget-secs S`   — wall-clock seconds per calibration (overrides
//!   evaluations when both are given, mirroring the paper's fixed
//!   time-budget comparisons);
//! - `--seed S`          — master seed;
//! - `--fast`            — shrink the experiment grid for a quick smoke run;
//! - `--tsv PATH`        — also write the result rows as TSV;
//! - `--uncalibrated`    — where applicable, add the spec-based baseline;
//! - `--ledger PATH`     — for sweep-driven binaries: checkpoint completed
//!   work to (and resume it from) a lodsel run ledger;
//! - `--cache DIR`       — persistent loss-cache directory (see
//!   [`simcal::cache`]; overrides the `CALIB_CACHE` environment variable);
//! - `--epsilon F`       — recommendation tolerance for those binaries;
//! - `--trace PATH`      — record an `obs` JSONL trace of the run
//!   (summarize it later with `lodsel --trace-report PATH`).
//!
//! Output convention: result tables go to stdout, diagnostics go to
//! stderr via [`obs::diag!`] (prefixed with the binary name), and
//! machine-readable artifacts go to `--tsv`/`--ledger`/`--trace` files.

use lodsel::ledger::Ledger;
use simcal::prelude::Budget;
use std::sync::Arc;
use std::time::Duration;

/// Parsed common arguments.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Per-calibration budget.
    pub budget: Budget,
    /// Master seed.
    pub seed: u64,
    /// Reduced-grid smoke mode.
    pub fast: bool,
    /// Optional TSV output path.
    pub tsv: Option<String>,
    /// Include the uncalibrated spec-based baseline.
    pub uncalibrated: bool,
    /// Optional lodsel run-ledger path (sweep-driven binaries only).
    pub ledger: Option<String>,
    /// Optional persistent loss-cache directory.
    pub cache: Option<String>,
    /// Recommendation tolerance (sweep-driven binaries only).
    pub epsilon: f64,
    /// Optional JSONL trace output path.
    pub trace: Option<String>,
}

impl ExpArgs {
    /// Parse from `std::env::args`, with a default evaluation budget.
    ///
    /// Exits with a usage message on an unknown flag.
    pub fn parse(default_evals: usize) -> ExpArgs {
        let mut budget_evals = default_evals;
        let mut budget_secs: Option<f64> = None;
        let mut seed = 20250706u64;
        let mut fast = false;
        let mut tsv = None;
        let mut uncalibrated = false;
        let mut ledger = None;
        let mut cache = None;
        let mut epsilon = 0.1;
        let mut trace = None;

        fn bad(what: &str, err: impl std::fmt::Display) -> ! {
            obs::diag!("invalid {what}: {err}");
            std::process::exit(2);
        }

        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i)
                    .unwrap_or_else(|| {
                        obs::diag!("missing value for {}", args[*i - 1]);
                        std::process::exit(2);
                    })
                    .clone()
            };
            match args[i].as_str() {
                "--budget-evals" => {
                    budget_evals = take_value(&mut i)
                        .parse()
                        .unwrap_or_else(|e| bad("--budget-evals", e))
                }
                "--budget-secs" => {
                    budget_secs = Some(
                        take_value(&mut i)
                            .parse()
                            .unwrap_or_else(|e| bad("--budget-secs", e)),
                    )
                }
                "--seed" => {
                    seed = take_value(&mut i)
                        .parse()
                        .unwrap_or_else(|e| bad("--seed", e))
                }
                "--fast" => fast = true,
                "--tsv" => tsv = Some(take_value(&mut i)),
                "--uncalibrated" => uncalibrated = true,
                "--ledger" => ledger = Some(take_value(&mut i)),
                "--cache" => cache = Some(take_value(&mut i)),
                "--epsilon" => {
                    epsilon = take_value(&mut i)
                        .parse()
                        .unwrap_or_else(|e| bad("--epsilon", e))
                }
                "--trace" => trace = Some(take_value(&mut i)),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --budget-evals N | --budget-secs S | --seed S | --fast | \
                         --tsv PATH | --uncalibrated | --ledger PATH | --cache DIR | \
                         --epsilon F | --trace PATH"
                    );
                    std::process::exit(0);
                }
                other => {
                    obs::diag!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
            i += 1;
        }

        let budget = match budget_secs {
            Some(s) => Budget::WallClock(Duration::from_secs_f64(s)),
            None => Budget::Evaluations(budget_evals),
        };
        ExpArgs {
            budget,
            seed,
            fast,
            tsv,
            uncalibrated,
            ledger,
            cache,
            epsilon,
            trace,
        }
    }

    /// If `--cache` was given, install it as the process-global
    /// persistent loss-cache directory (see [`simcal::cache::install`]).
    pub fn install_cache(&self) {
        if let Some(dir) = &self.cache {
            simcal::cache::install(dir.clone());
        }
    }

    /// Open the run ledger if `--ledger` was given; exits on I/O errors
    /// (a requested-but-unusable ledger should never silently degrade to
    /// a non-resumable sweep).
    pub fn open_ledger(&self) -> Option<Ledger> {
        self.ledger.as_ref().map(|path| {
            Ledger::open(path).unwrap_or_else(|e| {
                obs::diag!("cannot open ledger {path}: {e}");
                std::process::exit(2);
            })
        })
    }

    /// If `--trace` was given, install a fresh global [`obs::TraceRecorder`]
    /// (enabling all instrumentation) and return it. Call
    /// [`ExpArgs::write_trace`] after the measured work to serialize it.
    pub fn install_trace(&self) -> Option<Arc<obs::TraceRecorder>> {
        self.trace.as_ref().map(|_| {
            let rec = Arc::new(obs::TraceRecorder::new());
            obs::install(rec.clone());
            rec
        })
    }

    /// Uninstall the recorder from [`ExpArgs::install_trace`] and write
    /// the trace to the `--trace` path. A write failure is diagnosed but
    /// not fatal (the run's results are already on stdout).
    pub fn write_trace(&self, recorder: Option<Arc<obs::TraceRecorder>>) {
        let (Some(path), Some(rec)) = (&self.trace, recorder) else {
            return;
        };
        obs::uninstall();
        match rec.write_jsonl(std::path::Path::new(path)) {
            Ok(()) => obs::diag!("wrote trace {path}"),
            Err(e) => obs::diag!("failed to write trace {path}: {e}"),
        }
    }

    /// Write `table` to the TSV path if one was requested.
    pub fn maybe_write_tsv(&self, table: &crate::report::Table) {
        if let Some(path) = &self.tsv {
            if let Err(e) = table.write_tsv(std::path::Path::new(path)) {
                obs::diag!("failed to write {path}: {e}");
            } else {
                obs::diag!("wrote {path}");
            }
        }
    }
}
