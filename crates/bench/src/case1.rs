//! Shared plumbing for the case-study-1 (workflow) experiment binaries.
//!
//! The paper's 9,200-execution ground-truth grid takes days of testbed
//! time; our emulated grid is cheap, but calibrating 12 versions x 5
//! applications must still fit in minutes on one core, so the experiment
//! binaries run on a documented sub-grid of Table 1 (configurable via
//! `--fast` and the budget flags).

use simcal::prelude::*;
use wfsim::prelude::*;

/// The Table 1 sub-grid the experiments use by default: the two smallest
/// workflow sizes (the split still yields large-vs-small test structure),
/// one short and one long per-task work, a zero and a mid data footprint,
/// and all four worker counts.
pub fn dataset_options(fast: bool, seed: u64) -> DatasetOptions {
    if fast {
        DatasetOptions {
            repetitions: 2,
            seed,
            size_indices: vec![0, 1],
            work_indices: vec![1],
            footprint_indices: vec![1],
            worker_counts: vec![1, 2, 4, 6],
            ..Default::default()
        }
    } else {
        DatasetOptions {
            repetitions: 3,
            seed,
            size_indices: vec![0, 1, 2],
            work_indices: vec![0, 3],
            footprint_indices: vec![0, 2],
            worker_counts: vec![1, 2, 4, 6],
            ..Default::default()
        }
    }
}

/// Calibrate `version` against `train` under `loss`, returning the result.
pub fn calibrate_version(
    version: SimulatorVersion,
    train: &[WfScenario],
    loss: StructuredLoss,
    budget: Budget,
    seed: u64,
) -> CalibrationResult {
    let sim = WorkflowSimulator::new(version);
    let obj = objective(&sim, train, loss);
    Calibrator::bo_gp(budget, seed).calibrate(&obj)
}

/// Calibrate with `restarts` independent seeds, keeping the calibration
/// with the lowest *training* loss (what a practitioner does with a
/// multi-start optimizer; no test data is consulted).
pub fn calibrate_version_best_of(
    version: SimulatorVersion,
    train: &[WfScenario],
    loss: StructuredLoss,
    budget: Budget,
    seed: u64,
    restarts: usize,
) -> CalibrationResult {
    (0..restarts.max(1))
        .map(|r| {
            calibrate_version(
                version,
                train,
                loss.clone(),
                budget,
                seed ^ (r as u64) << 32,
            )
        })
        .min_by(|a, b| {
            a.loss
                .partial_cmp(&b.loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one restart")
}

/// Percent relative makespan error of `calibration` on each scenario.
pub fn makespan_errors(
    version: SimulatorVersion,
    calibration: &Calibration,
    scenarios: &[WfScenario],
) -> Vec<f64> {
    let sim = WorkflowSimulator::new(version);
    scenarios
        .iter()
        .map(|s| {
            let out = sim.simulate(&s.workflow, s.n_workers, calibration);
            relative_error(s.gt_makespan, out.makespan)
        })
        .collect()
}

/// Loss of a fixed calibration on a scenario set, under a loss function.
pub fn fixed_loss(
    version: SimulatorVersion,
    calibration: &Calibration,
    scenarios: &[WfScenario],
    loss: &StructuredLoss,
) -> f64 {
    let sim = WorkflowSimulator::new(version);
    let outs: Vec<ScenarioError> = scenarios.iter().map(|s| sim.run(s, calibration)).collect();
    loss.aggregate(&outs)
}

/// Summary statistics `(avg, min, max)` of a slice.
pub fn summarize(xs: &[f64]) -> (f64, f64, f64) {
    (numeric::mean(xs), numeric::min(xs), numeric::max(xs))
}
