//! Shared plumbing for the case-study-1 (workflow) experiment binaries.
//!
//! The paper's 9,200-execution ground-truth grid takes days of testbed
//! time; our emulated grid is cheap, but calibrating 12 versions x 5
//! applications must still fit in minutes on one core, so the experiment
//! binaries run on a documented sub-grid of Table 1 (configurable via
//! `--fast` and the budget flags).

use simcal::prelude::*;
use wfsim::prelude::*;

// The experiment grid lives with the sweepable family definition now; the
// old path keeps working for the single-version binaries.
pub use lodsel::families::wf::dataset_options;

/// Calibrate `version` against `train` under `loss`, returning the result.
pub fn calibrate_version(
    version: SimulatorVersion,
    train: &[WfScenario],
    loss: StructuredLoss,
    budget: Budget,
    seed: u64,
) -> CalibrationResult {
    let sim = WorkflowSimulator::new(version);
    let obj = objective(&sim, train, loss);
    Calibrator::bo_gp(budget, seed).calibrate(&obj)
}

/// Percent relative makespan error of `calibration` on each scenario.
pub fn makespan_errors(
    version: SimulatorVersion,
    calibration: &Calibration,
    scenarios: &[WfScenario],
) -> Vec<f64> {
    let sim = WorkflowSimulator::new(version);
    scenarios
        .iter()
        .map(|s| {
            let out = sim.simulate(&s.workflow, s.n_workers, calibration);
            relative_error(s.gt_makespan, out.makespan)
        })
        .collect()
}

/// Loss of a fixed calibration on a scenario set, under a loss function.
pub fn fixed_loss(
    version: SimulatorVersion,
    calibration: &Calibration,
    scenarios: &[WfScenario],
    loss: &StructuredLoss,
) -> f64 {
    let sim = WorkflowSimulator::new(version);
    let outs: Vec<ScenarioError> = scenarios.iter().map(|s| sim.run(s, calibration)).collect();
    loss.aggregate(&outs)
}

/// Summary statistics `(avg, min, max)` of a slice.
pub fn summarize(xs: &[f64]) -> (f64, f64, f64) {
    (numeric::mean(xs), numeric::min(xs), numeric::max(xs))
}
