//! # lodcal-bench — experiment harness
//!
//! Shared plumbing for the binaries under `src/bin/`, each of which
//! regenerates one table or figure of the paper (see DESIGN.md for the
//! per-experiment index), and for the Criterion benches under `benches/`.

pub mod args;
pub mod case1;
pub mod case2;
pub mod workloads;

// The table renderer moved into the lodsel subsystem (sweep drivers and
// experiment binaries share it); the old path keeps working.
pub use lodsel::report;
