//! Regenerates the **§5.5 training-data-diversity results**:
//!
//! 1. Calibrations trained on a single sequential-work value and a single
//!    data-footprint value lose accuracy on the test set — worst when the
//!    training set has zero work and/or zero footprint (some simulated
//!    components are never exercised).
//! 2. Calibrations trained only on the synthetic chain and/or forkjoin
//!    benchmarks, tested on real-application ground truth: chain-only is
//!    worst (no parallelism in training), forkjoin-only loses 1.2x-3.5x,
//!    both-together is hurt by the costlier loss evaluation.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin sec5_5 [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::{calibrate_version, dataset_options, fixed_loss};
use lodcal_bench::report::Table;
use simcal::prelude::*;
use wfsim::prelude::*;

fn main() {
    let args = ExpArgs::parse(100);
    let opts = dataset_options(args.fast, args.seed);
    let version = SimulatorVersion::highest_detail();
    let loss = StructuredLoss::paper_set()[0].clone();
    let app = AppKind::Genome1000;

    let records = dataset_for(app, &opts);
    let (train_full, test) = split_train_test(&records);
    let test_scenarios = WfScenario::from_records(&test);

    // Mean over three independent calibration seeds: this experiment is
    // about the *expected* effect of a training-set choice, and a single
    // lucky calibration can mask an unidentifiable parameter (e.g. disk
    // concurrency is invisible to single-worker chain training).
    let calibrate_and_test = |train: &[GroundTruthRecord]| -> f64 {
        let scenarios = WfScenario::from_records(train);
        let losses: Vec<f64> = (0..3u64)
            .map(|r| {
                let result = calibrate_version(
                    version,
                    &scenarios,
                    loss.clone(),
                    args.budget,
                    args.seed ^ r << 32,
                );
                fixed_loss(version, &result.calibration, &test_scenarios, &loss)
            })
            .collect();
        numeric::mean(&losses)
    };

    // --- Part 1: restrict work / footprint diversity -------------------
    let baseline = calibrate_and_test(&train_full);
    println!("§5.5 part 1: diversity of work and footprint in the training set\n");
    let mut t1 = Table::new(&["training set", "test loss", "vs diverse (x)"]);
    t1.row(vec![
        "diverse (default §5.4 training set)".into(),
        format!("{baseline:.4}"),
        "1.0".into(),
    ]);

    // Work/footprint values present in the emitted records.
    let mut works: Vec<f64> = train_full
        .iter()
        .map(|r| r.spec.work_per_task_secs)
        .collect();
    works.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    works.dedup();
    let mut fps: Vec<f64> = train_full
        .iter()
        .map(|r| r.spec.data_footprint_bytes)
        .collect();
    fps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    fps.dedup();

    let mut degraded = 0usize;
    let mut cases = 0usize;
    for &w in &works {
        for &f in &fps {
            let restricted: Vec<GroundTruthRecord> = train_full
                .iter()
                .filter(|r| r.spec.work_per_task_secs == w && r.spec.data_footprint_bytes == f)
                .cloned()
                .collect();
            if restricted.is_empty() || restricted.len() == train_full.len() {
                continue;
            }
            let l = calibrate_and_test(&restricted);
            cases += 1;
            if l > baseline {
                degraded += 1;
            }
            t1.row(vec![
                format!("single work={w}s footprint={:.0}MB", f / 1e6),
                format!("{l:.4}"),
                format!("{:.1}", l / baseline.max(1e-12)),
            ]);
        }
    }
    println!("{}", t1.render());
    if cases > 0 {
        println!("restricted training degraded the test loss in {degraded}/{cases} cases\n");
    }

    // --- Part 2: synthetic-benchmark-only training ----------------------
    println!(
        "§5.5 part 2: training on chain / forkjoin only, testing on {}\n",
        app.name()
    );
    let chain = dataset_for(AppKind::Chain, &opts);
    let forkjoin = dataset_for(AppKind::Forkjoin, &opts);
    let both: Vec<GroundTruthRecord> = chain.iter().chain(forkjoin.iter()).cloned().collect();

    let mut t2 = Table::new(&["training set", "test loss", "vs app-trained (x)"]);
    t2.row(vec![
        format!("{} (app-trained baseline)", app.name()),
        format!("{baseline:.4}"),
        "1.0".into(),
    ]);
    for (name, train) in [
        ("chain only", &chain),
        ("forkjoin only", &forkjoin),
        ("chain+forkjoin", &both),
    ] {
        let l = calibrate_and_test(train);
        t2.row(vec![
            name.into(),
            format!("{l:.4}"),
            format!("{:.1}", l / baseline.max(1e-12)),
        ]);
        eprintln!("{name}: test loss {l:.4}");
    }
    println!("{}", t2.render());
    args.maybe_write_tsv(&t2);
}
