//! **Warm-start transfer experiment** over the persistent loss cache:
//! does a calibration cached at one scale accelerate calibrating the same
//! simulator version at a larger scale?
//!
//! For every ordered pair of experiment scales (source → target), the
//! driver:
//!
//! 1. calibrates the highest-detail MPI simulator at the source scale
//!    with a persistent cache installed, so every evaluated point lands
//!    in the source shard;
//! 2. runs a **cold** BO-GP calibration at the target scale;
//! 3. runs a **warm** calibration at the target scale whose surrogate is
//!    seeded with the finite `(point, loss)` observations read back from
//!    the source shard ([`simcal::cache::load_finite_observations`]) —
//!    the warm points steer the fit but are never evaluated and never
//!    consume budget;
//! 4. reports, per pair, the evaluations each run needed to reach within
//!    5% of the cold run's final loss (the budget saved by transfer) and
//!    the held-out error delta between the two final calibrations.
//!
//! The hidden testbed's congestion is scale-dependent, so the transferred
//! surrogate is helpful-but-wrong in an instructive way: the warm run
//! must keep its final accuracy (the incumbent only ever comes from
//! points it evaluated itself) while spending less of its budget
//! rediscovering the basin.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin transfer [-- --fast --cache DIR]
//! ```
//!
//! Without `--cache`, a seed-keyed directory under the system temp dir is
//! used (reused across runs, demonstrating cross-run reuse).

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case2::{cache_fingerprint, emulator_config, node_counts, rate_errors};
use lodcal_bench::report::{pct, Table};
use mpisim::prelude::*;
use simcal::prelude::*;
use std::path::PathBuf;

/// Budget evaluations consumed before the trace first reached
/// `threshold`, or `None` if it never did.
fn evals_to_threshold(trace: &[TracePoint], threshold: f64) -> Option<usize> {
    trace
        .iter()
        .find(|p| p.best_loss <= threshold)
        .map(|p| p.evaluations)
}

fn main() {
    let args = ExpArgs::parse(300);
    let cache_dir = args
        .cache
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("lodcal-transfer-{}", args.seed)));
    simcal::cache::install(cache_dir.clone());
    obs::diag!("persistent cache: {}", cache_dir.display());

    let cfg = emulator_config(args.fast);
    let scales = node_counts(args.fast);
    let version = MpiSimulatorVersion::highest_detail();
    let loss = MatrixLoss::paper_set()[0].clone();
    let space = version.parameter_space();

    // Ground truth per scale, generated once.
    let datasets: Vec<Vec<MpiScenario>> = scales
        .iter()
        .map(|&n| dataset(&BenchmarkKind::CALIBRATION_SET, &[n], &cfg, args.seed))
        .collect();

    println!(
        "warm-start transfer across scales ({}, seed {})\n",
        version.label(),
        args.seed
    );
    let mut table = Table::new(&[
        "transfer (nodes)",
        "warm pts",
        "cold evals@5%",
        "warm evals@5%",
        "budget saved",
        "cold err %",
        "warm err %",
        "err delta %",
    ]);

    for si in 0..scales.len() {
        // Populate (or reuse) the source-scale shard.
        let src_fp = cache_fingerprint(version, &datasets[si], &loss);
        let sim = MpiSimulator::new(version);
        let src_obj = objective(&sim, &datasets[si], loss.clone()).with_cache_fingerprint(src_fp);
        let src = Calibrator::bo_gp(args.budget, args.seed).calibrate(&src_obj);
        obs::diag!(
            "source {} nodes: loss {:.4} after {} evaluations",
            scales[si],
            src.loss,
            src.evaluations
        );

        for ti in si + 1..scales.len() {
            let warm_natural =
                simcal::cache::load_finite_observations(&cache_dir, src_fp, args.seed);
            let warm: Vec<(Vec<f64>, f64)> = warm_natural
                .iter()
                .map(|(values, y)| (space.normalize(&Calibration::new(values.clone())), *y))
                .collect();

            let tgt_fp = cache_fingerprint(version, &datasets[ti], &loss);
            let tgt_obj =
                objective(&sim, &datasets[ti], loss.clone()).with_cache_fingerprint(tgt_fp);
            let calibrator = Calibrator::bo_gp(args.budget, args.seed);
            let cold = calibrator.calibrate(&tgt_obj);
            let warm_algo =
                BayesianOpt::new(SurrogateKind::GaussianProcess).with_warm_start(warm.clone());
            let warmed = calibrator
                .try_calibrate_with(&warm_algo, &tgt_obj)
                .expect("warm-started calibration found no finite loss");

            // Budget-to-threshold: evaluations to get within 5% of the
            // cold run's final loss.
            let threshold = cold.loss * 1.05;
            let cold_at = evals_to_threshold(&cold.trace, threshold);
            let warm_at = evals_to_threshold(&warmed.trace, threshold);
            let saved = match (cold_at, warm_at) {
                (Some(c), Some(w)) => format!("{}", c as i64 - w as i64),
                _ => "-".into(),
            };
            let fmt = |at: Option<usize>| at.map_or("-".into(), |n| n.to_string());

            let cold_err = numeric::mean(&rate_errors(version, &cold.calibration, &datasets[ti]));
            let warm_err = numeric::mean(&rate_errors(version, &warmed.calibration, &datasets[ti]));
            table.row(vec![
                format!("{} -> {}", scales[si], scales[ti]),
                warm.len().to_string(),
                fmt(cold_at),
                fmt(warm_at),
                saved,
                pct(cold_err),
                pct(warm_err),
                format!("{:+.2}", (warm_err - cold_err) * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "(budget saved = cold minus warm evaluations to reach within 5% of the cold run's \
         final loss; positive = the transferred surrogate converged sooner. The error delta \
         compares final held-out rate errors — warm starts steer the search but the incumbent \
         always comes from points the run evaluated itself.)"
    );
    args.maybe_write_tsv(&table);
}
