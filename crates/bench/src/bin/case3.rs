//! Case study #3 — batch scheduling — the domain the paper's conclusion
//! names as future work ("batch-scheduling using Alea or Batsim and data
//! from the Parallel Workload Archive"). The experiment mirrors Figure 2:
//! calibrate all 4 level-of-detail versions under the same budget, report
//! held-out turnaround error per version plus the uncalibrated baseline,
//! and check whether the other case studies' conclusion ("model the
//! middleware's batching behaviour") generalizes to this domain.
//!
//! The (version × restart) grid is driven by the lodsel sweep subsystem:
//! runs fan onto the work-stealing pool, `--ledger PATH` makes the sweep
//! resumable (bit-for-bit), and the accuracy-versus-cost recommendation
//! is reported on stderr alongside the table.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin case3 [-- --fast]
//! ```

use batchsim::prelude::*;
use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::summarize;
use lodcal_bench::report::{pct, Table};
use lodsel::prelude::*;

fn main() {
    let args = ExpArgs::parse(150);
    let family = BatchFamily::paper(args.fast, args.seed);
    obs::diag!(
        "{} training / {} testing workload traces",
        family.train().len(),
        family.test().len()
    );

    // Best of three restarts by training loss, as in Figures 2/5. The
    // per-trace metric is the mean relative per-job *turnaround* error.
    let config = SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: args.budget,
        },
        restarts: 3,
        seed: args.seed,
        epsilon: args.epsilon,
        max_units: None,
        max_fault_retries: 2,
        cache: args.cache.as_ref().map(std::path::PathBuf::from),
    };
    let ledger = args.open_ledger();
    let recorder = args.install_trace();
    let outcome = run_sweep(&family, &config, ledger.as_ref());
    args.write_trace(recorder);

    let mut table = Table::new(&[
        "version (overhead/runtime)",
        "params",
        "avg err %",
        "min err %",
        "max err %",
    ]);
    for v in &outcome.versions {
        let (avg, min, max) = summarize(&v.samples);
        table.row(vec![
            v.label.clone(),
            v.dim.to_string(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
    }

    println!("Case study #3 (future work): batch scheduling, 4 calibrated versions\n");
    println!("{}", table.render());

    if args.uncalibrated {
        // Spec-style baseline: nominal node speed 1.0, no overheads.
        let version = BatchVersion::lowest_detail();
        let spec = version
            .parameter_space()
            .calibration_from_pairs(&[("node_speed", 1.0)]);
        let errs = family.turnaround_errors(version, &spec);
        let (avg, min, max) = summarize(&errs);
        let mut t = Table::new(&["baseline", "avg err %", "min err %", "max err %"]);
        t.row(vec![
            "nominal values, lowest detail".into(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
        println!("uncalibrated baseline:\n\n{}", t.render());
    }

    println!(
        "(shape check: the cycle/* versions — which model the RJMS's periodic\n\
         scheduling behaviour — should beat the instant/* versions, mirroring the\n\
         'simulating HTCondor is crucial' finding of case study #1)"
    );
    if let Some(rec) = &outcome.recommendation {
        eprint!("{}", render_recommendation(rec));
    }
    args.maybe_write_tsv(&table);
}
