//! Case study #3 — batch scheduling — the domain the paper's conclusion
//! names as future work ("batch-scheduling using Alea or Batsim and data
//! from the Parallel Workload Archive"). The experiment mirrors Figure 2:
//! calibrate all 4 level-of-detail versions under the same budget, report
//! held-out makespan error per version plus the uncalibrated baseline,
//! and check whether the other case studies' conclusion ("model the
//! middleware's batching behaviour") generalizes to this domain.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin case3 [-- --fast]
//! ```

use batchsim::prelude::*;
use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::summarize;
use lodcal_bench::report::{pct, Table};
use simcal::prelude::*;

fn main() {
    let args = ExpArgs::parse(150);
    let cfg = BatchEmulatorConfig::default();
    // Short-to-medium jobs under varied arrival pressure: per-job waits
    // (where the hidden 30s scheduling cycle lives) are a visible share
    // of the turnaround, as in case study #1's short-task workflows.
    let mut grid = Vec::new();
    for (i, &interarrival) in [8.0, 20.0, 45.0].iter().enumerate() {
        for (j, &work) in [60.0, 240.0].iter().enumerate() {
            grid.push(WorkloadSpec {
                num_jobs: 80,
                mean_interarrival: interarrival,
                mean_work: work,
                max_nodes_log2: 5,
                seed: args.seed ^ ((i * 2 + j) as u64) << 8,
            });
        }
    }
    let (train_specs, test_specs) = grid.split_at(if args.fast { 2 } else { 4 });
    let train = dataset(train_specs, &cfg, if args.fast { 2 } else { 3 }, args.seed);
    let test = dataset(test_specs, &cfg, if args.fast { 2 } else { 3 }, args.seed);
    eprintln!(
        "{} training / {} testing workload traces",
        train.len(),
        test.len()
    );

    let loss = StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3");
    let mut table = Table::new(&[
        "version (overhead/runtime)",
        "params",
        "avg err %",
        "min err %",
        "max err %",
    ]);

    // Per-trace metric: mean relative per-job *turnaround* error. Job
    // waits are where scheduler behaviour lives; trace makespans are
    // dominated by total work and hide it.
    let turnaround_errors = |sim: &BatchSimulator, calib: &Calibration| -> Vec<f64> {
        test.iter()
            .map(|s| {
                let out = sim.simulate(&s.jobs, calib);
                let errs: Vec<f64> = s
                    .turnarounds
                    .iter()
                    .zip(&out.turnarounds)
                    .map(|(&gt, &m)| relative_error(gt, m))
                    .collect();
                numeric::mean(&errs)
            })
            .collect()
    };

    for version in BatchVersion::all() {
        let sim = BatchSimulator::new(version, cfg.total_nodes);
        let obj = objective(&sim, &train, loss.clone());
        // Best of three restarts by training loss, as in Figures 2/5.
        let result = (0..3u64)
            .map(|r| Calibrator::bo_gp(args.budget, args.seed ^ r << 32).calibrate(&obj))
            .min_by(|a, b| a.loss.partial_cmp(&b.loss).expect("finite losses"))
            .expect("non-empty restarts");
        let errs = turnaround_errors(&sim, &result.calibration);
        let (avg, min, max) = summarize(&errs);
        eprintln!(
            "{}: train loss {:.3}, held-out err {:.1}%",
            version.label(),
            result.loss,
            avg * 100.0
        );
        table.row(vec![
            version.label(),
            obj.space().dim().to_string(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
    }

    println!("Case study #3 (future work): batch scheduling, 4 calibrated versions\n");
    println!("{}", table.render());

    if args.uncalibrated {
        // Spec-style baseline: nominal node speed 1.0, no overheads.
        let version = BatchVersion::lowest_detail();
        let sim = BatchSimulator::new(version, cfg.total_nodes);
        let spec = version
            .parameter_space()
            .calibration_from_pairs(&[("node_speed", 1.0)]);
        let errs = turnaround_errors(&sim, &spec);
        let (avg, min, max) = summarize(&errs);
        let mut t = Table::new(&["baseline", "avg err %", "min err %", "max err %"]);
        t.row(vec![
            "nominal values, lowest detail".into(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
        println!("uncalibrated baseline:\n\n{}", t.render());
    }

    println!(
        "(shape check: the cycle/* versions — which model the RJMS's periodic\n\
         scheduling behaviour — should beat the instant/* versions, mirroring the\n\
         'simulating HTCondor is crucial' finding of case study #1)"
    );
    args.maybe_write_tsv(&table);
}
