//! Regenerates **Figure 3**: training-dataset cost vs. achieved loss, for
//! the single-sample scheme (one worker count n, one task count m) and
//! the rectangular-sample scheme (all worker counts <= n, all task counts
//! <= m), per workflow application (§5.5).
//!
//! Paper shapes to reproduce:
//! - the §5.4 default (second-largest n and m, marked `*`) achieves
//!   relatively low loss at relatively low cost;
//! - larger (rectangular) training datasets can be *detrimental* under a
//!   fixed budget (fewer optimizer iterations per unit of data);
//! - the cheapest single-sample options (smallest workflow on one worker)
//!   are among the worst.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin fig3 [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::{calibrate_version, dataset_options, fixed_loss};
use lodcal_bench::report::{fnum, Table};
use simcal::prelude::*;
use wfsim::prelude::*;

fn main() {
    let args = ExpArgs::parse(100);
    let opts = dataset_options(args.fast, args.seed);
    let apps: Vec<AppKind> = if args.fast {
        vec![AppKind::Forkjoin]
    } else {
        vec![AppKind::Genome1000, AppKind::Montage]
    };
    let version = SimulatorVersion::highest_detail();
    let loss = StructuredLoss::paper_set()[0].clone(); // L1

    let mut table = Table::new(&[
        "application",
        "scheme",
        "workers(n)",
        "tasks(m)",
        "train cost (worker-s)",
        "test loss",
        "default?",
    ]);

    for &app in &apps {
        let records = dataset_for(app, &opts);
        let (_, test) = split_train_test(&records);
        let test_scenarios = WfScenario::from_records(&test);

        let mut sizes: Vec<usize> = records.iter().map(|r| r.spec.num_tasks).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let mut workers: Vec<usize> = records.iter().map(|r| r.n_workers).collect();
        workers.sort_unstable();
        workers.dedup();
        let default_n = workers[workers.len().saturating_sub(2)];
        let default_m = sizes[sizes.len().saturating_sub(2)];

        for scheme in ["single", "rectangular"] {
            for &n in &workers {
                for &m in &sizes {
                    let train: Vec<GroundTruthRecord> = records
                        .iter()
                        .filter(|r| match scheme {
                            "single" => r.n_workers == n && r.spec.num_tasks == m,
                            _ => r.n_workers <= n && r.spec.num_tasks <= m,
                        })
                        .cloned()
                        .collect();
                    if train.is_empty() {
                        continue;
                    }
                    let cost: f64 = train.iter().map(|r| r.cost()).sum();
                    let train_scenarios = WfScenario::from_records(&train);
                    let result = calibrate_version(
                        version,
                        &train_scenarios,
                        loss.clone(),
                        args.budget,
                        args.seed,
                    );
                    let test_loss =
                        fixed_loss(version, &result.calibration, &test_scenarios, &loss);
                    let is_default = scheme == "single" && n == default_n && m == default_m;
                    table.row(vec![
                        app.name().to_string(),
                        scheme.to_string(),
                        n.to_string(),
                        m.to_string(),
                        fnum(cost),
                        format!("{test_loss:.4}"),
                        if is_default {
                            "*".into()
                        } else {
                            String::new()
                        },
                    ]);
                    eprintln!(
                        "{} {scheme} n={n} m={m}: cost {:.0}, test loss {:.4}",
                        app.name(),
                        cost,
                        test_loss
                    );
                }
            }
        }
    }

    println!("Figure 3: training dataset cost vs. loss (single- and rectangular-sample schemes)\n");
    println!("{}", table.render());
    args.maybe_write_tsv(&table);
}
