//! Ablations called out in DESIGN.md, reproducing two paper statements
//! that Tables 3/5 do not show directly (§4):
//!
//! 1. "We omit results for the GRID and GRAD algorithms because they
//!    performed poorly in preliminary experiments" — the preliminary
//!    comparison, rerun here: GRID / GRAD / RAND / BO-GP under one budget.
//! 2. "All versions of the BO algorithms perform almost identically, and
//!    we only present results for the BO-GP algorithm" — BO-GP / BO-RF /
//!    BO-ET / BO-GBRT under one budget.
//! 3. BO proposal batch size (parallel constant-liar batches vs nearly
//!    sequential proposals) — an implementation choice of our framework.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin ablations [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::report::{fnum, Table};
use simcal::algorithms::BayesianOpt;
use simcal::budget::Evaluator;
use simcal::prelude::*;
use wfsim::prelude::*;

/// Build the synthetic case-1 objective (highest-detail simulator, its own
/// output at a known reference as ground truth) plus the reference.
fn synthetic_objective(fast: bool, seed: u64) -> (WorkflowSimulator, Vec<WfScenario>, Calibration) {
    let version = SimulatorVersion::highest_detail();
    let space = version.parameter_space();
    let sim = WorkflowSimulator::new(version);
    let reference_unit: Vec<f64> = (0..space.dim())
        .map(|i| if i % 2 == 0 { 0.35 } else { 0.65 })
        .collect();
    let reference = space.denormalize(&reference_unit);
    let opts = DatasetOptions {
        repetitions: 1,
        seed,
        size_indices: vec![0],
        work_indices: vec![1, 3],
        footprint_indices: vec![1, 2],
        worker_counts: vec![if fast { 2 } else { 4 }],
        ..Default::default()
    };
    let mut scenarios = Vec::new();
    for record in dataset(&[AppKind::Forkjoin], &opts) {
        let workflow = generate(&record.spec);
        let out = sim.simulate(&workflow, record.n_workers, &reference);
        scenarios.push(WfScenario {
            workflow,
            n_workers: record.n_workers,
            gt_makespan: out.makespan,
            gt_task_times: out.task_times,
        });
    }
    (sim, scenarios, reference)
}

fn main() {
    let args = ExpArgs::parse(200);
    let (sim, scenarios, reference) = synthetic_objective(args.fast, args.seed);
    let space = sim.version.parameter_space();
    let loss = StructuredLoss::paper_set()[0].clone();
    let obj = objective(&sim, &scenarios, loss);

    // --- Ablation 1: the full algorithm menu ----------------------------
    println!("Ablation 1: all search algorithms under one budget (case-1 synthetic)\n");
    let mut t1 = Table::new(&["algorithm", "final loss", "calibration error"]);
    for kind in AlgorithmKind::ALL {
        // Skip the three redundant BO rows here; ablation 2 covers them.
        if matches!(
            kind,
            AlgorithmKind::BoRf | AlgorithmKind::BoEt | AlgorithmKind::BoGbrt
        ) {
            continue;
        }
        let r = Calibrator {
            algorithm: kind,
            budget: args.budget,
            seed: args.seed,
        }
        .calibrate(&obj);
        t1.row(vec![
            kind.name().to_string(),
            format!("{:.4}", r.loss),
            fnum(calibration_error(&space, &r.calibration, &reference)),
        ]);
        eprintln!("{}: loss {:.4}", kind.name(), r.loss);
    }
    println!("{}", t1.render());

    // --- Ablation 2: BO surrogates --------------------------------------
    println!("Ablation 2: BO surrogate regressors (paper: near-identical)\n");
    let mut t2 = Table::new(&["surrogate", "final loss", "calibration error"]);
    for kind in [
        AlgorithmKind::BoGp,
        AlgorithmKind::BoRf,
        AlgorithmKind::BoEt,
        AlgorithmKind::BoGbrt,
    ] {
        let r = Calibrator {
            algorithm: kind,
            budget: args.budget,
            seed: args.seed,
        }
        .calibrate(&obj);
        t2.row(vec![
            kind.name().to_string(),
            format!("{:.4}", r.loss),
            fnum(calibration_error(&space, &r.calibration, &reference)),
        ]);
        eprintln!("{}: loss {:.4}", kind.name(), r.loss);
    }
    println!("{}", t2.render());

    // --- Ablation 3: BO proposal batch size -----------------------------
    println!("Ablation 3: BO-GP proposal batch size\n");
    let mut t3 = Table::new(&["batch size", "final loss"]);
    for batch in [1usize, 4, 8, 16] {
        let evaluator = Evaluator::new(&obj, args.budget);
        let bo = BayesianOpt {
            batch_size: batch,
            ..BayesianOpt::new(SurrogateKind::GaussianProcess)
        };
        bo.search(&evaluator, args.seed);
        let (best, _, _) = evaluator.best().expect("budget admits evaluations");
        t3.row(vec![batch.to_string(), format!("{best:.4}")]);
        eprintln!("batch {batch}: loss {best:.4}");
    }
    println!("{}", t3.render());
    args.maybe_write_tsv(&t3);
}
