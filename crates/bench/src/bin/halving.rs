//! **Successive-halving ablation**: does the multi-fidelity ladder reach
//! the fixed-budget sweep's recommendation at a fraction of the
//! evaluations?
//!
//! For each case-study family (workflows and the federated data grid,
//! both on their fast experiment grids), the driver runs:
//!
//! 1. a **fixed** sweep under `TotalEvaluations` — every (unit × restart)
//!    run gets the same per-run budget; and
//! 2. a **successive-halving** sweep whose total budget is *half* the
//!    fixed sweep's, laddered over `log_eta(runs) + 1` rungs of shrinking
//!    fields and scenario subsets (eta = 4, so every rung can still
//!    afford a non-degenerate per-run budget).
//!
//! Both sweeps are deterministic, so the table below is reproducible
//! bit-for-bit. The driver exits non-zero if any family's SH sweep fails
//! to reproduce the fixed recommendation — the regression the
//! `results/halving.txt` artifact pins.
//!
//! Unlike the paper-replication binaries this driver defaults to seed 42
//! — the sweep subsystem's canonical seed (the `lodsel` CLI default and
//! the golden-test seed) — so the artifact lines up with every other SH
//! fixture. `--seed` still overrides it; agreement is a property of the
//! error landscape, not something SH can guarantee on every seed (a seed
//! whose fixed sweep leaves exactly one version inside the ε band has no
//! slack for cheap-rung noise).
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin halving [-- --seed S]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::report::Table;
use lodsel::prelude::*;
use simcal::prelude::Budget;

struct FamilyCase {
    name: &'static str,
    family: Box<dyn VersionFamily>,
}

fn sweep_with(family: &dyn VersionFamily, budget: BudgetPolicy, seed: u64) -> SweepOutcome {
    let config = SweepConfig {
        budget,
        restarts: 2,
        seed,
        epsilon: 0.1,
        max_units: None,
        max_fault_retries: 2,
        cache: None,
    };
    run_sweep(family, &config, None)
}

fn main() {
    let mut args = ExpArgs::parse(12);
    if !std::env::args().any(|a| a == "--seed") {
        args.seed = 42;
    }
    args.install_cache();
    let per_run = match args.budget {
        Budget::Evaluations(n) => n,
        _ => {
            obs::diag!("halving compares evaluation budgets; use --budget-evals");
            std::process::exit(2);
        }
    };

    let cases = vec![
        FamilyCase {
            name: "wf",
            family: Box::new(WfFamily::paper(true, args.seed)),
        },
        FamilyCase {
            name: "grid",
            family: Box::new(GridFamily::paper(true, args.seed)),
        },
    ];

    println!(
        "successive halving vs fixed budget (fast grids, {per_run} evals/run fixed, \
         SH total = 50%, eta 4, seed {})\n",
        args.seed
    );
    let mut table = Table::new(&[
        "family",
        "runs",
        "fixed evals",
        "sh evals",
        "fraction",
        "rungs",
        "fixed choice",
        "sh choice",
        "agree",
    ]);
    let mut all_agree = true;

    for case in &cases {
        let family = case.family.as_ref();
        let runs = family.units().len() * 2;
        let fixed_total = runs * per_run;
        let sh_total = fixed_total / 2;

        let fixed = sweep_with(
            family,
            BudgetPolicy::TotalEvaluations { total: fixed_total },
            args.seed,
        );
        let sh = sweep_with(
            family,
            BudgetPolicy::SuccessiveHalving {
                total: sh_total,
                eta: 4,
                min_scenarios: 1,
            },
            args.seed,
        );

        let fixed_rec = fixed.recommendation.expect("fixed sweep completes");
        let sh_rec = sh.recommendation.expect("SH sweep completes");
        let report = sh.sh.expect("SH sweeps carry a report");
        let sh_evals = report.planned_evaluations;
        let agree = sh_rec.chosen == fixed_rec.chosen;
        all_agree &= agree;

        table.row(vec![
            case.name.to_string(),
            runs.to_string(),
            fixed_total.to_string(),
            sh_evals.to_string(),
            format!("{:.2}", sh_evals as f64 / fixed_total as f64),
            report.rungs.len().to_string(),
            fixed_rec.chosen.clone(),
            sh_rec.chosen.clone(),
            if agree { "yes" } else { "NO" }.to_string(),
        ]);
        obs::diag!(
            "{}: fixed {} evals -> {}, SH {} evals -> {}",
            case.name,
            fixed_total,
            fixed_rec.chosen,
            sh_evals,
            sh_rec.chosen
        );
    }

    println!("{}", table.render());
    println!(
        "(fixed = one shared budget split evenly over all runs; sh = successive halving \
         under half that total, promoting the top 1/4 per rung and widening the scenario \
         subset until the final rung runs the full set. \"agree\" = identical \
         epsilon-recommendation.)"
    );
    args.maybe_write_tsv(&table);

    if !all_agree {
        obs::diag!("successive halving diverged from the fixed-budget recommendation");
        std::process::exit(1);
    }
}
