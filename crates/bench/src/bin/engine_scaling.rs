//! Kernel scaling measurement: events-per-second of the dessim engine at
//! large concurrent-activity counts, with kernel counters attributing the
//! cost to specific mechanisms (heap churn, sharing re-solves, frontier
//! size, arena footprint).
//!
//! Unlike the Criterion group (statistical, small sizes), this binary does
//! one timed run per size and prints a JSON record per run to stdout —
//! the format recorded in `results/BENCH_engine.json`. Diagnostics go to
//! stderr.
//!
//! ```text
//! engine_scaling [--sizes 10000,200000] [--workload clustered|backbone]
//!                [--engine incremental|reference]
//!                [--max-seconds S] [--trace PATH]
//! ```
//!
//! `--max-seconds` makes the binary exit non-zero if any single run
//! exceeds the wall-clock ceiling — the CI smoke uses this together with
//! `--trace` (asserting `kernel_sharing_resolves / kernel_events` stays
//! below a pinned bound) as a regression tripwire.

use dessim::{Engine, ReferenceEngine};
use lodcal_bench::workloads;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    obs::diag!(
        "usage: engine_scaling [--sizes N,N,..] [--workload clustered|backbone] \
         [--engine incremental|reference] [--max-seconds S] [--trace PATH]"
    );
    std::process::exit(2);
}

/// Peak resident set size of this process so far, in kilobytes, from
/// `/proc/self/status` (`VmHWM`). Returns 0 where unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

fn main() {
    let mut sizes: Vec<usize> = vec![10_000, 50_000, 200_000, 1_000_000];
    let mut workload = String::from("clustered");
    let mut engine = String::from("incremental");
    let mut max_seconds: Option<f64> = None;
    let mut trace: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--sizes" => {
                sizes = take(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--workload" => workload = take(&mut i),
            "--engine" => engine = take(&mut i),
            "--max-seconds" => max_seconds = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--trace" => trace = Some(take(&mut i)),
            _ => usage(),
        }
        i += 1;
    }

    let recorder = trace.as_ref().map(|_| {
        let r = Arc::new(obs::TraceRecorder::new());
        obs::install(r.clone());
        r
    });

    let mut breached = false;
    for &n in &sizes {
        let (platform, batch) = match workload.as_str() {
            "clustered" => workloads::clustered(n),
            "backbone" => workloads::backbone(n),
            _ => usage(),
        };
        let start = Instant::now();
        let (events, counters) = match engine.as_str() {
            "incremental" => {
                let mut e = Engine::new(platform);
                e.add_activities(batch);
                let done = e.run_to_completion().len();
                (done, Some(e.counters()))
            }
            "reference" => {
                let mut e = ReferenceEngine::new(platform);
                e.add_activities(batch);
                (e.run_to_completion().len(), None)
            }
            _ => usage(),
        };
        let secs = start.elapsed().as_secs_f64();
        let events_per_sec = events as f64 / secs.max(1e-12);
        let rss = peak_rss_kb();
        // One JSON object per line; counters only exist for the
        // incremental engine.
        let mech = counters
            .map(|c| {
                format!(
                    ", \"heap_reinserts\": {}, \"sharing_resolves\": {}, \
                     \"frontier_links\": {}, \"arena_bytes\": {}",
                    c.heap_reinserts, c.sharing_resolves, c.frontier_links, c.arena_bytes
                )
            })
            .unwrap_or_default();
        println!(
            "{{ \"engine\": \"{engine}\", \"workload\": \"{workload}\", \"n\": {n}, \
             \"events\": {events}, \"secs\": {secs:.3}, \
             \"events_per_sec\": {events_per_sec:.0}, \"peak_rss_kb\": {rss}{mech} }}"
        );
        if let Some(cap) = max_seconds {
            if secs > cap {
                obs::diag!("size {n} took {secs:.1}s > ceiling {cap:.1}s");
                breached = true;
            }
        }
    }

    if let (Some(path), Some(recorder)) = (&trace, recorder) {
        obs::uninstall();
        if let Err(e) = recorder.write_jsonl(std::path::Path::new(path)) {
            obs::diag!("failed to write trace {path}: {e}");
        }
    }
    if breached {
        std::process::exit(1);
    }
}
