//! Regenerates **Figure 1**: loss value vs. time when computing a
//! calibration using all ground-truth data for the Epigenomics workflow
//! (BO-GP + L1, the pair selected by Table 3).
//!
//! Paper shape to reproduce: rapid improvement early in the budget,
//! marginal improvement afterwards.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin fig1 [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::{calibrate_version, dataset_options};
use lodcal_bench::report::{fnum, Table};
use simcal::prelude::*;
use wfsim::prelude::*;

fn main() {
    let args = ExpArgs::parse(250);
    let opts = dataset_options(args.fast, args.seed);

    let records = dataset_for(AppKind::Epigenomics, &opts);
    let scenarios = WfScenario::from_records(&records);
    eprintln!(
        "calibrating against {} Epigenomics executions",
        scenarios.len()
    );

    let loss = StructuredLoss::paper_set()[0].clone(); // L1
    let result = calibrate_version(
        SimulatorVersion::highest_detail(),
        &scenarios,
        loss,
        args.budget,
        args.seed,
    );

    let mut table = Table::new(&["evaluations", "elapsed_s", "best_loss"]);
    for p in &result.trace {
        table.row(vec![
            p.evaluations.to_string(),
            format!("{:.3}", p.elapsed_secs),
            format!("{:.5}", p.best_loss),
        ]);
    }

    println!("Figure 1: loss vs. time, Epigenomics, BO-GP + L1\n");
    println!("{}", table.render());
    println!(
        "final loss {} after {} evaluations in {:.2}s",
        fnum(result.loss),
        result.evaluations,
        result.elapsed_secs
    );

    // The paper's qualitative claim: most of the improvement happens in
    // the early fraction of the budget.
    if result.trace.len() >= 2 {
        let first = result.trace.first().expect("non-empty trace").best_loss;
        let final_loss = result.loss;
        let halfway_evals = result.evaluations / 2;
        let at_half = result
            .trace
            .iter()
            .take_while(|p| p.evaluations <= halfway_evals)
            .last()
            .map_or(first, |p| p.best_loss);
        let total_gain = first - final_loss;
        if total_gain > 0.0 {
            let early_fraction = (first - at_half) / total_gain;
            println!(
                "improvement achieved in the first half of the budget: {:.0}%",
                early_fraction * 100.0
            );
        }
    }
    args.maybe_write_tsv(&table);
}
