//! Regenerates the **§6.5 generalization results** for case study #2,
//! using the highest-detail simulator:
//!
//! 1. **Across benchmark types**: simulate the Stencil benchmark with a
//!    calibration computed from PingPing/PingPong/BiRandom, vs. one
//!    computed from Stencil's own ground truth (paper: 58.8% vs 28.6%).
//! 2. **Across scales**: simulate 256- and 512-node executions with a
//!    calibration computed from 128-node executions (paper, BiRandom:
//!    15.2% -> 30.8% -> 59.4%). The hidden testbed's scale-dependent
//!    congestion makes this a negative result for the simulator — and a
//!    positive one for the methodology, which is exactly what surfaces it.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin sec6_5 [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case2::{calibrate_version_best_of, emulator_config, node_counts, rate_errors};
use lodcal_bench::report::{pct, Table};
use mpisim::prelude::*;
use simcal::prelude::*;

fn main() {
    let args = ExpArgs::parse(500);
    let cfg = emulator_config(args.fast);
    let scales = node_counts(args.fast);
    let base = scales[0];
    let version = MpiSimulatorVersion::highest_detail();
    let loss = MatrixLoss::paper_set()[0].clone();

    // --- Part 1: generalization across benchmark types -----------------
    let train_p2p = dataset(&BenchmarkKind::CALIBRATION_SET, &[base], &cfg, args.seed);
    let stencil = dataset(&[BenchmarkKind::Stencil], &[base], &cfg, args.seed);

    let from_p2p =
        calibrate_version_best_of(version, &train_p2p, loss.clone(), args.budget, args.seed, 5);
    let from_stencil =
        calibrate_version_best_of(version, &stencil, loss.clone(), args.budget, args.seed, 5);

    let err_cross = numeric::mean(&rate_errors(version, &from_p2p.calibration, &stencil));
    let err_self = numeric::mean(&rate_errors(version, &from_stencil.calibration, &stencil));

    println!("§6.5 part 1: Stencil at {base} nodes, by calibration source\n");
    let mut t1 = Table::new(&["calibration source", "Stencil avg err %"]);
    t1.row(vec!["PingPing+PingPong+BiRandom".into(), pct(err_cross)]);
    t1.row(vec!["Stencil itself".into(), pct(err_self)]);
    println!("{}", t1.render());
    println!(
        "cross-benchmark calibration is {:.1}x worse than self-calibration\n",
        err_cross / err_self.max(1e-12)
    );

    // --- Part 2: generalization across scales ---------------------------
    println!("§6.5 part 2: per-benchmark error at larger scales, calibrated at {base} nodes\n");
    let mut t2header = vec!["benchmark".to_string()];
    t2header.extend(scales.iter().map(|n| format!("{n} nodes err %")));
    let mut t2 = Table::new(&t2header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    for benchmark in BenchmarkKind::CALIBRATION_SET {
        let mut cells = vec![benchmark.name().to_string()];
        for &n in &scales {
            let test = dataset(&[benchmark], &[n], &cfg, args.seed);
            let err = numeric::mean(&rate_errors(version, &from_p2p.calibration, &test));
            cells.push(pct(err));
            eprintln!("{} @ {n} nodes: {:.1}%", benchmark.name(), err * 100.0);
        }
        t2.row(cells);
    }
    println!("{}", t2.render());
    println!(
        "(errors grow with scale: the calibrated simulator does not generalize beyond \
         its ground truth — the paper's negative result for this simulator)"
    );
    args.maybe_write_tsv(&t2);
}
