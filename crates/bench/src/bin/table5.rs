//! Regenerates **Table 5**: calibration error *and* average relative
//! transfer-rate error vs. algorithm and loss function for case study #2,
//! via synthetic benchmarking (§6.3.2).
//!
//! The second metric exists because bandwidths and multiplicative protocol
//! factors are confounded (B with factor α simulates exactly like αB with
//! factor 1), so the parameter-space distance alone can be misleading.
//!
//! Paper shape to reproduce: BO-GP + L1 is the best combination on both
//! metrics.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin table5 [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case2::node_counts;
use lodcal_bench::report::{fnum, Table};
use mpisim::prelude::*;
use simcal::prelude::*;

fn main() {
    let args = ExpArgs::parse(400);
    let version = MpiSimulatorVersion::highest_detail();
    let space = version.parameter_space();
    let sim = MpiSimulator::new(version);
    let n_nodes = node_counts(args.fast)[0];

    // Three independent synthetic references are averaged per cell:
    // a single arbitrary reference makes the loss ranking a coin flip,
    // and the paper's comparison is about the *method*, not one draw.
    let n_refs = 3u64;
    let sizes = message_sizes();
    let mut refs: Vec<(simcal::prelude::Calibration, Vec<MpiScenario>)> = Vec::new();
    for r in 0..n_refs {
        let mut rng = numeric::rng_from_seed(args.seed.wrapping_add(r) ^ 0x7AB1E5);
        let reference = space.denormalize(&space.sample_unit(&mut rng));
        let scenarios: Vec<MpiScenario> = BenchmarkKind::CALIBRATION_SET
            .iter()
            .map(|&benchmark| {
                let rates = sim.transfer_rates(benchmark, n_nodes, &sizes, &reference);
                MpiScenario {
                    benchmark,
                    n_nodes,
                    sizes: sizes.clone(),
                    samples: rates.iter().map(|&r| vec![r * 0.98, r * 1.02]).collect(),
                }
            })
            .collect();
        refs.push((reference, scenarios));
    }
    eprintln!(
        "synthetic ground truth: {} references x {} benchmarks at {n_nodes} nodes",
        n_refs,
        BenchmarkKind::CALIBRATION_SET.len()
    );

    let algorithms = [AlgorithmKind::Random, AlgorithmKind::BoGp];
    let losses = MatrixLoss::paper_set();

    let mut header = vec!["Metric".to_string()];
    header.extend(losses.iter().map(|l| l.name().to_string()));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let mut best: Option<(f64, String, String)> = None;
    for alg in algorithms {
        let mut err_cells = vec![format!("{} calib. error", alg.name())];
        let mut rate_cells = vec![format!("{} rel. rate error", alg.name())];
        for loss in &losses {
            let mut cal_errs = Vec::new();
            let mut rate_errs = Vec::new();
            for (reference, scenarios) in &refs {
                let obj = objective(&sim, scenarios, loss.clone());
                // Best of three restarts by training loss, applied
                // uniformly to every (algorithm, loss) cell.
                let result = (0..3u64)
                    .map(|r| {
                        Calibrator {
                            algorithm: alg,
                            budget: args.budget,
                            seed: args.seed ^ r << 32,
                        }
                        .calibrate(&obj)
                    })
                    .min_by(|a, b| a.loss.partial_cmp(&b.loss).expect("finite losses"))
                    .expect("non-empty restarts");
                cal_errs.push(calibration_error(&space, &result.calibration, reference));
                rate_errs.push(numeric::mean(
                    &scenarios
                        .iter()
                        .map(|s| mean_relative_rate_error(&sim, s, &result.calibration))
                        .collect::<Vec<_>>(),
                ));
            }
            let cal_err = numeric::mean(&cal_errs);
            let rate_err = numeric::mean(&rate_errs);
            if best.as_ref().is_none_or(|(b, _, _)| rate_err < *b) {
                best = Some((rate_err, alg.name().to_string(), loss.name().to_string()));
            }
            err_cells.push(fnum(cal_err));
            rate_cells.push(format!("{rate_err:.3}"));
            eprintln!(
                "  {} / {}: calib err {:.2}, rate err {:.3}",
                alg.name(),
                loss.name(),
                cal_err,
                rate_err
            );
        }
        table.row(err_cells);
        table.row(rate_cells);
    }

    println!("Table 5: calibration error and relative transfer-rate error vs. loss function\n");
    println!("{}", table.render());
    let (err, alg, loss) = best.expect("at least one cell");
    println!("best pair by rate error: {alg} with {loss} ({err:.3})");
    args.maybe_write_tsv(&table);
}
