//! Case study #4 — a federated data grid, the workload class (data
//! locality, caching, wide-area transfers) none of the first three
//! families exercises. The experiment mirrors Figure 2: calibrate all 8
//! level-of-detail versions under the same budget, report held-out
//! turnaround error per version plus the uncalibrated baseline, and ask
//! which of the three middleware behaviours (per-file transfers, the
//! explicit cache, the serial broker) must be modelled.
//!
//! The (version × restart) grid is driven by the lodsel sweep subsystem:
//! runs fan onto the work-stealing pool, `--ledger PATH` makes the sweep
//! resumable (bit-for-bit), and the accuracy-versus-cost recommendation
//! is reported on stderr alongside the table.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin case4 [-- --fast]
//! ```

use gridsim::prelude::*;
use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::summarize;
use lodcal_bench::report::{pct, Table};
use lodsel::prelude::*;

fn main() {
    let args = ExpArgs::parse(150);
    let family = GridFamily::paper(args.fast, args.seed);
    obs::diag!(
        "{} training / {} testing grid workloads",
        family.train().len(),
        family.test().len()
    );

    // Best of three restarts by training loss, as in Figures 2/5. The
    // per-workload metric is the mean relative per-job *turnaround*
    // error on the held-out workloads.
    let config = SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: args.budget,
        },
        restarts: 3,
        seed: args.seed,
        epsilon: args.epsilon,
        max_units: None,
        max_fault_retries: 2,
        cache: args.cache.as_ref().map(std::path::PathBuf::from),
    };
    let ledger = args.open_ledger();
    let recorder = args.install_trace();
    let outcome = run_sweep(&family, &config, ledger.as_ref());
    args.write_trace(recorder);

    let mut table = Table::new(&[
        "version (transfer/cache/broker)",
        "params",
        "avg err %",
        "min err %",
        "max err %",
    ]);
    for v in &outcome.versions {
        let (avg, min, max) = summarize(&v.samples);
        table.row(vec![
            v.label.clone(),
            v.dim.to_string(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
    }

    println!("Case study #4: federated data grid, 8 calibrated versions\n");
    println!("{}", table.render());

    if args.uncalibrated {
        // Spec-style baseline: nominal platform values, lowest detail.
        let version = GridVersion::lowest_detail();
        let spec = version.parameter_space().calibration_from_pairs(&[
            ("core_speed", 1.0),
            ("wan_bandwidth", 10.0),
            ("wan_latency", 0.1),
            ("disk_bandwidth", 100.0),
            ("hit_ratio", 0.5),
        ]);
        let errs = family.turnaround_errors(version, &spec);
        let (avg, min, max) = summarize(&errs);
        let mut t = Table::new(&["baseline", "avg err %", "min err %", "max err %"]);
        t.row(vec![
            "nominal values, lowest detail".into(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
        println!("uncalibrated baseline:\n\n{}", t.render());
    }

    println!(
        "(shape check: the hidden grid stages per-file WAN flows through LRU\n\
         caches behind a serial broker, so the perfile/lru/* versions should\n\
         beat flow/hitratio/* — the data-grid echo of the other case studies'\n\
         'model the middleware' conclusion)"
    );
    if let Some(rec) = &outcome.recommendation {
        eprint!("{}", render_recommendation(rec));
    }
    args.maybe_write_tsv(&table);
}
