//! Regenerates **Figure 4**: loss value vs. time when calibrating against
//! all 128-node ground-truth data (BO-GP + L1, case study #2).
//!
//! Paper shape to reproduce: fast early convergence, marginal gains late.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin fig4 [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case2::{calibrate_version, emulator_config, node_counts};
use lodcal_bench::report::{fnum, Table};
use mpisim::prelude::*;
use simcal::prelude::*;

fn main() {
    let args = ExpArgs::parse(500);
    let cfg = emulator_config(args.fast);
    let base_nodes = node_counts(args.fast)[0];

    let scenarios = dataset(
        &BenchmarkKind::CALIBRATION_SET,
        &[base_nodes],
        &cfg,
        args.seed,
    );
    eprintln!(
        "calibrating against {} benchmarks at {base_nodes} nodes",
        scenarios.len()
    );

    let loss = MatrixLoss::paper_set()[0].clone(); // L1
    let result = calibrate_version(
        MpiSimulatorVersion::highest_detail(),
        &scenarios,
        loss,
        args.budget,
        args.seed,
    );

    let mut table = Table::new(&["evaluations", "elapsed_s", "best_loss"]);
    for p in &result.trace {
        table.row(vec![
            p.evaluations.to_string(),
            format!("{:.3}", p.elapsed_secs),
            format!("{:.5}", p.best_loss),
        ]);
    }

    println!("Figure 4: loss vs. time, {base_nodes}-node ground truth, BO-GP + L1\n");
    println!("{}", table.render());
    println!(
        "final loss {} after {} evaluations in {:.2}s",
        fnum(result.loss),
        result.evaluations,
        result.elapsed_secs
    );
    args.maybe_write_tsv(&table);
}
