//! Regenerates **Figure 5**: percent relative error between simulated and
//! ground-truth transfer rates for all 16 calibrated MPI simulator
//! versions. As in the paper (§6.4), training and testing both use the
//! 128-node PingPing/PingPong/BiRandom ground truth (deliberate
//! overfitting; generalization is studied by `sec6_5`). With
//! `--uncalibrated`, also reports the §6.4 spec-based baseline.
//!
//! The (version × restart) grid is driven by the lodsel sweep subsystem:
//! runs fan onto the work-stealing pool, `--ledger PATH` makes the sweep
//! resumable (bit-for-bit), and the accuracy-versus-cost recommendation
//! is reported on stderr alongside the figure's table.
//!
//! Paper shapes to reproduce:
//! - all versions land in a similar error band (average 13-24%);
//! - complex nodes slightly better in most cases;
//! - fixed change points give lower variance than arbitrary ones;
//! - backbone+links strikes the best accuracy/dimensionality compromise,
//!   while 4-ary tree / fat-tree topologies do worse;
//! - the spec-based baseline is ~91-97% error.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin fig5 [-- --fast --uncalibrated]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::summarize;
use lodcal_bench::case2::{node_counts, rate_errors};
use lodcal_bench::report::{pct, Table};
use lodsel::prelude::*;
use mpisim::prelude::*;

fn main() {
    let args = ExpArgs::parse(500);
    let base_nodes = node_counts(args.fast)[0];
    let family = MpiFamily::paper(args.fast, args.seed);

    // Best of 5 restarts per version by training loss, as in the paper.
    let config = SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: args.budget,
        },
        restarts: 5,
        seed: args.seed,
        epsilon: args.epsilon,
        max_units: None,
        max_fault_retries: 2,
        cache: args.cache.as_ref().map(std::path::PathBuf::from),
    };
    let ledger = args.open_ledger();
    let recorder = args.install_trace();
    let outcome = run_sweep(&family, &config, ledger.as_ref());
    args.write_trace(recorder);

    let mut table = Table::new(&[
        "version (topology/node/protocol)",
        "avg err %",
        "min err %",
        "max err %",
    ]);
    for v in &outcome.versions {
        // Per-benchmark errors: bars (avg) and error bars (min/max).
        let (avg, min, max) = summarize(&v.samples);
        table.row(vec![v.label.clone(), pct(avg), pct(min), pct(max)]);
    }

    println!(
        "Figure 5: percent relative transfer-rate error, all 16 calibrated versions \
         ({base_nodes}-node ground truth)\n"
    );
    println!("{}", table.render());

    if args.uncalibrated {
        let version = MpiSimulatorVersion::lowest_detail();
        let calib = spec_calibration(version);
        let errs = rate_errors(version, &calib, family.scenarios());
        let (avg, min, max) = summarize(&errs);
        let mut t = Table::new(&["baseline", "avg err %", "min err %", "max err %"]);
        t.row(vec![
            "spec-based, lowest detail".into(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
        println!("§6.4 uncalibrated baseline (Summit spec values, no calibration):\n");
        println!("{}", t.render());
    }

    if let Some(rec) = &outcome.recommendation {
        eprint!("{}", render_recommendation(rec));
    }
    args.maybe_write_tsv(&table);
}
