//! Regenerates **Figure 5**: percent relative error between simulated and
//! ground-truth transfer rates for all 16 calibrated MPI simulator
//! versions. As in the paper (§6.4), training and testing both use the
//! 128-node PingPing/PingPong/BiRandom ground truth (deliberate
//! overfitting; generalization is studied by `sec6_5`). With
//! `--uncalibrated`, also reports the §6.4 spec-based baseline.
//!
//! Paper shapes to reproduce:
//! - all versions land in a similar error band (average 13-24%);
//! - complex nodes slightly better in most cases;
//! - fixed change points give lower variance than arbitrary ones;
//! - backbone+links strikes the best accuracy/dimensionality compromise,
//!   while 4-ary tree / fat-tree topologies do worse;
//! - the spec-based baseline is ~91-97% error.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin fig5 [-- --fast --uncalibrated]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::summarize;
use lodcal_bench::case2::{calibrate_version_best_of, emulator_config, node_counts, rate_errors};
use lodcal_bench::report::{pct, Table};
use mpisim::prelude::*;
use simcal::prelude::*;

fn main() {
    let args = ExpArgs::parse(500);
    let cfg = emulator_config(args.fast);
    let base_nodes = node_counts(args.fast)[0];

    let scenarios = dataset(
        &BenchmarkKind::CALIBRATION_SET,
        &[base_nodes],
        &cfg,
        args.seed,
    );
    let loss = MatrixLoss::paper_set()[0].clone(); // L1 (selected by Table 5)

    let mut table = Table::new(&[
        "version (topology/node/protocol)",
        "avg err %",
        "min err %",
        "max err %",
    ]);

    for version in MpiSimulatorVersion::all() {
        let result =
            calibrate_version_best_of(version, &scenarios, loss.clone(), args.budget, args.seed, 5);
        // Per-benchmark errors: bars (avg) and error bars (min/max).
        let errs = rate_errors(version, &result.calibration, &scenarios);
        let (avg, min, max) = summarize(&errs);
        eprintln!(
            "{}: loss {:.3}, err avg {:.1}%",
            version.label(),
            result.loss,
            avg * 100.0
        );
        table.row(vec![version.label(), pct(avg), pct(min), pct(max)]);
    }

    println!(
        "Figure 5: percent relative transfer-rate error, all 16 calibrated versions \
         ({base_nodes}-node ground truth)\n"
    );
    println!("{}", table.render());

    if args.uncalibrated {
        let version = MpiSimulatorVersion::lowest_detail();
        let calib = spec_calibration(version);
        let errs = rate_errors(version, &calib, &scenarios);
        let (avg, min, max) = summarize(&errs);
        let mut t = Table::new(&["baseline", "avg err %", "min err %", "max err %"]);
        t.row(vec![
            "spec-based, lowest detail".into(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
        println!("§6.4 uncalibrated baseline (Summit spec values, no calibration):\n");
        println!("{}", t.render());
    }
    args.maybe_write_tsv(&table);
}
