//! Regenerates **Table 1**: the workflow specifications behind the
//! ground-truth executions — and verifies, by generating one workflow per
//! grid point, that the generators honour the requested task counts and
//! data footprints.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin table1
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::report::{fnum, Table};
use wfsim::prelude::*;

fn main() {
    let args = ExpArgs::parse(0);

    let mut table = Table::new(&[
        "application",
        "sizes (#tasks)",
        "work/task (s)",
        "footprints (MB)",
        "workers",
        "generated depth range",
    ]);

    for row in table1() {
        // Generate the smallest and largest size to report structure.
        let mut depths = Vec::new();
        for &size in [row.sizes.first(), row.sizes.last()].into_iter().flatten() {
            let wf = generate(&WorkflowSpec {
                app: row.app,
                num_tasks: size,
                work_per_task_secs: row.works_secs[0],
                data_footprint_bytes: row.footprints_mb[1] * 1e6,
                seed: args.seed,
            });
            assert_eq!(wf.num_tasks(), size, "generator must honour the size");
            assert!(wf.validate().is_ok());
            depths.push(wf.depth());
        }
        table.row(vec![
            row.app.name().to_string(),
            row.sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            row.works_secs
                .iter()
                .map(|w| fnum(*w))
                .collect::<Vec<_>>()
                .join(", "),
            row.footprints_mb
                .iter()
                .map(|f| fnum(*f))
                .collect::<Vec<_>>()
                .join(", "),
            row.worker_counts
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            format!(
                "{}..{}",
                depths.iter().min().unwrap(),
                depths.iter().max().unwrap()
            ),
        ]);
    }

    println!("Table 1: workflow specifications used for ground-truth executions\n");
    println!("{}", table.render());
    args.maybe_write_tsv(&table);
}
