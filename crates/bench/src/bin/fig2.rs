//! Regenerates **Figure 2**: percent relative error between simulated and
//! ground-truth makespans for all 12 calibrated simulator versions, on
//! held-out "large" executions (§5.4 train/test split). With
//! `--uncalibrated`, also reports the §5.4 baseline: the lowest-detail
//! simulator with hardware-spec parameter values.
//!
//! Paper shapes to reproduce:
//! - simulating HTCondor is crucial (top half of the figure much worse);
//! - one-link ≈ star; shared+dedicated does worse (extra dimensionality);
//! - storage on all nodes brings only marginal benefit;
//! - the spec-based uncalibrated baseline is orders of magnitude worse.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin fig2 [-- --fast --uncalibrated]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::{calibrate_version_best_of, dataset_options, makespan_errors, summarize};
use lodcal_bench::report::{pct, Table};
use simcal::prelude::*;
use wfsim::prelude::*;

fn main() {
    let args = ExpArgs::parse(150);
    let opts = dataset_options(args.fast, args.seed);
    let apps: Vec<AppKind> = if args.fast {
        vec![AppKind::Genome1000, AppKind::Montage]
    } else {
        AppKind::REAL.to_vec()
    };

    // Per-application train/test splits (the paper's §5.4 scheme).
    let mut splits = Vec::new();
    for &app in &apps {
        let records = dataset_for(app, &opts);
        let (train, test) = split_train_test(&records);
        eprintln!(
            "{}: {} train / {} test records",
            app.name(),
            train.len(),
            test.len()
        );
        splits.push((
            app,
            WfScenario::from_records(&train),
            WfScenario::from_records(&test),
        ));
    }

    let loss = StructuredLoss::paper_set()[0].clone(); // L1 (selected by Table 3)
    let mut table = Table::new(&[
        "version (net/storage/compute)",
        "avg err %",
        "min err %",
        "max err %",
    ]);

    for version in SimulatorVersion::all() {
        // One calibration per application, then aggregate across apps —
        // the bars (avg) and error bars (min/max) of Figure 2.
        let mut per_app_errors = Vec::new();
        for (app, train, test) in &splits {
            let result =
                calibrate_version_best_of(version, train, loss.clone(), args.budget, args.seed, 3);
            let errs = makespan_errors(version, &result.calibration, test);
            per_app_errors.push(numeric::mean(&errs));
            eprintln!(
                "  {} / {}: train loss {:.3}, test err {:.1}%",
                version.label(),
                app.name(),
                result.loss,
                numeric::mean(&errs) * 100.0
            );
        }
        let (avg, min, max) = summarize(&per_app_errors);
        table.row(vec![version.label(), pct(avg), pct(min), pct(max)]);
    }

    println!("Figure 2: percent relative makespan error, all 12 calibrated versions\n");
    println!("{}", table.render());

    if args.uncalibrated {
        let version = SimulatorVersion::lowest_detail();
        let calib = spec_calibration(version);
        let mut per_app = Vec::new();
        for (app, _, test) in &splits {
            let errs = makespan_errors(version, &calib, test);
            per_app.push(numeric::mean(&errs));
            eprintln!(
                "  uncalibrated / {}: {:.0}%",
                app.name(),
                numeric::mean(&errs) * 100.0
            );
        }
        let (avg, min, max) = summarize(&per_app);
        let mut t = Table::new(&["baseline", "avg err %", "min err %", "max err %"]);
        t.row(vec![
            "spec-based, lowest detail".into(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
        println!("§5.4 uncalibrated baseline (hardware-spec values, no calibration):\n");
        println!("{}", t.render());
    }
    args.maybe_write_tsv(&table);
}
