//! Regenerates **Figure 2**: percent relative error between simulated and
//! ground-truth makespans for all 12 calibrated simulator versions, on
//! held-out "large" executions (§5.4 train/test split). With
//! `--uncalibrated`, also reports the §5.4 baseline: the lowest-detail
//! simulator with hardware-spec parameter values.
//!
//! The (version × application × restart) grid is driven by the lodsel
//! sweep subsystem: runs fan onto the work-stealing pool, `--ledger PATH`
//! makes the sweep resumable (an interrupted run picks up from its
//! checkpoints, bit-for-bit), and the accuracy-versus-cost recommendation
//! is reported on stderr alongside the figure's table.
//!
//! Paper shapes to reproduce:
//! - simulating HTCondor is crucial (top half of the figure much worse);
//! - one-link ≈ star; shared+dedicated does worse (extra dimensionality);
//! - storage on all nodes brings only marginal benefit;
//! - the spec-based uncalibrated baseline is orders of magnitude worse.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin fig2 [-- --fast --uncalibrated]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::case1::{makespan_errors, summarize};
use lodcal_bench::report::{pct, Table};
use lodsel::prelude::*;
use wfsim::prelude::*;

fn main() {
    let args = ExpArgs::parse(150);
    // The paper's §5.4 per-application train/test splits.
    let family = WfFamily::paper(args.fast, args.seed);
    for s in family.splits() {
        obs::diag!(
            "{}: {} train / {} test records",
            s.app,
            s.train.len(),
            s.test.len()
        );
    }

    // One calibration per (version, application), best of 3 restarts by
    // training loss, then aggregate across apps — the bars (avg) and
    // error bars (min/max) of Figure 2.
    let config = SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: args.budget,
        },
        restarts: 3,
        seed: args.seed,
        epsilon: args.epsilon,
        max_units: None,
        max_fault_retries: 2,
        cache: args.cache.as_ref().map(std::path::PathBuf::from),
    };
    let ledger = args.open_ledger();
    let recorder = args.install_trace();
    let outcome = run_sweep(&family, &config, ledger.as_ref());
    args.write_trace(recorder);

    let mut table = Table::new(&[
        "version (net/storage/compute)",
        "avg err %",
        "min err %",
        "max err %",
    ]);
    for v in &outcome.versions {
        let (avg, min, max) = summarize(&v.samples);
        table.row(vec![v.label.clone(), pct(avg), pct(min), pct(max)]);
    }

    println!("Figure 2: percent relative makespan error, all 12 calibrated versions\n");
    println!("{}", table.render());

    if args.uncalibrated {
        let version = SimulatorVersion::lowest_detail();
        let calib = spec_calibration(version);
        let mut per_app = Vec::new();
        for s in family.splits() {
            let errs = makespan_errors(version, &calib, &s.test);
            per_app.push(numeric::mean(&errs));
            obs::diag!(
                "uncalibrated / {}: {:.0}%",
                s.app,
                numeric::mean(&errs) * 100.0
            );
        }
        let (avg, min, max) = summarize(&per_app);
        let mut t = Table::new(&["baseline", "avg err %", "min err %", "max err %"]);
        t.row(vec![
            "spec-based, lowest detail".into(),
            pct(avg),
            pct(min),
            pct(max),
        ]);
        println!("§5.4 uncalibrated baseline (hardware-spec values, no calibration):\n");
        println!("{}", t.render());
    }

    if let Some(rec) = &outcome.recommendation {
        eprint!("{}", render_recommendation(rec));
    }
    args.maybe_write_tsv(&table);
}
