//! Regenerates **Table 3**: calibration error vs. algorithm and loss
//! function for case study #1, using the synthetic-benchmarking technique
//! of §3 — ground truth is generated *by the simulator itself* at a known
//! reference calibration θ*, so the relative L1 distance of each computed
//! calibration to θ* (x100) is a sound quality measure.
//!
//! Paper shape to reproduce: BO-GP with L1 achieves the lowest
//! calibration error overall, and BO-GP generally beats RAND.
//!
//! ```text
//! cargo run --release -p lodcal-bench --bin table3 [-- --fast]
//! ```

use lodcal_bench::args::ExpArgs;
use lodcal_bench::report::{fnum, Table};
use simcal::prelude::*;
use wfsim::prelude::*;

fn main() {
    let args = ExpArgs::parse(300);
    let version = SimulatorVersion::highest_detail();
    let space = version.parameter_space();
    let sim = WorkflowSimulator::new(version);

    // One arbitrary-but-interior reference calibration, as in the paper
    // (one synthetic-benchmarking pass). Interior values keep every
    // simulated component exercised and identifiable.
    let patterns: [(f64, f64); 1] = [(0.35, 0.65)];
    let mut refs: Vec<(Calibration, Vec<WfScenario>)> = Vec::new();
    let opts = DatasetOptions {
        repetitions: 1,
        seed: args.seed,
        size_indices: vec![0, 1],
        work_indices: vec![1, 3],
        footprint_indices: vec![1, 2],
        worker_counts: vec![1, 4],
        ..Default::default()
    };
    let apps = if args.fast {
        vec![AppKind::Forkjoin]
    } else {
        vec![AppKind::Genome1000]
    };
    for &(even, odd) in &patterns {
        let reference_unit: Vec<f64> = (0..space.dim())
            .map(|i| if i % 2 == 0 { even } else { odd })
            .collect();
        let reference = space.denormalize(&reference_unit);
        let mut scenarios: Vec<WfScenario> = Vec::new();
        for record in wfsim::prelude::dataset(&apps, &opts) {
            let workflow = generate(&record.spec);
            let out = sim.simulate(&workflow, record.n_workers, &reference);
            scenarios.push(WfScenario {
                workflow,
                n_workers: record.n_workers,
                gt_makespan: out.makespan,
                gt_task_times: out.task_times,
            });
        }
        refs.push((reference, scenarios));
    }
    eprintln!(
        "synthetic ground truth: {} references x {} scenarios, {}-parameter space",
        refs.len(),
        refs[0].1.len(),
        space.dim()
    );

    let algorithms = [AlgorithmKind::Random, AlgorithmKind::BoGp];
    let losses = StructuredLoss::paper_set();

    let mut header = vec!["Alg".to_string()];
    header.extend(losses.iter().map(|l| l.name().to_string()));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

    let mut best: Option<(f64, String, String)> = None;
    for alg in algorithms {
        let mut cells = vec![alg.name().to_string()];
        for loss in &losses {
            let mut errs = Vec::new();
            for (reference, scenarios) in &refs {
                let obj = objective(&sim, scenarios, loss.clone());
                let result = Calibrator {
                    algorithm: alg,
                    budget: args.budget,
                    seed: args.seed,
                }
                .calibrate(&obj);
                errs.push(calibration_error(&space, &result.calibration, reference));
            }
            let err = numeric::mean(&errs);
            if best.as_ref().is_none_or(|(b, _, _)| err < *b) {
                best = Some((err, alg.name().to_string(), loss.name().to_string()));
            }
            cells.push(fnum(err));
            eprintln!(
                "  {} / {}: calibration error {:.2}",
                alg.name(),
                loss.name(),
                err
            );
        }
        table.row(cells);
    }

    println!("Table 3: calibration error vs. algorithm and loss function (lower is better)\n");
    println!("{}", table.render());
    let (err, alg, loss) = best.expect("at least one cell");
    println!(
        "best pair: {alg} with {loss} (calibration error {})",
        fnum(err)
    );
    args.maybe_write_tsv(&table);
}
