//! # calibd — calibration-as-a-service
//!
//! A long-running daemon that accepts calibration sweep jobs over a
//! zero-dependency JSONL wire protocol (`lodcal-calibd v1`, one frame
//! per line over TCP), executes them as sharded resumable sweeps via
//! [`lodsel::shard`], and streams progress frames shaped like the
//! `lodcal-trace` counter events.
//!
//! - [`proto`] — the versioned wire schema: requests, responses, frame
//!   I/O with an oversize guard, and the lenient-parse contract shared
//!   with the trace reader;
//! - [`daemon`] — job registry, durable `jobs.jsonl` lifecycle log with
//!   replay-on-start, fair per-tenant scheduling, quota admission, and
//!   the TCP accept loop;
//! - [`client`] — a blocking client used by `calibctl` and the tests.
//!
//! Two binaries ship with the crate: `calibd` (the server) and
//! `calibctl` (submit / status / watch / cancel / shutdown).

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod proto;
