//! The calibd daemon: a job registry, fair multi-tenant scheduling,
//! sharded sweep execution, and the TCP frontend.
//!
//! ## Durability and replay
//!
//! Every state transition a restart must survive is appended to
//! `data_dir/jobs.jsonl` (a [`JobEvent`] per line, read leniently like
//! the run ledger). On startup the daemon replays the log: jobs with a
//! `Submitted` event but no terminal event are re-queued in id order and
//! resume from their ledger shards under `data_dir/job-<id>/` — every
//! calibration run already checkpointed there is served without
//! re-consuming any budget, so a kill at any point re-runs at most the
//! work that was in flight, and the resumed outcome digest is
//! bit-for-bit what an uninterrupted run would have produced.
//!
//! ## Quota semantics
//!
//! Admission charges a job's full planned evaluation count against its
//! tenant's [`QuotaBook`] entry up front (the plan is deterministic, so
//! the count is exact). Completion keeps the charge; failure and
//! cancellation refund it in full. Replayed `Submitted` events re-charge
//! (the in-memory book dies with the process), and replayed terminal
//! events re-apply their refunds — resumed jobs are never charged twice.
//!
//! ## Scheduling
//!
//! Queued jobs are drained round-robin across tenants ([`FairQueue`]):
//! a tenant that submits a burst of jobs cannot starve another tenant's
//! single job. Shard execution itself fans out on the process-wide
//! rayon pool; `workers` controls how many jobs make progress
//! concurrently (0 is allowed and means "accept but never execute",
//! which the tests use to pin queue behaviour deterministically).

use crate::proto::{
    check_hello, counter_event, parse_request, read_frame, write_frame, FrameError, JobSpec,
    JobState, JobStatus, ProtoError, Request, Response, SCHEMA_NAME, SCHEMA_VERSION,
};
use lodsel::ledger::{ledger_status, Ledger, LedgerEvent, LedgerStatus};
use lodsel::prelude::{
    BatchFamily, BudgetPolicy, GridFamily, MpiFamily, SweepConfig, VersionFamily, WfFamily,
};
use lodsel::shard::{merge_shards, run_shard, shard_path};
use lodsel::sweep::try_run_sweep;
use serde::{Deserialize, Serialize};
use simcal::prelude::{Budget, QuotaBook};
use std::collections::{BTreeMap, VecDeque};
use std::fs::OpenOptions;
use std::io::{self, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Root of the daemon's durable state: `jobs.jsonl` plus one
    /// `job-<id>/` shard directory per job.
    pub data_dir: PathBuf,
    /// Shard count for jobs that do not pick one (`spec.shards == 0`).
    pub default_shards: usize,
    /// Worker threads executing jobs concurrently (0 = accept only).
    pub workers: usize,
    /// Evaluation quota for tenants without an explicit limit.
    pub default_quota: usize,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(String, usize)>,
}

impl DaemonConfig {
    /// Loopback daemon rooted at `data_dir` with generous defaults.
    pub fn local(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            data_dir: data_dir.into(),
            default_shards: 2,
            workers: 2,
            default_quota: 10_000_000,
            tenant_quotas: Vec::new(),
        }
    }
}

/// One line of `jobs.jsonl`: the durable job-lifecycle log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobEvent {
    /// A job was admitted. `planned_evals` is recorded so replay can
    /// re-charge quota without reconstructing the family.
    Submitted {
        /// Job id.
        id: u64,
        /// The submitted spec.
        spec: JobSpec,
        /// Resolved shard count.
        shards: usize,
        /// Evaluations charged at admission.
        planned_evals: usize,
    },
    /// The job finished with a recommendation.
    Completed {
        /// Job id.
        id: u64,
        /// Outcome digest.
        digest: String,
        /// Recommended version label.
        chosen: Option<String>,
    },
    /// The job gave up.
    Failed {
        /// Job id.
        id: u64,
        /// Why.
        error: String,
    },
    /// The job was cancelled by a client.
    Cancelled {
        /// Job id.
        id: u64,
    },
}

/// Round-robin-fair per-tenant job queue: `pop` serves tenants in
/// rotation, one job at a time, so no tenant's backlog starves another.
#[derive(Default)]
pub struct FairQueue {
    queues: BTreeMap<String, VecDeque<u64>>,
    rotation: VecDeque<String>,
}

impl FairQueue {
    /// Enqueue `job` for `tenant` (FIFO within the tenant).
    pub fn push(&mut self, tenant: &str, job: u64) {
        if !self.queues.contains_key(tenant) {
            self.rotation.push_back(tenant.to_string());
        }
        self.queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(job);
    }

    /// Dequeue the next job fairly: the first tenant in rotation with
    /// work yields one job and moves to the back of the rotation.
    pub fn pop(&mut self) -> Option<u64> {
        for _ in 0..self.rotation.len() {
            let tenant = self.rotation.pop_front()?;
            let job = self.queues.get_mut(&tenant).and_then(VecDeque::pop_front);
            self.rotation.push_back(tenant);
            if job.is_some() {
                return job;
            }
        }
        None
    }

    /// Drop a queued job wherever it sits. Returns whether it was found.
    pub fn remove(&mut self, job: u64) -> bool {
        for queue in self.queues.values_mut() {
            if let Some(at) = queue.iter().position(|&j| j == job) {
                queue.remove(at);
                return true;
            }
        }
        false
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Job {
    spec: JobSpec,
    shards: usize,
    planned_evals: usize,
    state: JobState,
    digest: Option<String>,
    chosen: Option<String>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
}

#[derive(Default)]
struct Registry {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    queue: FairQueue,
}

struct Shared {
    config: DaemonConfig,
    addr: SocketAddr,
    registry: Mutex<Registry>,
    ready: Condvar,
    shutdown: AtomicBool,
    quotas: QuotaBook,
    jobs_log: Mutex<std::fs::File>,
}

impl Shared {
    fn log_event(&self, event: &JobEvent) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut file = self.jobs_log.lock().expect("jobs log lock");
            let _ = file.write_all(line.as_bytes());
            let _ = file.write_all(b"\n");
            let _ = file.flush();
        }
    }
}

/// Handle to a running daemon: its bound address plus shutdown/join.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Ask every thread to stop (running jobs pause at their next shard
    /// boundary and will resume from their ledgers on the next start).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        // Wake the blocking accept loop.
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Shut down and wait for the worker and accept threads to exit.
    pub fn stop(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until the daemon shuts down (via a `Shutdown` request).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The daemon entry point.
pub struct Daemon;

impl Daemon {
    /// Bind, replay `jobs.jsonl`, and start worker + accept threads.
    pub fn start(config: DaemonConfig) -> io::Result<DaemonHandle> {
        std::fs::create_dir_all(&config.data_dir)?;
        let quotas = QuotaBook::new(config.default_quota);
        for (tenant, limit) in &config.tenant_quotas {
            quotas.set_limit(tenant, *limit);
        }
        let log_path = config.data_dir.join("jobs.jsonl");
        let registry = replay(&log_path, &quotas)?;
        let jobs_log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            addr,
            registry: Mutex::new(registry),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            quotas,
            jobs_log: Mutex::new(jobs_log),
        });

        let mut threads = Vec::new();
        for _ in 0..shared.config.workers {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        Ok(DaemonHandle { shared, threads })
    }
}

/// Rebuild the registry from the job log, re-applying quota charges and
/// refunds, and re-queue every non-terminal job in id order.
fn replay(log_path: &Path, quotas: &QuotaBook) -> io::Result<Registry> {
    let mut registry = Registry::default();
    let text = match std::fs::read_to_string(log_path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(event) = serde_json::from_str::<JobEvent>(line) else {
            continue; // torn tail or foreign line: lenient, like the ledger
        };
        match event {
            JobEvent::Submitted {
                id,
                spec,
                shards,
                planned_evals,
            } => {
                // Re-charge: it was admitted before; changed limits only
                // gate future admissions.
                let _ = quotas.charge(&spec.tenant, planned_evals);
                registry.next_id = registry.next_id.max(id + 1);
                registry.jobs.insert(
                    id,
                    Job {
                        spec,
                        shards,
                        planned_evals,
                        state: JobState::Queued,
                        digest: None,
                        chosen: None,
                        error: None,
                        cancel: Arc::new(AtomicBool::new(false)),
                    },
                );
            }
            JobEvent::Completed { id, digest, chosen } => {
                if let Some(job) = registry.jobs.get_mut(&id) {
                    job.state = JobState::Completed;
                    job.digest = Some(digest);
                    job.chosen = chosen;
                }
            }
            JobEvent::Failed { id, error } => {
                if let Some(job) = registry.jobs.get_mut(&id) {
                    job.state = JobState::Failed;
                    job.error = Some(error);
                    quotas.refund(&job.spec.tenant, job.planned_evals);
                }
            }
            JobEvent::Cancelled { id } => {
                if let Some(job) = registry.jobs.get_mut(&id) {
                    job.state = JobState::Cancelled;
                    quotas.refund(&job.spec.tenant, job.planned_evals);
                }
            }
        }
    }
    let pending: Vec<(u64, String)> = registry
        .jobs
        .iter()
        .filter(|(_, j)| j.state == JobState::Queued)
        .map(|(id, j)| (*id, j.spec.tenant.clone()))
        .collect();
    for (id, tenant) in pending {
        registry.queue.push(&tenant, id);
    }
    Ok(registry)
}

/// Instantiate the family a spec names.
fn make_family(spec: &JobSpec) -> Result<Box<dyn VersionFamily>, String> {
    match spec.family.as_str() {
        "wf" => Ok(Box::new(WfFamily::paper(spec.fast, spec.seed))),
        "mpi" => Ok(Box::new(MpiFamily::paper(spec.fast, spec.seed))),
        "batch" => Ok(Box::new(BatchFamily::paper(spec.fast, spec.seed))),
        "grid" => Ok(Box::new(GridFamily::paper(spec.fast, spec.seed))),
        other => Err(format!(
            "unknown family {other:?} (want wf, mpi, batch, or grid)"
        )),
    }
}

/// The sweep configuration a spec maps to.
fn sweep_config(spec: &JobSpec) -> SweepConfig {
    SweepConfig {
        budget: match (spec.total_evals, spec.sh_eta) {
            (Some(total), Some(eta)) => BudgetPolicy::SuccessiveHalving {
                total,
                eta,
                min_scenarios: spec.sh_min_scenarios.unwrap_or(1),
            },
            (Some(total), None) => BudgetPolicy::TotalEvaluations { total },
            (None, _) => BudgetPolicy::PerRun {
                budget: Budget::Evaluations(spec.budget_evals),
            },
        },
        restarts: spec.restarts,
        seed: spec.seed,
        epsilon: spec.epsilon,
        max_units: None,
        max_fault_retries: 2,
        cache: None,
    }
}

/// A job's shard directory under the daemon's data dir.
fn job_dir(data_dir: &Path, id: u64) -> PathBuf {
    data_dir.join(format!("job-{id}"))
}

/// Combined ledger summary across a job's shard files.
fn job_ledger_status(data_dir: &Path, id: u64, shards: usize) -> LedgerStatus {
    let dir = job_dir(data_dir, id);
    let mut events: Vec<LedgerEvent> = Vec::new();
    for s in 0..shards {
        if let Ok(mut shard_events) = Ledger::read(shard_path(&dir, s)) {
            events.append(&mut shard_events);
        }
    }
    ledger_status(&events)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claimed = {
            let mut registry = shared.registry.lock().expect("registry lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = registry.queue.pop() {
                    break id;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(registry, Duration::from_millis(100))
                    .expect("registry lock");
                registry = guard;
            }
        };
        execute_job(shared, claimed);
    }
}

fn execute_job(shared: &Arc<Shared>, id: u64) {
    let (spec, shards, cancel) = {
        let mut registry = shared.registry.lock().expect("registry lock");
        let Some(job) = registry.jobs.get_mut(&id) else {
            return;
        };
        job.state = JobState::Running;
        (job.spec.clone(), job.shards, job.cancel.clone())
    };
    obs::counter(obs::Counter::JobsActive, 1);
    let _job_span = obs::span!(
        "job",
        id = id,
        family = spec.family.clone(),
        shards = shards
    );

    let family = match make_family(&spec) {
        Ok(f) => f,
        Err(e) => return finalize_failed(shared, id, e),
    };
    let config = sweep_config(&spec);
    let dir = job_dir(&shared.config.data_dir, id);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return finalize_failed(shared, id, format!("cannot create {}: {e}", dir.display()));
    }

    for s in 0..shards {
        if cancel.load(Ordering::SeqCst) {
            return finalize_cancelled(shared, id);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Dying mid-job: no terminal event, so the next start
            // re-queues the job and resumes from the shard ledgers.
            let mut registry = shared.registry.lock().expect("registry lock");
            if let Some(job) = registry.jobs.get_mut(&id) {
                job.state = JobState::Queued;
            }
            return;
        }
        if let Err(e) = run_shard(family.as_ref(), &config, s, shards, &dir) {
            return finalize_failed(shared, id, e.to_string());
        }
    }
    if cancel.load(Ordering::SeqCst) {
        return finalize_cancelled(shared, id);
    }
    let paths: Vec<PathBuf> = (0..shards).map(|s| shard_path(&dir, s)).collect();
    let merged = match merge_shards(&paths, &dir.join("merged.jsonl")) {
        Ok(l) => l,
        Err(e) => return finalize_failed(shared, id, e.to_string()),
    };
    let outcome = match try_run_sweep(family.as_ref(), &config, Some(&merged)) {
        Ok(outcome) => outcome,
        Err(e) => return finalize_failed(shared, id, e.to_string()),
    };
    let digest = outcome.digest();
    let chosen = outcome.recommendation.as_ref().map(|r| r.chosen.clone());
    shared.log_event(&JobEvent::Completed {
        id,
        digest: digest.clone(),
        chosen: chosen.clone(),
    });
    let mut registry = shared.registry.lock().expect("registry lock");
    if let Some(job) = registry.jobs.get_mut(&id) {
        job.state = JobState::Completed;
        job.digest = Some(digest);
        job.chosen = chosen;
    }
}

fn finalize_failed(shared: &Arc<Shared>, id: u64, error: String) {
    shared.log_event(&JobEvent::Failed {
        id,
        error: error.clone(),
    });
    let mut registry = shared.registry.lock().expect("registry lock");
    if let Some(job) = registry.jobs.get_mut(&id) {
        job.state = JobState::Failed;
        job.error = Some(error);
        shared.quotas.refund(&job.spec.tenant, job.planned_evals);
    }
}

fn finalize_cancelled(shared: &Arc<Shared>, id: u64) {
    shared.log_event(&JobEvent::Cancelled { id });
    let mut registry = shared.registry.lock().expect("registry lock");
    if let Some(job) = registry.jobs.get_mut(&id) {
        job.state = JobState::Cancelled;
        shared.quotas.refund(&job.spec.tenant, job.planned_evals);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        // Connection handlers are detached: they die with their socket.
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &shared);
        });
    }
}

fn job_status_of(shared: &Shared, id: u64, job: &Job) -> JobStatus {
    JobStatus {
        job: id,
        tenant: job.spec.tenant.clone(),
        family: job.spec.family.clone(),
        shards: job.shards,
        state: job.state,
        digest: job.digest.clone(),
        chosen: job.chosen.clone(),
        error: job.error.clone(),
        ledger: Some(job_ledger_status(&shared.config.data_dir, id, job.shards)),
    }
}

/// Admit or refuse a submission, under the registry lock.
fn admit(shared: &Shared, spec: JobSpec) -> Response {
    let family = match make_family(&spec) {
        Ok(f) => f,
        Err(e) => return Response::Rejected { reason: e },
    };
    let units = family.units().len();
    let restarts = spec.restarts.max(1);
    if spec.sh_eta.is_some() && spec.total_evals.is_none() {
        return Response::Rejected {
            reason: "successive halving needs a total evaluation budget (total_evals)".into(),
        };
    }
    if let Some(total) = spec.total_evals {
        if total < units * restarts {
            return Response::Rejected {
                reason: format!(
                    "total budget of {total} evaluations cannot cover {} runs",
                    units * restarts
                ),
            };
        }
    } else if spec.budget_evals == 0 {
        return Response::Rejected {
            reason: "budget_evals must be at least 1".into(),
        };
    }
    // Rung barriers are global rank points, so successive-halving jobs
    // always run on one shard regardless of the requested count.
    let shards = if spec.sh_eta.is_some() {
        1
    } else if spec.shards == 0 {
        shared.config.default_shards.max(1)
    } else {
        spec.shards
    };
    let planned = spec.planned_evaluations(units);
    if let Err(e) = shared.quotas.charge(&spec.tenant, planned) {
        return Response::Rejected {
            reason: e.to_string(),
        };
    }
    let mut registry = shared.registry.lock().expect("registry lock");
    registry.next_id = registry.next_id.max(1);
    let id = registry.next_id;
    registry.next_id += 1;
    shared.log_event(&JobEvent::Submitted {
        id,
        spec: spec.clone(),
        shards,
        planned_evals: planned,
    });
    let tenant = spec.tenant.clone();
    registry.jobs.insert(
        id,
        Job {
            spec,
            shards,
            planned_evals: planned,
            state: JobState::Queued,
            digest: None,
            chosen: None,
            error: None,
            cancel: Arc::new(AtomicBool::new(false)),
        },
    );
    registry.queue.push(&tenant, id);
    drop(registry);
    obs::counter(obs::Counter::JobsAccepted, 1);
    obs::counter(obs::Counter::JobsQueued, 1);
    shared.ready.notify_all();
    Response::Accepted { job: id }
}

fn handle_cancel(shared: &Shared, id: u64) -> Response {
    let mut registry = shared.registry.lock().expect("registry lock");
    let Some(job) = registry.jobs.get(&id) else {
        return Response::Error {
            message: format!("no such job {id}"),
        };
    };
    match job.state {
        JobState::Queued => {
            registry.queue.remove(id);
            drop(registry);
            finalize_cancelled_locked(shared, id);
            let registry = shared.registry.lock().expect("registry lock");
            let job = &registry.jobs[&id];
            Response::Jobs {
                jobs: vec![job_status_of(shared, id, job)],
            }
        }
        JobState::Running => {
            job.cancel.store(true, Ordering::SeqCst);
            let status = job_status_of(shared, id, job);
            Response::Jobs { jobs: vec![status] }
        }
        state => Response::Error {
            message: format!("job {id} is already {state:?}"),
        },
    }
}

fn finalize_cancelled_locked(shared: &Shared, id: u64) {
    shared.log_event(&JobEvent::Cancelled { id });
    let mut registry = shared.registry.lock().expect("registry lock");
    if let Some(job) = registry.jobs.get_mut(&id) {
        job.state = JobState::Cancelled;
        shared.quotas.refund(&job.spec.tenant, job.planned_evals);
    }
}

/// Stream progress frames for `id` until it reaches a terminal state.
fn handle_watch(shared: &Shared, id: u64, out: &mut TcpStream) -> io::Result<()> {
    let exists = shared
        .registry
        .lock()
        .expect("registry lock")
        .jobs
        .contains_key(&id);
    if !exists {
        return write_frame(
            out,
            &Response::Error {
                message: format!("no such job {id}"),
            },
        );
    }
    let mut seq = 0u64;
    let mut last_runs = usize::MAX;
    // Rung frames start at 0 (not MAX) so fixed-budget jobs — which never
    // complete a rung — stream exactly the frames they always did.
    let mut last_rungs = 0usize;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return write_frame(
                out,
                &Response::Error {
                    message: "daemon shutting down".into(),
                },
            );
        }
        let (state, shards, digest, chosen) = {
            let registry = shared.registry.lock().expect("registry lock");
            let job = &registry.jobs[&id];
            (
                job.state,
                job.shards,
                job.digest.clone(),
                job.chosen.clone(),
            )
        };
        let ledger = job_ledger_status(&shared.config.data_dir, id, shards);
        let runs = ledger.runs_done;
        if runs != last_runs {
            last_runs = runs;
            write_frame(
                out,
                &Response::Progress {
                    job: id,
                    seq,
                    event: counter_event("calibd_runs_completed", runs as u64),
                },
            )?;
            seq += 1;
        }
        let rungs = ledger.rungs_done;
        if rungs != last_rungs {
            last_rungs = rungs;
            write_frame(
                out,
                &Response::Progress {
                    job: id,
                    seq,
                    event: counter_event("calibd_rungs_completed", rungs as u64),
                },
            )?;
            seq += 1;
        }
        if state.terminal() {
            return write_frame(
                out,
                &Response::Done {
                    job: id,
                    state,
                    digest,
                    chosen,
                },
            );
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    // The connection opens with a Hello exchange; anything else is a
    // protocol error that closes the connection.
    match read_frame(&mut reader) {
        Ok(Some(line)) => match parse_request(&line) {
            Ok(Request::Hello { schema, version }) => {
                if let Err(e) = check_hello(&schema, version) {
                    write_frame(
                        &mut writer,
                        &Response::Error {
                            message: e.to_string(),
                        },
                    )?;
                    return Ok(());
                }
                write_frame(
                    &mut writer,
                    &Response::Hello {
                        schema: SCHEMA_NAME.into(),
                        version: SCHEMA_VERSION,
                    },
                )?;
            }
            Ok(_) => {
                write_frame(
                    &mut writer,
                    &Response::Error {
                        message: "first frame must be Hello".into(),
                    },
                )?;
                return Ok(());
            }
            Err(e) => {
                write_frame(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                )?;
                return Ok(());
            }
        },
        Ok(None) => return Ok(()),
        Err(e) => {
            let _ = write_frame(
                &mut writer,
                &Response::Error {
                    message: e.to_string(),
                },
            );
            return Ok(());
        }
    }

    loop {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e @ FrameError::Oversized { .. }) => {
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        let response = match parse_request(&line) {
            Ok(Request::Hello { schema, version }) => match check_hello(&schema, version) {
                Ok(()) => Response::Hello {
                    schema: SCHEMA_NAME.into(),
                    version: SCHEMA_VERSION,
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Ok(Request::Submit { spec }) => admit(shared, spec),
            Ok(Request::Status { job }) => {
                let registry = shared.registry.lock().expect("registry lock");
                let jobs: Vec<JobStatus> = match job {
                    Some(id) => match registry.jobs.get(&id) {
                        Some(j) => vec![job_status_of(shared, id, j)],
                        None => {
                            drop(registry);
                            write_frame(
                                &mut writer,
                                &Response::Error {
                                    message: format!("no such job {id}"),
                                },
                            )?;
                            continue;
                        }
                    },
                    None => registry
                        .jobs
                        .iter()
                        .map(|(id, j)| job_status_of(shared, *id, j))
                        .collect(),
                };
                Response::Jobs { jobs }
            }
            Ok(Request::Watch { job }) => {
                handle_watch(shared, job, &mut writer)?;
                continue;
            }
            Ok(Request::Cancel { job }) => handle_cancel(shared, job),
            Ok(Request::Shutdown) => {
                write_frame(&mut writer, &Response::ShuttingDown)?;
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.ready.notify_all();
                let _ = TcpStream::connect(shared.addr);
                return Ok(());
            }
            Err(
                e @ (ProtoError::UnknownKind(_)
                | ProtoError::BadJson(_)
                | ProtoError::Invalid(_)
                | ProtoError::BadHello(_)),
            ) => Response::Error {
                message: e.to_string(),
            },
        };
        write_frame(&mut writer, &response)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_queue_round_robins_across_tenants() {
        let mut q = FairQueue::default();
        q.push("a", 1);
        q.push("a", 2);
        q.push("a", 3);
        q.push("b", 4);
        q.push("c", 5);
        // One job per tenant per rotation: a, b, c, then a's backlog.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fair_queue_removal_and_reuse() {
        let mut q = FairQueue::default();
        q.push("a", 1);
        q.push("b", 2);
        assert!(q.remove(1));
        assert!(!q.remove(99));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
        // A drained tenant accepts new work without duplicating its
        // rotation slot.
        q.push("a", 3);
        q.push("a", 4);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn planned_evaluations_cover_both_budget_shapes() {
        let mut spec = JobSpec {
            family: "batch".into(),
            fast: true,
            budget_evals: 5,
            total_evals: None,
            restarts: 2,
            seed: 1,
            epsilon: 0.1,
            shards: 0,
            tenant: "t".into(),
            sh_eta: None,
            sh_min_scenarios: None,
        };
        assert_eq!(spec.planned_evaluations(4), 4 * 2 * 5);
        spec.total_evals = Some(123);
        assert_eq!(spec.planned_evaluations(4), 123);
        spec.total_evals = None;
        spec.restarts = 0; // clamped to 1, like the sweep itself
        assert_eq!(spec.planned_evaluations(4), 4 * 5);
    }

    #[test]
    fn planned_evaluations_follow_the_sh_schedule() {
        let spec = JobSpec {
            family: "batch".into(),
            fast: true,
            budget_evals: 5,
            total_evals: Some(48),
            restarts: 2,
            seed: 1,
            epsilon: 0.1,
            shards: 0,
            tenant: "t".into(),
            sh_eta: Some(2),
            sh_min_scenarios: None,
        };
        // 4 units × 2 restarts = 8 runs: the eta-2 ladder over a 48
        // budget spends 44 (see the ShSchedule tests), and the charge
        // matches what the sweep will actually consume.
        assert_eq!(spec.planned_evaluations(4), 44);
        // An unplannable total charges as requested; the worker's typed
        // failure refunds it.
        let starved = JobSpec {
            total_evals: Some(9),
            ..spec
        };
        assert_eq!(starved.planned_evaluations(4), 9);
    }
}
