//! Command-line client for the calibd daemon.
//!
//! Subcommands: `submit` a sweep job, `status` one or all jobs (text or
//! JSON, same schema `lodsel --status-json` uses for the embedded
//! ledger summary), `watch` a job's streaming progress to completion,
//! `cancel`, and `shutdown`.
//!
//! Output convention: results go to stdout, diagnostics to stderr.

use calibd::client::Client;
use calibd::proto::{JobSpec, JobState, JobStatus};
use std::process::exit;

const USAGE: &str = "\
usage: calibctl [--addr <host:port>] <command> [options]
commands:
  submit    submit a sweep job
    --family <name>          family to sweep: wf, mpi, batch, or grid
                             (default: batch)
    --fast                   shrunken experiment grid for smoke runs
    --budget-evals <n>       per-run evaluation budget (default: 60)
    --total-evals <n>        instead: one shared budget divided fairly
    --budget sh:T:E[:M]      instead: successive halving — total budget T,
                             elimination factor E, min subset size M
                             (default 1); forces a single shard
    --restarts <n>           calibration restarts per unit (default: 2)
    --seed <n>               master seed (default: 42)
    --epsilon <f>            recommendation tolerance (default: 0.1)
    --shards <n>             ledger shards (default: daemon's choice)
    --tenant <name>          quota tenant (default: default)
    --watch                  stream progress until the job finishes
  status    show jobs
    --job <id>               just this job (default: all)
    --json                   one JSON line per job
  watch     stream a job's progress until it finishes
    --job <id>               required
  cancel    cancel a queued or running job
    --job <id>               required
  shutdown  ask the daemon to exit
global:
  --addr <host:port>         daemon address (default: 127.0.0.1:4550)
  --help                     print this help";

fn die(msg: &str) -> ! {
    obs::diag!("{msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn fail(msg: &str) -> ! {
    obs::diag!("{msg}");
    exit(1);
}

fn state_name(state: JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Running => "running",
        JobState::Completed => "completed",
        JobState::Failed => "failed",
        JobState::Cancelled => "cancelled",
    }
}

fn print_status_line(status: &JobStatus, json: bool) {
    if json {
        match serde_json::to_string(status) {
            Ok(line) => println!("{line}"),
            Err(e) => fail(&format!("cannot serialize status: {e}")),
        }
        return;
    }
    let runs = status
        .ledger
        .as_ref()
        .map(|l| l.runs_done)
        .unwrap_or_default();
    let mut line = format!(
        "job {} tenant={} family={} shards={} state={} runs_done={runs}",
        status.job,
        status.tenant,
        status.family,
        status.shards,
        state_name(status.state),
    );
    if let Some(chosen) = &status.chosen {
        line.push_str(&format!(" chosen={chosen}"));
    }
    if let Some(digest) = &status.digest {
        line.push_str(&format!(" digest={digest}"));
    }
    if let Some(error) = &status.error {
        line.push_str(&format!(" error={error:?}"));
    }
    println!("{line}");
}

fn watch_to_completion(client: &mut Client, job: u64) -> ! {
    let result = client.watch(job, |_seq, event| {
        if let (Some(name), Some(value)) = (
            event.get("name").and_then(|v| v.as_str()),
            event.get("value").and_then(|v| v.as_f64()),
        ) {
            obs::diag!("job {job}: {name}={value}");
        }
    });
    match result {
        Ok((state, digest, chosen)) => {
            let chosen = chosen.unwrap_or_else(|| "-".into());
            let digest = digest.unwrap_or_else(|| "-".into());
            println!(
                "job {job} {} chosen={chosen} digest={digest}",
                state_name(state)
            );
            exit(if state == JobState::Completed { 0 } else { 1 });
        }
        Err(e) => fail(&format!("watch failed: {e}")),
    }
}

fn main() {
    let mut addr = "127.0.0.1:4550".to_string();
    let mut command: Option<String> = None;
    let mut spec = JobSpec {
        family: "batch".into(),
        fast: false,
        budget_evals: 60,
        total_evals: None,
        restarts: 2,
        seed: 42,
        epsilon: 0.1,
        shards: 0,
        tenant: "default".into(),
        sh_eta: None,
        sh_min_scenarios: None,
    };
    let mut job: Option<u64> = None;
    let mut json = false;
    let mut watch_after_submit = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--family" => spec.family = value("--family"),
            "--fast" => spec.fast = true,
            "--budget-evals" => {
                spec.budget_evals = value("--budget-evals")
                    .parse()
                    .unwrap_or_else(|_| die("--budget-evals must be an integer"));
            }
            "--total-evals" => {
                spec.total_evals = Some(
                    value("--total-evals")
                        .parse()
                        .unwrap_or_else(|_| die("--total-evals must be an integer")),
                );
            }
            "--budget" => {
                let raw = value("--budget");
                let Some(rest) = raw.strip_prefix("sh:") else {
                    die(&format!(
                        "--budget spec {raw} not understood (want sh:TOTAL:ETA[:MIN])"
                    ));
                };
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() < 2 || parts.len() > 3 {
                    die(&format!(
                        "--budget spec {raw} not understood (want sh:TOTAL:ETA[:MIN])"
                    ));
                }
                let field = |i: usize, name: &str| -> usize {
                    parts[i]
                        .parse()
                        .unwrap_or_else(|_| die(&format!("--budget {name} must be an integer")))
                };
                spec.total_evals = Some(field(0, "TOTAL"));
                spec.sh_eta = Some(field(1, "ETA"));
                spec.sh_min_scenarios = (parts.len() == 3).then(|| field(2, "MIN"));
            }
            "--restarts" => {
                spec.restarts = value("--restarts")
                    .parse()
                    .unwrap_or_else(|_| die("--restarts must be an integer"));
            }
            "--seed" => {
                spec.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed must be an integer"));
            }
            "--epsilon" => {
                spec.epsilon = value("--epsilon")
                    .parse()
                    .unwrap_or_else(|_| die("--epsilon must be a number"));
            }
            "--shards" => {
                spec.shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| die("--shards must be an integer"));
            }
            "--tenant" => spec.tenant = value("--tenant"),
            "--job" => {
                job = Some(
                    value("--job")
                        .parse()
                        .unwrap_or_else(|_| die("--job must be an integer")),
                );
            }
            "--json" => json = true,
            "--watch" => watch_after_submit = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other => die(&format!("unknown option {other}")),
        }
    }

    let Some(command) = command else {
        die("a command is required");
    };
    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => fail(&format!("cannot connect to {addr}: {e}")),
    };
    match command.as_str() {
        "submit" => match client.submit(spec) {
            Ok(id) => {
                if watch_after_submit {
                    obs::diag!("job {id} accepted, watching");
                    watch_to_completion(&mut client, id);
                }
                println!("job {id} accepted");
            }
            Err(e) => fail(&format!("submit failed: {e}")),
        },
        "status" => match client.status(job) {
            Ok(jobs) => {
                for status in &jobs {
                    print_status_line(status, json);
                }
            }
            Err(e) => fail(&format!("status failed: {e}")),
        },
        "watch" => {
            let Some(id) = job else {
                die("watch requires --job");
            };
            watch_to_completion(&mut client, id);
        }
        "cancel" => {
            let Some(id) = job else {
                die("cancel requires --job");
            };
            match client.cancel(id) {
                Ok(status) => print_status_line(&status, json),
                Err(e) => fail(&format!("cancel failed: {e}")),
            }
        }
        "shutdown" => match client.shutdown() {
            Ok(()) => println!("daemon shutting down"),
            Err(e) => fail(&format!("shutdown failed: {e}")),
        },
        other => die(&format!("unknown command {other}")),
    }
}
