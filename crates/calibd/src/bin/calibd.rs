//! The calibration-as-a-service daemon.
//!
//! Listens for `lodcal-calibd v1` JSONL frames on a TCP socket,
//! executes submitted sweeps as sharded resumable jobs under
//! `--data-dir`, and survives restarts: the job log and the per-job
//! ledger shards replay on startup, so interrupted jobs resume without
//! re-consuming budget and finish with the same outcome digest an
//! uninterrupted run would have produced.

use calibd::daemon::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
usage: calibd --data-dir <dir> [options]
  --addr <host:port>        listen address (default: 127.0.0.1:4550)
  --data-dir <dir>          durable state: job log + ledger shards (required)
  --shards <n>              default shard count per job (default: 4)
  --workers <n>             concurrent job executors (default: 2)
  --quota <n>               default per-tenant evaluation quota
                            (default: 1000000)
  --tenant-quota <name=n>   per-tenant override (repeatable)
  --help                    print this help";

fn die(msg: &str) -> ! {
    obs::diag!("{msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn parse_config() -> DaemonConfig {
    let mut addr = "127.0.0.1:4550".to_string();
    let mut data_dir: Option<PathBuf> = None;
    let mut shards = 4usize;
    let mut workers = 2usize;
    let mut quota = 1_000_000usize;
    let mut tenant_quotas: Vec<(String, usize)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--data-dir" => data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--shards" => {
                shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| die("--shards must be an integer"));
            }
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers must be an integer"));
            }
            "--quota" => {
                quota = value("--quota")
                    .parse()
                    .unwrap_or_else(|_| die("--quota must be an integer"));
            }
            "--tenant-quota" => {
                let spec = value("--tenant-quota");
                let Some((name, limit)) = spec.split_once('=') else {
                    die("--tenant-quota expects name=limit");
                };
                let limit = limit
                    .parse()
                    .unwrap_or_else(|_| die("--tenant-quota limit must be an integer"));
                tenant_quotas.push((name.to_string(), limit));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }
    let Some(data_dir) = data_dir else {
        die("--data-dir is required");
    };
    DaemonConfig {
        addr,
        data_dir,
        default_shards: shards.max(1),
        workers,
        default_quota: quota,
        tenant_quotas,
    }
}

fn main() {
    let config = parse_config();
    let handle = match Daemon::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            obs::diag!("cannot start daemon: {e}");
            exit(1);
        }
    };
    obs::diag!("listening on {}", handle.addr());
    handle.join();
    obs::diag!("shut down");
}
