//! Blocking calibd client: one TCP connection, JSONL frames, with the
//! lenient read-side contract (unparseable frames are skipped, like the
//! trace parser skips unknown event kinds).

use crate::proto::{
    check_hello, parse_response, read_frame, write_frame, FrameError, JobSpec, JobState, JobStatus,
    Request, Response, SCHEMA_NAME, SCHEMA_VERSION,
};
use serde::Value;
use std::io::{self, BufReader};
use std::net::TcpStream;

/// A connected calibd client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn other(message: impl Into<String>) -> io::Error {
    io::Error::other(message.into())
}

impl Client {
    /// Connect and complete the Hello exchange.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = Self {
            reader: BufReader::new(stream),
            writer,
        };
        client.send(&Request::Hello {
            schema: SCHEMA_NAME.into(),
            version: SCHEMA_VERSION,
        })?;
        match client.recv()? {
            Response::Hello { schema, version } => check_hello(&schema, version)
                .map_err(|e| other(format!("daemon handshake failed: {e}")))?,
            Response::Error { message } => return Err(other(message)),
            _ => return Err(other("daemon did not answer the Hello")),
        }
        Ok(client)
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.writer, request)
    }

    /// Next parseable response frame. Unknown or garbled frames are
    /// skipped leniently; EOF and oversized frames are errors.
    fn recv(&mut self) -> io::Result<Response> {
        loop {
            match read_frame(&mut self.reader) {
                Ok(Some(line)) => {
                    if let Some(response) = parse_response(&line) {
                        return Ok(response);
                    }
                }
                Ok(None) => return Err(other("connection closed by daemon")),
                Err(FrameError::Io(e)) => return Err(e),
                Err(e @ FrameError::Oversized { .. }) => return Err(other(e.to_string())),
            }
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> io::Result<u64> {
        self.send(&Request::Submit { spec })?;
        match self.recv()? {
            Response::Accepted { job } => Ok(job),
            Response::Rejected { reason } => Err(other(format!("rejected: {reason}"))),
            Response::Error { message } => Err(other(message)),
            _ => Err(other("unexpected reply to Submit")),
        }
    }

    /// Status of one job (or all jobs when `job` is `None`).
    pub fn status(&mut self, job: Option<u64>) -> io::Result<Vec<JobStatus>> {
        self.send(&Request::Status { job })?;
        match self.recv()? {
            Response::Jobs { jobs } => Ok(jobs),
            Response::Error { message } => Err(other(message)),
            _ => Err(other("unexpected reply to Status")),
        }
    }

    /// Stream progress for `job` until it finishes. Each progress frame
    /// invokes `on_progress(seq, event)`; returns the terminal state,
    /// the outcome digest, and the chosen version label.
    pub fn watch(
        &mut self,
        job: u64,
        mut on_progress: impl FnMut(u64, &Value),
    ) -> io::Result<(JobState, Option<String>, Option<String>)> {
        self.send(&Request::Watch { job })?;
        loop {
            match self.recv()? {
                Response::Progress { seq, event, .. } => on_progress(seq, &event),
                Response::Done {
                    state,
                    digest,
                    chosen,
                    ..
                } => return Ok((state, digest, chosen)),
                Response::Error { message } => return Err(other(message)),
                _ => {} // lenient: tolerate frames a future daemon may add
            }
        }
    }

    /// Cancel a job; returns its updated status.
    pub fn cancel(&mut self, job: u64) -> io::Result<JobStatus> {
        self.send(&Request::Cancel { job })?;
        match self.recv()? {
            Response::Jobs { mut jobs } => jobs.pop().ok_or_else(|| other("empty cancel reply")),
            Response::Error { message } => Err(other(message)),
            _ => Err(other("unexpected reply to Cancel")),
        }
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(other(message)),
            _ => Err(other("unexpected reply to Shutdown")),
        }
    }
}
