//! The `lodcal-calibd v1` wire protocol: JSONL request/response frames
//! over one TCP connection per client.
//!
//! Every frame is one line of JSON. Requests and responses are
//! externally-tagged enums — a unit variant is the bare kind string, a
//! struct variant is `{"Kind":{...fields}}` — so the protocol reads the
//! same way the run ledger and the obs trace do. A connection opens with
//! a `Hello` exchange carrying the schema name and version, versioned
//! exactly like the `lodcal-trace` file header:
//!
//! - a foreign schema name is an error (the peer is not a calibd);
//! - a version *newer* than this build understands is an error (frames
//!   may carry semantics this build would silently misread);
//! - an *older* version is accepted (v1 readers add only
//!   forward-compatible events).
//!
//! Within an accepted connection the reader is lenient the same way the
//! trace parser is: a frame kind it does not recognize is skipped by
//! clients (daemons answer `Error` but keep the connection), and a torn
//! final line (peer died mid-write) reads as end-of-stream. Frames are
//! capped at [`MAX_FRAME_BYTES`]; an oversized line is unrecoverable
//! (there is no resync point) and closes the connection.
//!
//! Progress frames embed events shaped like the obs trace schema
//! (`{"event":"counter","name":...,"value":...}`), so a subscribed
//! client can feed them to the same tooling that reads `--trace` files.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Schema name carried by `Hello` frames.
pub const SCHEMA_NAME: &str = "lodcal-calibd";
/// Protocol version this build speaks.
pub const SCHEMA_VERSION: u64 = 1;
/// Hard cap on one frame's length in bytes (newline included).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// What a client asks a calibd for.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Connection opener: schema name + version handshake.
    Hello {
        /// Must be [`SCHEMA_NAME`].
        schema: String,
        /// The client's protocol version.
        version: u64,
    },
    /// Submit a sweep job.
    Submit {
        /// The job to run.
        spec: JobSpec,
    },
    /// Job status: one job, or every job the daemon knows.
    Status {
        /// Restrict to this job id (`null` for all).
        job: Option<u64>,
    },
    /// Subscribe to a job's progress until it reaches a terminal state.
    Watch {
        /// The job to watch.
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Ask the daemon to stop accepting work and exit.
    Shutdown,
}

/// Request kinds this build understands, for lenient tag checking.
const REQUEST_KINDS: [&str; 6] = ["Hello", "Submit", "Status", "Watch", "Cancel", "Shutdown"];

/// A sweep job, as submitted over the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Simulator family to sweep: `wf`, `mpi`, `batch`, or `grid`.
    pub family: String,
    /// Shrunken experiment grid (smoke-test scale).
    pub fast: bool,
    /// Per-run evaluation budget (ignored when `total_evals` is set).
    pub budget_evals: usize,
    /// Shared total-evaluation budget divided fairly over the plan.
    pub total_evals: Option<usize>,
    /// Successive-halving elimination factor. When set (with
    /// `total_evals` as the total budget), the sweep runs the
    /// multi-fidelity rung ladder instead of a fixed split. Absent on
    /// the wire for fixed-budget jobs, so v1 clients interoperate
    /// unchanged.
    pub sh_eta: Option<usize>,
    /// Minimum scenario-subset size per rung (successive halving only).
    pub sh_min_scenarios: Option<usize>,
    /// Calibration restarts per unit.
    pub restarts: usize,
    /// Master seed.
    pub seed: u64,
    /// Recommendation tolerance ε.
    pub epsilon: f64,
    /// Ledger shards to partition the run plan into (0 = daemon default).
    pub shards: usize,
    /// Tenant the job's evaluations are charged against.
    pub tenant: String,
}

impl JobSpec {
    /// Evaluations this job will charge against its tenant's quota: the
    /// exact planned count (the plan is deterministic).
    pub fn planned_evaluations(&self, units: usize) -> usize {
        let restarts = self.restarts.max(1);
        match (self.total_evals, self.sh_eta) {
            // Successive halving spends the scheduled rung budgets, which
            // can deterministically undershoot the requested total; an
            // unplannable (too small) total is charged as requested and
            // refunded when the worker surfaces the typed error.
            (Some(total), Some(eta)) => lodsel::sweep::ShSchedule::plan(
                units * restarts,
                total,
                eta,
                self.sh_min_scenarios.unwrap_or(1),
            )
            .map(|s| s.total_evaluations())
            .unwrap_or(total),
            (Some(total), None) => total,
            (None, _) => units * restarts * self.budget_evals,
        }
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing shards.
    Running,
    /// Finished with a recommendation and digest.
    Completed,
    /// Gave up (typed shard/merge error or family failure).
    Failed,
    /// Cancelled by a client before completion.
    Cancelled,
}

impl JobState {
    /// Whether the job will never run again.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One job's externally-visible status.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job id.
    pub job: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Family being swept.
    pub family: String,
    /// Shard count the plan is partitioned into.
    pub shards: usize,
    /// Lifecycle state.
    pub state: JobState,
    /// Outcome digest, once completed.
    pub digest: Option<String>,
    /// Recommended version label, once completed.
    pub chosen: Option<String>,
    /// Failure reason, if failed.
    pub error: Option<String>,
    /// Combined ledger summary across the job's shard files — the same
    /// schema `lodsel --status-json` prints, so `calibctl status` and
    /// the batch CLI agree by construction.
    pub ledger: Option<lodsel::ledger::LedgerStatus>,
}

/// What a calibd answers with.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake reply.
    Hello {
        /// Always [`SCHEMA_NAME`].
        schema: String,
        /// The daemon's protocol version.
        version: u64,
    },
    /// A submitted job was admitted.
    Accepted {
        /// The new job's id.
        job: u64,
    },
    /// A submitted job was refused (quota, unknown family, ...).
    Rejected {
        /// Why.
        reason: String,
    },
    /// Status answer.
    Jobs {
        /// One entry per selected job, in id order.
        jobs: Vec<JobStatus>,
    },
    /// One streamed progress event of a watched job.
    Progress {
        /// The watched job.
        job: u64,
        /// Monotonic sequence number within this watch.
        seq: u64,
        /// Trace-schema-shaped event payload.
        event: Value,
    },
    /// A watched job reached a terminal state.
    Done {
        /// The watched job.
        job: u64,
        /// Terminal state.
        state: JobState,
        /// Outcome digest, when completed.
        digest: Option<String>,
        /// Recommended version, when completed.
        chosen: Option<String>,
    },
    /// The request could not be served; the connection stays open.
    Error {
        /// Why.
        message: String,
    },
    /// Acknowledges `Shutdown`; the daemon is draining.
    ShuttingDown,
}

/// Response kinds this build understands, for lenient tag checking.
const RESPONSE_KINDS: [&str; 8] = [
    "Hello",
    "Accepted",
    "Rejected",
    "Jobs",
    "Progress",
    "Done",
    "Error",
    "ShuttingDown",
];

/// Why a frame was refused.
#[derive(Debug)]
pub enum ProtoError {
    /// The line is not JSON.
    BadJson(String),
    /// A well-formed frame whose kind this build does not know.
    UnknownKind(String),
    /// A known kind whose fields do not decode.
    Invalid(String),
    /// The handshake named a foreign schema or a newer version.
    BadHello(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadJson(e) => write!(f, "frame is not JSON: {e}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k:?}"),
            ProtoError::Invalid(e) => write!(f, "invalid frame: {e}"),
            ProtoError::BadHello(e) => write!(f, "handshake refused: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Why a frame could not be read off the socket.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure.
    Io(io::Error),
    /// A line exceeded [`MAX_FRAME_BYTES`]; there is no resync point, so
    /// the connection must be closed.
    Oversized {
        /// Bytes read before giving up.
        bytes: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameError::Oversized { bytes } => write!(
                f,
                "frame exceeds {MAX_FRAME_BYTES} bytes ({bytes}+ read); closing connection"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serialize `value` as one frame line and flush it.
pub fn write_frame<T: Serialize>(writer: &mut impl Write, value: &T) -> io::Result<()> {
    let line = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Read one frame line. `Ok(None)` means a clean end of stream — EOF at
/// a line boundary, or a torn final line (the peer died mid-write; the
/// fragment is dropped, mirroring the ledger's torn-tail leniency).
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_FRAME_BYTES as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized { bytes: buf.len() });
        }
        // EOF mid-line: a torn frame, skipped leniently.
        return Ok(None);
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// The externally-tagged kind of a frame value: the string itself for a
/// unit variant, the single key for a struct variant.
fn frame_kind(value: &Value) -> Option<&str> {
    match value {
        Value::Str(kind) => Some(kind.as_str()),
        Value::Object(fields) if fields.len() == 1 => Some(fields[0].0.as_str()),
        _ => None,
    }
}

/// Validate a `Hello`'s schema/version against what this build speaks,
/// with exactly the trace parser's contract: foreign schema → error,
/// newer version → error, older or equal → accepted.
pub fn check_hello(schema: &str, version: u64) -> Result<(), ProtoError> {
    if schema != SCHEMA_NAME {
        return Err(ProtoError::BadHello(format!(
            "schema {schema:?} is not {SCHEMA_NAME:?}"
        )));
    }
    if version > SCHEMA_VERSION {
        return Err(ProtoError::BadHello(format!(
            "version {version} is newer than supported {SCHEMA_VERSION}"
        )));
    }
    Ok(())
}

/// Decode a request frame. Daemons answer [`Response::Error`] for any
/// `Err` but keep the connection open (the frame itself was bounded).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| ProtoError::BadJson(e.to_string()))?;
    let kind = frame_kind(&value).ok_or_else(|| {
        ProtoError::Invalid("request frame must be an externally-tagged enum".into())
    })?;
    if !REQUEST_KINDS.contains(&kind) {
        return Err(ProtoError::UnknownKind(kind.to_string()));
    }
    Request::from_value(&value).map_err(|e| ProtoError::Invalid(e.to_string()))
}

/// Decode a response frame leniently: garbage and unknown kinds read as
/// `None` so a v1 client skips forward-compatible frames from a newer
/// daemon rather than dying on them, exactly like lenient trace reads.
pub fn parse_response(line: &str) -> Option<Response> {
    let value: Value = serde_json::from_str(line).ok()?;
    let kind = frame_kind(&value)?;
    if !RESPONSE_KINDS.contains(&kind) {
        return None;
    }
    Response::from_value(&value).ok()
}

/// A trace-schema-shaped counter event for progress frames.
pub fn counter_event(name: &str, value: u64) -> Value {
    Value::Object(vec![
        ("event".into(), Value::Str("counter".into())),
        ("name".into(), Value::Str(name.into())),
        ("value".into(), value.to_value()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_contract_matches_the_trace_parser() {
        assert!(check_hello(SCHEMA_NAME, SCHEMA_VERSION).is_ok());
        assert!(check_hello(SCHEMA_NAME, 0).is_ok(), "older is accepted");
        assert!(check_hello(SCHEMA_NAME, SCHEMA_VERSION + 1).is_err());
        assert!(check_hello("lodcal-trace", SCHEMA_VERSION).is_err());
    }

    #[test]
    fn unknown_request_kind_is_typed_not_invalid() {
        let err = parse_request("{\"Frobnicate\":{\"job\":1}}").unwrap_err();
        assert!(matches!(err, ProtoError::UnknownKind(k) if k == "Frobnicate"));
        let err = parse_request("\"Explode\"").unwrap_err();
        assert!(matches!(err, ProtoError::UnknownKind(k) if k == "Explode"));
    }

    #[test]
    fn responses_parse_leniently() {
        assert!(parse_response("not json at all").is_none());
        assert!(parse_response("{\"FutureFrame\":{\"x\":1}}").is_none());
        assert!(parse_response("[1,2,3]").is_none());
        assert_eq!(
            parse_response("\"ShuttingDown\""),
            Some(Response::ShuttingDown)
        );
    }

    #[test]
    fn counter_events_use_the_trace_shape() {
        let e = counter_event("calibd_runs_completed", 7);
        assert_eq!(e.get("event").and_then(Value::as_str), Some("counter"));
        assert_eq!(
            e.get("name").and_then(Value::as_str),
            Some("calibd_runs_completed")
        );
        assert_eq!(e.get("value").and_then(Value::as_f64), Some(7.0));
    }
}
