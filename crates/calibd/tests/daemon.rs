//! End-to-end daemon tests over real loopback sockets: a submitted job
//! completes with the single-process digest, a killed daemon resumes
//! from its shard ledgers with zero re-calibration, quotas gate
//! admission (and refund on cancel), and the handshake enforces the
//! trace parser's versioning contract.

use calibd::client::Client;
use calibd::daemon::{Daemon, DaemonConfig, JobEvent};
use calibd::proto::{
    parse_response, read_frame, write_frame, JobSpec, JobState, Request, Response, SCHEMA_NAME,
};
use lodsel::ledger::{Ledger, LedgerEvent};
use lodsel::prelude::{BatchFamily, BudgetPolicy, SweepConfig};
use lodsel::shard::{run_shard, shard_path};
use lodsel::sweep::{run_sweep, try_run_sweep};
use simcal::prelude::Budget;
use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "calibd-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The wire spec the tests submit: small enough to finish in seconds.
fn toy_spec(seed: u64, shards: usize, tenant: &str) -> JobSpec {
    JobSpec {
        family: "batch".into(),
        fast: true,
        budget_evals: 6,
        total_evals: None,
        restarts: 1,
        seed,
        epsilon: 0.1,
        shards,
        tenant: tenant.into(),
        sh_eta: None,
        sh_min_scenarios: None,
    }
}

/// The SweepConfig the daemon derives from [`toy_spec`] — must match
/// `daemon::sweep_config` for the digest comparisons to be meaningful.
fn toy_config(seed: u64) -> SweepConfig {
    SweepConfig {
        budget: BudgetPolicy::PerRun {
            budget: Budget::Evaluations(6),
        },
        restarts: 1,
        seed,
        epsilon: 0.1,
        max_units: None,
        max_fault_retries: 2,
        cache: None,
    }
}

fn config(dir: &Path, workers: usize) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: dir.to_path_buf(),
        default_shards: 2,
        workers,
        default_quota: 10_000_000,
        tenant_quotas: Vec::new(),
    }
}

fn runs_completed_in(path: &Path) -> usize {
    match Ledger::read(path) {
        Ok(events) => events
            .iter()
            .filter(|e| matches!(e, LedgerEvent::RunCompleted { .. }))
            .count(),
        Err(_) => 0,
    }
}

#[test]
fn submitted_job_completes_with_the_single_process_digest() {
    let dir = tmp_dir("e2e");
    let handle = Daemon::start(config(&dir, 1)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let job = client.submit(toy_spec(7, 2, "alice")).unwrap();
    let mut seqs = Vec::new();
    let (state, digest, chosen) = client
        .watch(job, |seq, event| {
            seqs.push(seq);
            // Progress events use the obs trace counter shape.
            assert_eq!(
                event.get("event").and_then(serde::Value::as_str),
                Some("counter")
            );
            assert!(event.get("name").is_some() && event.get("value").is_some());
        })
        .unwrap();
    assert_eq!(state, JobState::Completed);
    assert!(chosen.is_some(), "completed sweeps carry a recommendation");
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "progress sequence numbers are monotonic: {seqs:?}"
    );

    // The served digest is bit-for-bit the single-process outcome.
    let fresh = run_sweep(&BatchFamily::paper(true, 7), &toy_config(7), None);
    assert_eq!(digest.as_deref(), Some(fresh.digest().as_str()));

    // Status agrees, and its embedded ledger summary counted every run.
    let statuses = client.status(Some(job)).unwrap();
    assert_eq!(statuses.len(), 1);
    assert_eq!(statuses[0].state, JobState::Completed);
    assert_eq!(statuses[0].digest, digest);
    assert_eq!(statuses[0].ledger.as_ref().unwrap().runs_done, 4);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_restart_resumes_without_recalibrating_completed_runs() {
    let dir = tmp_dir("resume");
    let spec = toy_spec(11, 2, "bob");

    // Simulate a daemon that accepted job 1 and finished shard 0 of 2
    // before dying: the durable state is the Submitted log line plus
    // shard 0's ledger, exactly what a kill between shards leaves.
    let submitted = JobEvent::Submitted {
        id: 1,
        spec: spec.clone(),
        shards: 2,
        planned_evals: spec.planned_evaluations(4),
    };
    let mut log = std::fs::File::create(dir.join("jobs.jsonl")).unwrap();
    writeln!(log, "{}", serde_json::to_string(&submitted).unwrap()).unwrap();
    drop(log);
    let jdir = dir.join("job-1");
    std::fs::create_dir_all(&jdir).unwrap();
    let family = BatchFamily::paper(true, 11);
    let done = run_shard(&family, &toy_config(11), 0, 2, &jdir).unwrap();
    assert_eq!(done, 2, "shard 0 of 2 owns half of the 4-run plan");
    assert_eq!(runs_completed_in(&shard_path(&jdir, 0)), 2);

    // Restart: the daemon replays the log, re-queues job 1, and must
    // finish it by running only shard 1's half of the plan.
    let handle = Daemon::start(config(&dir, 1)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let (state, digest, _) = client.watch(1, |_, _| {}).unwrap();
    assert_eq!(state, JobState::Completed);

    // Zero re-invocation: every calibration appends exactly one
    // RunCompleted to its shard, so 4 total across both shards means
    // shard 0's pre-crash work was served from its ledger, not redone.
    assert_eq!(runs_completed_in(&shard_path(&jdir, 0)), 2);
    assert_eq!(runs_completed_in(&shard_path(&jdir, 1)), 2);

    // And the resumed outcome digest is bit-for-bit the uninterrupted
    // single-process one.
    let fresh = run_sweep(&BatchFamily::paper(true, 11), &toy_config(11), None);
    assert_eq!(digest.as_deref(), Some(fresh.digest().as_str()));

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quota_gates_admission_and_cancel_refunds() {
    let dir = tmp_dir("quota");
    // Each toy job plans 4 runs x 6 evaluations = 24; quota fits one.
    let mut cfg = config(&dir, 0); // no workers: jobs stay queued
    cfg.default_quota = 30;
    let handle = Daemon::start(cfg).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let first = client.submit(toy_spec(3, 2, "carol")).unwrap();
    let err = client.submit(toy_spec(4, 2, "carol")).unwrap_err();
    assert!(
        err.to_string().contains("quota"),
        "rejection names the quota: {err}"
    );
    // Another tenant has its own budget.
    let other = client.submit(toy_spec(5, 2, "dave")).unwrap();
    assert_ne!(first, other);

    // Cancelling the queued job refunds its charge, making room.
    let cancelled = client.cancel(first).unwrap();
    assert_eq!(cancelled.state, JobState::Cancelled);
    client.submit(toy_spec(6, 2, "carol")).unwrap();

    // Terminal jobs cannot be cancelled again; unknown jobs error.
    assert!(client.cancel(first).is_err());
    assert!(client.cancel(999).is_err());
    assert!(client.status(Some(999)).is_err());

    // All three admitted jobs show up in the full listing.
    assert_eq!(client.status(None).unwrap().len(), 3);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_jobs_survive_restart_as_cancelled() {
    let dir = tmp_dir("cancel-replay");
    {
        let mut cfg = config(&dir, 0);
        cfg.default_quota = 30;
        let handle = Daemon::start(cfg).unwrap();
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let job = client.submit(toy_spec(3, 2, "erin")).unwrap();
        client.cancel(job).unwrap();
        handle.stop();
    }
    // The replayed registry must show the job as cancelled (not
    // re-queued) and its quota refund must be re-applied: a fresh
    // submission still fits under the 30-evaluation limit.
    let mut cfg = config(&dir, 0);
    cfg.default_quota = 30;
    let handle = Daemon::start(cfg).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let statuses = client.status(Some(1)).unwrap();
    assert_eq!(statuses[0].state, JobState::Cancelled);
    client.submit(toy_spec(4, 2, "erin")).unwrap();
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn handshake_enforces_the_trace_versioning_contract() {
    let dir = tmp_dir("hello");
    let handle = Daemon::start(config(&dir, 0)).unwrap();
    let addr = handle.addr().to_string();

    let hello_gets = |schema: &str, version: u64| -> Response {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_frame(
            &mut writer,
            &Request::Hello {
                schema: schema.into(),
                version,
            },
        )
        .unwrap();
        let line = read_frame(&mut reader).unwrap().expect("daemon answers");
        parse_response(&line).expect("daemon speaks the protocol")
    };

    // Foreign schema and newer version are refused...
    assert!(matches!(
        hello_gets("lodcal-trace", 1),
        Response::Error { .. }
    ));
    assert!(matches!(
        hello_gets(SCHEMA_NAME, 99),
        Response::Error { .. }
    ));
    // ...an older version is accepted (v0 clients keep working).
    assert!(matches!(hello_gets(SCHEMA_NAME, 0), Response::Hello { .. }));

    // A first frame that is not Hello closes the conversation.
    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, &Request::Status { job: None }).unwrap();
        let line = read_frame(&mut reader).unwrap().expect("daemon answers");
        assert!(matches!(
            parse_response(&line),
            Some(Response::Error { .. })
        ));
        assert!(read_frame(&mut reader).unwrap().is_none(), "then hangs up");
    }

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejected_submissions_are_typed_not_fatal() {
    let dir = tmp_dir("reject");
    let handle = Daemon::start(config(&dir, 0)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let mut bad_family = toy_spec(1, 2, "f");
    bad_family.family = "quantum".into();
    let err = client.submit(bad_family).unwrap_err();
    assert!(err.to_string().contains("unknown family"));

    let mut starved = toy_spec(1, 2, "f");
    starved.total_evals = Some(1); // cannot cover 4 runs
    assert!(client.submit(starved).is_err());

    let mut zero_budget = toy_spec(1, 2, "f");
    zero_budget.budget_evals = 0;
    assert!(client.submit(zero_budget).is_err());

    // The connection survived every rejection.
    assert_eq!(client.status(None).unwrap().len(), 0);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sh_job_completes_with_rung_progress_and_the_single_process_digest() {
    let dir = tmp_dir("sh-e2e");
    let handle = Daemon::start(config(&dir, 1)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    // 4 units x 2 restarts = 8 runs; the eta-2 ladder fits in 48.
    let mut spec = toy_spec(7, 4, "sh-alice");
    spec.restarts = 2;
    spec.total_evals = Some(48);
    spec.sh_eta = Some(2);
    let job = client.submit(spec).unwrap();

    let mut saw_rung_frame = false;
    let (state, digest, chosen) = client
        .watch(job, |_seq, event| {
            if event.get("name").and_then(serde::Value::as_str) == Some("calibd_rungs_completed") {
                saw_rung_frame = true;
            }
        })
        .unwrap();
    assert_eq!(state, JobState::Completed);
    assert!(chosen.is_some());
    assert!(saw_rung_frame, "watch streams rung-progress frames");

    // SH needs global rank points, so the daemon runs it on one shard
    // regardless of the requested 4.
    let statuses = client.status(Some(job)).unwrap();
    assert_eq!(statuses[0].shards, 1);
    let ledger = statuses[0].ledger.as_ref().unwrap();
    assert!(ledger.rungs_done > 0, "rung records landed in the ledger");
    assert!(ledger.promotions > 0 && ledger.eliminations > 0);

    // Bit-for-bit the single-process SH outcome.
    let sh_config = SweepConfig {
        budget: BudgetPolicy::SuccessiveHalving {
            total: 48,
            eta: 2,
            min_scenarios: 1,
        },
        restarts: 2,
        seed: 7,
        epsilon: 0.1,
        max_units: None,
        max_fault_retries: 2,
        cache: None,
    };
    let fresh = try_run_sweep(&BatchFamily::paper(true, 7), &sh_config, None).unwrap();
    assert_eq!(digest.as_deref(), Some(fresh.digest().as_str()));

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn starved_sh_job_fails_typed_and_refunds_quota() {
    let dir = tmp_dir("sh-starve");
    let mut cfg = config(&dir, 1);
    // Room for exactly one charge of 9 at a time: a successful refund is
    // the only way the second submission can be admitted.
    cfg.default_quota = 10;
    let handle = Daemon::start(cfg).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    // 4 runs with eta 2 need 3 rungs x 4 = 12 evaluations, so a total of
    // 9 passes the flat admission check (9 >= 4 runs) but cannot be
    // planned — the worker must surface the typed error, not abort.
    let mut spec = toy_spec(3, 1, "sh-frank");
    spec.total_evals = Some(9);
    spec.sh_eta = Some(2);
    let job = client.submit(spec.clone()).unwrap();
    let (state, digest, _) = client.watch(job, |_, _| {}).unwrap();
    assert_eq!(state, JobState::Failed);
    assert_eq!(digest, None);
    let statuses = client.status(Some(job)).unwrap();
    let error = statuses[0].error.as_deref().unwrap();
    assert!(
        error.contains("cannot cover"),
        "failure carries the typed budget error: {error}"
    );

    // The 9-evaluation charge was refunded: an identical submission fits
    // under the 10-evaluation quota again.
    client.submit(spec).unwrap();

    // And SH without a total budget is refused outright.
    let mut no_total = toy_spec(3, 1, "sh-frank");
    no_total.sh_eta = Some(2);
    let err = client.submit(no_total).unwrap_err();
    assert!(err.to_string().contains("total"), "rejection: {err}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_shutdown_request_stops_the_daemon() {
    let dir = tmp_dir("shutdown");
    let handle = Daemon::start(config(&dir, 1)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    client.shutdown().unwrap();
    // All daemon threads exit on their own; join would hang otherwise.
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
