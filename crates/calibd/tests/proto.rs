//! Wire-protocol properties: every frame round-trips bit-for-bit
//! through the JSONL framing, oversized lines fail typed (never
//! panicking or blocking), unknown kinds and foreign schema versions
//! are rejected with exactly the trace parser's lenient contract.

use calibd::proto::{
    check_hello, counter_event, parse_request, parse_response, read_frame, write_frame, FrameError,
    JobSpec, JobState, JobStatus, ProtoError, Request, Response, MAX_FRAME_BYTES, SCHEMA_NAME,
    SCHEMA_VERSION,
};
use proptest::prelude::*;
use std::io::BufReader;

const FAMILIES: [&str; 5] = ["wf", "mpi", "batch", "grid", "toy"];
const STATES: [JobState; 5] = [
    JobState::Queued,
    JobState::Running,
    JobState::Completed,
    JobState::Failed,
    JobState::Cancelled,
];

/// Deterministically expand a handful of drawn integers into a spec.
/// Epsilon is a dyadic fraction so the JSON float round-trip is exact.
fn make_spec(family: usize, seed: u64, knobs: u64) -> JobSpec {
    JobSpec {
        family: FAMILIES[family % FAMILIES.len()].to_string(),
        fast: knobs & 1 == 0,
        budget_evals: (knobs >> 1) as usize % 200,
        total_evals: if knobs & 2 == 0 {
            None
        } else {
            Some((knobs >> 3) as usize % 5000 + 1)
        },
        restarts: (knobs >> 4) as usize % 6,
        seed,
        epsilon: (knobs >> 5) as f64 % 64.0 / 16.0,
        shards: (knobs >> 9) as usize % 9,
        tenant: format!("tenant-{}", knobs % 7),
        sh_eta: if knobs & 4 == 0 {
            None
        } else {
            Some((knobs >> 13) as usize % 5 + 2)
        },
        sh_min_scenarios: if knobs & 8 == 0 {
            None
        } else {
            Some((knobs >> 16) as usize % 9 + 1)
        },
    }
}

fn make_request(variant: usize, family: usize, seed: u64, knobs: u64) -> Request {
    match variant % 6 {
        0 => Request::Hello {
            schema: if knobs & 1 == 0 {
                SCHEMA_NAME.to_string()
            } else {
                format!("schema-{}", knobs % 5)
            },
            version: seed % 4,
        },
        1 => Request::Submit {
            spec: make_spec(family, seed, knobs),
        },
        2 => Request::Status {
            job: if knobs & 1 == 0 { None } else { Some(seed) },
        },
        3 => Request::Watch { job: seed },
        4 => Request::Cancel { job: seed },
        _ => Request::Shutdown,
    }
}

fn make_status(family: usize, seed: u64, knobs: u64) -> JobStatus {
    let state = STATES[knobs as usize % STATES.len()];
    JobStatus {
        job: seed,
        tenant: format!("tenant-{}", knobs % 7),
        family: FAMILIES[family % FAMILIES.len()].to_string(),
        shards: (knobs >> 3) as usize % 8 + 1,
        state,
        digest: if knobs & 8 == 0 {
            None
        } else {
            Some(format!("{:016x}", seed ^ knobs))
        },
        chosen: if knobs & 16 == 0 {
            None
        } else {
            Some(format!("v{}", knobs % 9))
        },
        error: if knobs & 32 == 0 {
            None
        } else {
            Some(format!("shard {} failed", knobs % 4))
        },
        ledger: None,
    }
}

fn make_response(variant: usize, family: usize, seed: u64, knobs: u64) -> Response {
    match variant % 8 {
        0 => Response::Hello {
            schema: SCHEMA_NAME.to_string(),
            version: seed % 4,
        },
        1 => Response::Accepted { job: seed },
        2 => Response::Rejected {
            reason: format!("quota exceeded for tenant-{}", knobs % 7),
        },
        3 => Response::Jobs {
            jobs: (0..knobs % 4)
                .map(|i| make_status(family + i as usize, seed ^ i, knobs >> i))
                .collect(),
        },
        4 => Response::Progress {
            job: seed,
            seq: knobs % 100,
            event: counter_event("calibd_runs_completed", knobs),
        },
        5 => Response::Done {
            job: seed,
            state: STATES[knobs as usize % STATES.len()],
            digest: Some(format!("{:016x}", seed)),
            chosen: if knobs & 1 == 0 {
                None
            } else {
                Some("v2".to_string())
            },
        },
        6 => Response::Error {
            message: format!("no such job {seed}"),
        },
        _ => Response::ShuttingDown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// write_frame → read_frame → parse_request is the identity, and
    /// the stream drains cleanly after the frame.
    #[test]
    fn request_frames_round_trip(
        variant in 0usize..6,
        family in 0usize..5,
        seed in 0u64..u64::MAX,
        knobs in 0u64..u64::MAX,
    ) {
        let request = make_request(variant, family, seed, knobs);
        let mut wire = Vec::new();
        write_frame(&mut wire, &request).unwrap();
        prop_assert_eq!(wire.last(), Some(&b'\n'), "frames are newline-terminated");
        let mut reader = BufReader::new(wire.as_slice());
        let line = read_frame(&mut reader).unwrap().expect("one frame written");
        prop_assert_eq!(parse_request(&line).unwrap(), request);
        prop_assert!(read_frame(&mut reader).unwrap().is_none());
    }

    /// write_frame → read_frame → parse_response is the identity.
    #[test]
    fn response_frames_round_trip(
        variant in 0usize..8,
        family in 0usize..5,
        seed in 0u64..u64::MAX,
        knobs in 0u64..u64::MAX,
    ) {
        let response = make_response(variant, family, seed, knobs);
        let mut wire = Vec::new();
        write_frame(&mut wire, &response).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let line = read_frame(&mut reader).unwrap().expect("one frame written");
        prop_assert_eq!(parse_response(&line), Some(response));
    }

    /// Several frames on one stream arrive in order, none lost.
    #[test]
    fn frame_streams_preserve_order(
        variants in proptest::collection::vec(0usize..6, 1..6),
        seed in 0u64..u64::MAX,
        knobs in 0u64..u64::MAX,
    ) {
        let requests: Vec<Request> = variants
            .iter()
            .enumerate()
            .map(|(i, &v)| make_request(v, i, seed ^ i as u64, knobs.rotate_left(i as u32)))
            .collect();
        let mut wire = Vec::new();
        for request in &requests {
            write_frame(&mut wire, request).unwrap();
        }
        let mut reader = BufReader::new(wire.as_slice());
        for request in &requests {
            let line = read_frame(&mut reader).unwrap().expect("frame present");
            prop_assert_eq!(&parse_request(&line).unwrap(), request);
        }
        prop_assert!(read_frame(&mut reader).unwrap().is_none());
    }

    /// An oversized line is a typed error no matter how far past the
    /// cap it runs — the reader never buffers it whole.
    #[test]
    fn oversized_lines_fail_typed(extra in 0usize..4096) {
        let wire = vec![b'x'; MAX_FRAME_BYTES + 1 + extra];
        let mut reader = BufReader::new(wire.as_slice());
        match read_frame(&mut reader) {
            Err(FrameError::Oversized { bytes }) => prop_assert!(bytes > MAX_FRAME_BYTES),
            Err(FrameError::Io(e)) => prop_assert!(false, "expected Oversized, got Io: {e}"),
            Ok(_) => prop_assert!(false, "expected Oversized, got a frame"),
        }
    }

    /// A torn final line (no trailing newline) reads as end-of-stream
    /// after any complete frames before it — the ledger's torn-tail
    /// contract, applied to the socket.
    #[test]
    fn torn_tails_read_as_end_of_stream(
        variant in 0usize..6,
        seed in 0u64..u64::MAX,
        knobs in 0u64..u64::MAX,
        cut in 1usize..10,
    ) {
        let request = make_request(variant, 0, seed, knobs);
        let mut wire = Vec::new();
        write_frame(&mut wire, &request).unwrap();
        let full = wire.len();
        write_frame(&mut wire, &request).unwrap();
        // Keep at most `cut` bytes of the second frame, dropping at
        // least its newline.
        wire.truncate(full + (wire.len() - full - 1).min(cut));
        let mut reader = BufReader::new(wire.as_slice());
        let line = read_frame(&mut reader).unwrap().expect("intact first frame");
        prop_assert_eq!(parse_request(&line).unwrap(), request);
        prop_assert!(read_frame(&mut reader).unwrap().is_none(), "torn tail is EOF");
    }

    /// Unknown frame kinds: a *typed* rejection for requests, a silent
    /// skip for responses — and neither parser panics on junk.
    #[test]
    fn unknown_kinds_reject_typed_and_leniently(pick in 0u64..u64::MAX, junk_len in 0usize..80) {
        let kind = format!("FutureKind{}", pick % 1000);
        let framed = format!("{{\"{kind}\":{{\"job\":1}}}}");
        match parse_request(&framed) {
            Err(ProtoError::UnknownKind(k)) => prop_assert_eq!(k, kind.clone()),
            Err(e) => prop_assert!(false, "expected UnknownKind, got {e}"),
            Ok(_) => prop_assert!(false, "expected UnknownKind, got a request"),
        }
        let bare = format!("\"{kind}\"");
        prop_assert!(
            matches!(parse_request(&bare), Err(ProtoError::UnknownKind(_))),
            "bare unknown tags are typed too"
        );
        prop_assert_eq!(parse_response(&framed), None, "clients skip unknown kinds");
        prop_assert_eq!(parse_response(&bare), None);
        // Arbitrary junk panics neither side.
        let junk: String = (0..junk_len)
            .map(|i| char::from(b' ' + ((pick >> (i % 57)) as u8 % 94)))
            .collect();
        let _ = parse_request(&junk);
        let _ = parse_response(&junk);
    }

    /// The handshake mirrors the trace parser: foreign schema names are
    /// always refused, versions at or below this build are accepted,
    /// newer versions are refused.
    #[test]
    fn hello_versioning_mirrors_the_trace_contract(pick in 0u64..8, version in 0u64..8) {
        let schema = match pick {
            0 => SCHEMA_NAME.to_string(),
            1 => "lodcal-trace".to_string(),
            2 => String::new(),
            n => format!("schema-{n}"),
        };
        let verdict = check_hello(&schema, version);
        if schema != SCHEMA_NAME {
            prop_assert!(verdict.is_err(), "foreign schema must be refused");
        } else if version <= SCHEMA_VERSION {
            prop_assert!(verdict.is_ok(), "older or equal versions are accepted");
        } else {
            prop_assert!(verdict.is_err(), "newer versions must be refused");
        }
    }
}
