//! Property-based tests for the workflow generators, the JSON
//! interchange, and the simulator's structural invariants.

use proptest::prelude::*;
use simcal::prelude::Calibration;
use wfsim::prelude::*;

fn arb_app() -> impl Strategy<Value = AppKind> {
    prop_oneof![
        Just(AppKind::Epigenomics),
        Just(AppKind::Genome1000),
        Just(AppKind::SoyKb),
        Just(AppKind::Montage),
        Just(AppKind::Seismology),
        Just(AppKind::Chain),
        Just(AppKind::Forkjoin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated workflow has exactly the requested task count, is
    /// structurally valid, and matches the requested footprint.
    #[test]
    fn generator_invariants(
        app in arb_app(),
        num_tasks in 9usize..120,
        work in 0.0f64..10.0,
        footprint_mb in 0.0f64..2000.0,
        seed in 0u64..1000,
    ) {
        let spec = WorkflowSpec {
            app,
            num_tasks,
            work_per_task_secs: work,
            data_footprint_bytes: footprint_mb * 1e6,
            seed,
        };
        let w = generate(&spec);
        prop_assert_eq!(w.num_tasks(), num_tasks);
        prop_assert!(w.validate().is_ok());
        prop_assert!((w.data_footprint() - footprint_mb * 1e6).abs() < 1.0);
        // Entry tasks exist and levels are consistent.
        let preds = w.predecessors();
        prop_assert!(preds.iter().any(|p| p.is_empty()));
        let levels = w.levels();
        for (t, ps) in preds.iter().enumerate() {
            for &p in ps {
                prop_assert!(levels[p] < levels[t]);
            }
        }
    }

    /// WfCommons JSON roundtrips every generated workflow exactly.
    #[test]
    fn wfcommons_roundtrip(
        app in arb_app(),
        num_tasks in 9usize..60,
        seed in 0u64..500,
    ) {
        let w = generate(&WorkflowSpec {
            app,
            num_tasks,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 5e7,
            seed,
        });
        let json = to_json(&w);
        let back = from_json(&json).expect("generated workflows parse back");
        prop_assert_eq!(w, back);
    }

    /// The simulator never panics and returns sane output across versions
    /// and random calibrations: positive finite makespan at least as long
    /// as the critical-path compute time.
    #[test]
    fn simulate_is_total_and_sane(
        version_idx in 0usize..12,
        unit in proptest::collection::vec(0.05f64..0.95, 10),
        n_workers in 1usize..4,
        seed in 0u64..200,
    ) {
        let version = SimulatorVersion::all()[version_idx];
        let space = version.parameter_space();
        let calib: Calibration = space.denormalize(&unit[..space.dim()]);
        let w = generate(&WorkflowSpec {
            app: AppKind::Forkjoin,
            num_tasks: 12,
            work_per_task_secs: 0.5,
            data_footprint_bytes: 1e6,
            seed,
        });
        let sim = WorkflowSimulator::new(version);
        let out = sim.simulate(&w, n_workers, &calib);
        prop_assert!(out.makespan.is_finite() && out.makespan > 0.0);
        prop_assert_eq!(out.task_times.len(), w.num_tasks());
        prop_assert!(out.task_times.iter().all(|t| t.is_finite() && *t >= 0.0));
        // Critical path bound: depth x min task compute time.
        let core_speed = space.value(&calib, "core_speed");
        let min_task_secs = w
            .tasks
            .iter()
            .map(|t| t.work / core_speed)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(out.makespan >= w.depth() as f64 * min_task_secs - 1e-9);
    }

    /// The ground-truth emulator is monotone in worker count for
    /// embarrassingly parallel workloads (more workers never hurt much).
    #[test]
    fn emulator_parallel_speedup(seed in 0u64..50) {
        let cfg = EmulatorConfig::default();
        let w = generate(&WorkflowSpec {
            app: AppKind::Seismology,
            num_tasks: 40,
            work_per_task_secs: 5.0,
            data_footprint_bytes: 0.0,
            seed,
        });
        let m1 = cfg.emulate(&w, 1, seed).makespan;
        let m4 = cfg.emulate(&w, 4, seed).makespan;
        // Generous slack: condor cycles and noise blur the boundary.
        prop_assert!(m4 <= m1 * 1.2, "1w {m1} vs 4w {m4}");
    }
}
