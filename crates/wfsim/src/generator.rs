//! WfCommons-style workflow generators (paper §5.1, Table 1).
//!
//! Generates level-structured task graphs whose shapes follow the five
//! real-world applications of the paper's ground truth (Epigenomics,
//! 1000Genome, SoyKB, Montage, Seismology) plus the two synthetic patterns
//! (chain, forkjoin). Generation is parameterized by the Table 1 axes:
//! number of tasks, sequential work per task (seconds on a reference
//! core), and total data footprint (bytes), and is deterministic per seed.
//!
//! What matters for the calibration methodology is structural diversity —
//! fan-out/fan-in widths, chain depths, and data-to-compute ratios — which
//! these generators reproduce from the published workflow structures.

use crate::workflow::Workflow;
use numeric::{lognormal, rng_from_seed};
use serde::{Deserialize, Serialize};

/// Abstract operations corresponding to one second of sequential work on a
/// reference worker core (Table 1's "sequential work / task" unit).
pub const OPS_PER_REF_SECOND: f64 = 1_073_741_824.0; // 2^30

/// The seven workflow applications of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Bioinformatics: split → 4 parallel per-branch stages → 3-stage merge.
    Epigenomics,
    /// Bioinformatics: parallel individuals + sifting, two analysis fans.
    Genome1000,
    /// Bioinformatics: wide alignment/sort fans into merge + haplotype fan.
    SoyKb,
    /// Astronomy: project/diff-fit fans, global fit, background fan, add.
    Montage,
    /// Seismology: wide deconvolution fan into a single merge.
    Seismology,
    /// Synthetic linear chain (no parallelism).
    Chain,
    /// Synthetic fan-out/fan-in.
    Forkjoin,
}

impl AppKind {
    /// All applications, in Table 1 order.
    pub const ALL: [AppKind; 7] = [
        AppKind::Epigenomics,
        AppKind::Genome1000,
        AppKind::SoyKb,
        AppKind::Montage,
        AppKind::Seismology,
        AppKind::Chain,
        AppKind::Forkjoin,
    ];

    /// The five real-world applications (excludes the synthetic patterns).
    pub const REAL: [AppKind; 5] = [
        AppKind::Epigenomics,
        AppKind::Genome1000,
        AppKind::SoyKb,
        AppKind::Montage,
        AppKind::Seismology,
    ];

    /// Smallest task count the application's level structure supports
    /// (WfCommons similarly enforces representative minimum sizes).
    pub fn min_tasks(self) -> usize {
        match self {
            AppKind::Epigenomics => 8, // split + 4 stages + 3 merge steps
            AppKind::Genome1000 => 4,
            AppKind::SoyKb => 5,
            AppKind::Montage => 9,
            AppKind::Seismology => 3,
            AppKind::Chain | AppKind::Forkjoin => 3,
        }
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Epigenomics => "epigenomics",
            AppKind::Genome1000 => "1000genome",
            AppKind::SoyKb => "soykb",
            AppKind::Montage => "montage",
            AppKind::Seismology => "seismology",
            AppKind::Chain => "chain",
            AppKind::Forkjoin => "forkjoin",
        }
    }
}

/// A workflow generation request (one Table 1 grid point).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    /// Which application's structure to generate.
    pub app: AppKind,
    /// Total number of tasks.
    pub num_tasks: usize,
    /// Average sequential work per task, in reference-core seconds.
    pub work_per_task_secs: f64,
    /// Total data footprint (sum of all file sizes), in bytes.
    pub data_footprint_bytes: f64,
    /// Generation seed.
    pub seed: u64,
}

/// Level widths for `app` at `n` tasks. Widths always sum to exactly `n`.
fn level_widths(app: AppKind, n: usize) -> Vec<usize> {
    let n = n.max(3);
    match app {
        AppKind::Chain => vec![1; n],
        AppKind::Forkjoin => vec![1, n - 2, 1],
        AppKind::Seismology => vec![n - 1, 1],
        AppKind::Epigenomics => {
            // split + 4 parallel stages of width b + mapMerge/maqIndex/pileup.
            let b = ((n.saturating_sub(4)) / 4).max(1);
            let mut w = vec![1, b, b, b, b, 1, 1, 1];
            let total: usize = w.iter().sum();
            w[1] += n.saturating_sub(total); // leftover widens the first fan
            w
        }
        AppKind::Genome1000 => {
            // individuals fan + merge, then two analysis fans.
            let a = (n / 2).max(1);
            let b = ((n - a - 1) / 2).max(1);
            let mut w = vec![a, 1, b, b];
            let total: usize = w.iter().sum();
            w[0] += n.saturating_sub(total);
            w
        }
        AppKind::SoyKb => {
            // alignment fan, sort fan, merge, haplotype fan, genotype.
            let a = ((n.saturating_sub(2)) / 3).max(1);
            let b = n.saturating_sub(2 + 2 * a).max(1);
            let mut w = vec![a, a, 1, b, 1];
            let total: usize = w.iter().sum();
            w[3] += n.saturating_sub(total);
            w
        }
        AppKind::Montage => {
            // mProject fan, wider mDiffFit fan, two global steps,
            // mBackground fan, four finishing steps.
            let p = ((n.saturating_sub(6)) / 4).max(1);
            let d = n.saturating_sub(6 + 2 * p).max(1);
            let mut w = vec![p, d, 1, 1, p, 1, 1, 1, 1];
            let total: usize = w.iter().sum();
            w[1] += n.saturating_sub(total);
            w
        }
    }
}

/// Generate a workflow for `spec`.
///
/// Invariants: exactly `spec.num_tasks` tasks (for `num_tasks >= 3`); the
/// data footprint matches `spec.data_footprint_bytes` up to rounding; task
/// work averages `spec.work_per_task_secs * OPS_PER_REF_SECOND`.
pub fn generate(spec: &WorkflowSpec) -> Workflow {
    assert!(
        spec.num_tasks >= spec.app.min_tasks(),
        "{} needs at least {} tasks (requested {})",
        spec.app.name(),
        spec.app.min_tasks(),
        spec.num_tasks
    );
    let mut rng =
        rng_from_seed(spec.seed ^ (spec.num_tasks as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let widths = level_widths(spec.app, spec.num_tasks);
    let name = format!(
        "{}-{}t-{}s-{}b",
        spec.app.name(),
        spec.num_tasks,
        spec.work_per_task_secs,
        spec.data_footprint_bytes
    );
    let mut w = Workflow::new(&name);

    // Per-task work: lognormal jitter around the requested mean.
    let mean_ops = spec.work_per_task_secs * OPS_PER_REF_SECOND;
    let sigma = 0.25;
    // lognormal(mu, sigma) has mean exp(mu + sigma^2/2).
    let mu = mean_ops.max(f64::MIN_POSITIVE).ln() - sigma * sigma / 2.0;

    // Build tasks level by level.
    let mut levels: Vec<Vec<usize>> = Vec::with_capacity(widths.len());
    for (l, &width) in widths.iter().enumerate() {
        let mut level = Vec::with_capacity(width);
        for i in 0..width {
            let work = if mean_ops == 0.0 {
                0.0
            } else {
                lognormal(&mut rng, mu, sigma)
            };
            level.push(w.add_task(&format!("{}-l{}-{}", spec.app.name(), l, i), work));
        }
        levels.push(level);
    }

    // Wire consecutive levels: one-to-one when widths match, modulo
    // fan-in/fan-out otherwise (every task gets at least one parent).
    // File sizes get a weight now and are scaled to the footprint below.
    let mut edge_weights: Vec<f64> = Vec::new();
    let mut edge_files: Vec<usize> = Vec::new();
    {
        for l in 1..levels.len() {
            let (prev, cur) = (&levels[l - 1], &levels[l]);
            let mut wire = |from: usize, to: usize| {
                let fname = format!("f-{}-{}", w.tasks[from].name, w.tasks[to].name);
                let f = w.connect(from, to, &fname, 0.0);
                edge_files.push(f);
                edge_weights.push(lognormal(&mut rng, 0.0, 0.5));
            };
            if cur.len() >= prev.len() {
                // Fan-out: each child draws from one parent.
                for (i, &to) in cur.iter().enumerate() {
                    wire(prev[i % prev.len()], to);
                }
            } else {
                // Fan-in: each parent feeds one child; children may have many.
                for (j, &from) in prev.iter().enumerate() {
                    wire(from, cur[j % cur.len()]);
                }
            }
        }
        // External input per entry task; external output per sink task.
        let preds = w.predecessors();
        let succs = w.successors();
        for t in 0..w.num_tasks() {
            if preds[t].is_empty() {
                let f = w.add_file(&format!("in-{}", w.tasks[t].name), 0.0);
                w.add_input(t, f);
                edge_files.push(f);
                edge_weights.push(lognormal(&mut rng, 0.0, 0.5));
            }
            if succs[t].is_empty() {
                let f = w.add_file(&format!("out-{}", w.tasks[t].name), 0.0);
                w.add_output(t, f);
                edge_files.push(f);
                edge_weights.push(lognormal(&mut rng, 0.0, 0.5));
            }
        }
    }

    // Scale file sizes so the footprint matches the request exactly.
    let total_weight: f64 = edge_weights.iter().sum();
    if spec.data_footprint_bytes > 0.0 && total_weight > 0.0 {
        for (&f, &wt) in edge_files.iter().zip(&edge_weights) {
            w.files[f].size = spec.data_footprint_bytes * wt / total_weight;
        }
    }

    debug_assert!(w.validate().is_ok());
    w
}

/// One row of the paper's Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Application.
    pub app: AppKind,
    /// Workflow sizes (numbers of tasks).
    pub sizes: Vec<usize>,
    /// Sequential work per task, in seconds.
    pub works_secs: Vec<f64>,
    /// Total data footprints, in megabytes.
    pub footprints_mb: Vec<f64>,
    /// Worker counts the benchmarks were executed on.
    pub worker_counts: Vec<usize>,
}

/// The paper's Table 1, verbatim.
pub fn table1() -> Vec<Table1Row> {
    let real_fp = vec![0.0, 150.0, 1500.0, 15000.0];
    let synth_fp = vec![0.0, 150.0, 1500.0];
    let workers = vec![1, 2, 4, 6];
    vec![
        Table1Row {
            app: AppKind::Epigenomics,
            sizes: vec![43, 64, 86, 129, 215],
            works_secs: vec![0.6, 1.15, 1.73, 7.22, 73.25],
            footprints_mb: real_fp.clone(),
            worker_counts: workers.clone(),
        },
        Table1Row {
            app: AppKind::Genome1000,
            sizes: vec![54, 81, 108, 162, 270],
            works_secs: vec![0.9, 1.47, 2.11, 8.02, 80.94],
            footprints_mb: real_fp.clone(),
            worker_counts: workers.clone(),
        },
        Table1Row {
            app: AppKind::SoyKb,
            sizes: vec![98, 147, 196, 294, 490],
            works_secs: vec![0.53, 1.06, 1.6, 6.55, 74.21],
            footprints_mb: real_fp.clone(),
            worker_counts: workers.clone(),
        },
        Table1Row {
            app: AppKind::Montage,
            sizes: vec![60, 90, 120, 180, 300],
            works_secs: vec![0.59, 1.12, 1.75, 7.07, 73.13],
            footprints_mb: real_fp.clone(),
            worker_counts: workers.clone(),
        },
        Table1Row {
            app: AppKind::Seismology,
            sizes: vec![103, 154, 206, 309, 515],
            works_secs: vec![0.74, 1.28, 1.91, 8.34, 86.25],
            footprints_mb: real_fp,
            worker_counts: workers.clone(),
        },
        Table1Row {
            app: AppKind::Chain,
            sizes: vec![10, 25, 50],
            works_secs: vec![0.83, 1.36, 1.85, 5.74, 48.94],
            footprints_mb: synth_fp.clone(),
            worker_counts: vec![1],
        },
        Table1Row {
            app: AppKind::Forkjoin,
            sizes: vec![10, 25, 50],
            works_secs: vec![0.84, 1.39, 2.05, 7.61, 70.76],
            footprints_mb: synth_fp,
            worker_counts: workers,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_sum_to_task_count() {
        for app in AppKind::ALL {
            for n in [10, 43, 64, 129, 215, 270, 490, 515] {
                let widths = level_widths(app, n);
                let total: usize = widths.iter().sum();
                assert_eq!(total, n, "{} at {n}", app.name());
            }
        }
    }

    #[test]
    fn generate_exact_task_count_and_footprint() {
        for app in AppKind::ALL {
            let spec = WorkflowSpec {
                app,
                num_tasks: 50,
                work_per_task_secs: 1.5,
                data_footprint_bytes: 150e6,
                seed: 42,
            };
            let w = generate(&spec);
            assert_eq!(w.num_tasks(), 50, "{}", app.name());
            assert!(
                (w.data_footprint() - 150e6).abs() < 1.0,
                "{}: footprint {}",
                app.name(),
                w.data_footprint()
            );
            assert!(w.validate().is_ok(), "{}", app.name());
        }
    }

    #[test]
    fn zero_footprint_yields_zero_sizes() {
        let spec = WorkflowSpec {
            app: AppKind::Montage,
            num_tasks: 60,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 0.0,
            seed: 1,
        };
        let w = generate(&spec);
        assert_eq!(w.data_footprint(), 0.0);
        assert!(w.files.iter().all(|f| f.size == 0.0));
    }

    #[test]
    fn zero_work_yields_zero_ops() {
        let spec = WorkflowSpec {
            app: AppKind::Chain,
            num_tasks: 10,
            work_per_task_secs: 0.0,
            data_footprint_bytes: 1e6,
            seed: 1,
        };
        let w = generate(&spec);
        assert_eq!(w.total_work(), 0.0);
    }

    #[test]
    fn average_work_is_near_requested() {
        let spec = WorkflowSpec {
            app: AppKind::Seismology,
            num_tasks: 515,
            work_per_task_secs: 2.0,
            data_footprint_bytes: 0.0,
            seed: 7,
        };
        let w = generate(&spec);
        let avg_secs = w.total_work() / w.num_tasks() as f64 / OPS_PER_REF_SECOND;
        assert!((avg_secs - 2.0).abs() < 0.3, "avg {avg_secs}");
    }

    #[test]
    fn chain_is_a_chain() {
        let spec = WorkflowSpec {
            app: AppKind::Chain,
            num_tasks: 10,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 1e6,
            seed: 3,
        };
        let w = generate(&spec);
        assert_eq!(w.depth(), 10);
        let preds = w.predecessors();
        assert_eq!(preds.iter().filter(|p| p.is_empty()).count(), 1);
    }

    #[test]
    fn forkjoin_has_wide_middle() {
        let spec = WorkflowSpec {
            app: AppKind::Forkjoin,
            num_tasks: 25,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 1e6,
            seed: 3,
        };
        let w = generate(&spec);
        assert_eq!(w.depth(), 3);
        let levels = w.levels();
        assert_eq!(levels.iter().filter(|&&l| l == 1).count(), 23);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkflowSpec {
            app: AppKind::Epigenomics,
            num_tasks: 86,
            work_per_task_secs: 1.73,
            data_footprint_bytes: 1.5e9,
            seed: 11,
        };
        assert_eq!(generate(&spec), generate(&spec));
        let other = WorkflowSpec { seed: 12, ..spec };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].sizes, vec![43, 64, 86, 129, 215]);
        assert_eq!(t[1].works_secs[4], 80.94);
        assert_eq!(t[4].sizes[4], 515);
        assert_eq!(t[5].worker_counts, vec![1]); // chain runs on 1 worker
        assert_eq!(t[2].footprints_mb, vec![0.0, 150.0, 1500.0, 15000.0]);
        assert_eq!(t[6].footprints_mb, vec![0.0, 150.0, 1500.0]);
    }

    #[test]
    fn all_real_apps_have_parallel_levels() {
        for app in AppKind::REAL {
            let spec = WorkflowSpec {
                app,
                num_tasks: 100,
                work_per_task_secs: 1.0,
                data_footprint_bytes: 0.0,
                seed: 5,
            };
            let w = generate(&spec);
            let levels = w.levels();
            let max_width = (0..w.depth())
                .map(|l| levels.iter().filter(|&&x| x == l).count())
                .max()
                .unwrap();
            assert!(max_width > 5, "{} should have parallelism", app.name());
        }
    }
}
