//! Integration with the calibration framework: scenarios and the
//! `simcal::Simulator` implementation for workflow simulators.

use crate::generator::generate;
use crate::ground_truth::GroundTruthRecord;
use crate::simulator::WorkflowSimulator;
use crate::versions::SimulatorVersion;
use crate::workflow::Workflow;
use simcal::prelude::{
    relative_error, Calibration, ParameterSpace, ScenarioError, SimulationObjective, Simulator,
    StructuredLoss,
};

/// One calibration scenario: a concrete workflow, its worker count, and
/// the ground-truth observations to reproduce.
#[derive(Clone, Debug)]
pub struct WfScenario {
    /// The workflow to execute (pre-generated once, not per evaluation).
    pub workflow: Workflow,
    /// Worker count of the ground-truth execution.
    pub n_workers: usize,
    /// Observed makespan.
    pub gt_makespan: f64,
    /// Observed per-task execution times.
    pub gt_task_times: Vec<f64>,
}

impl WfScenario {
    /// Materialize a ground-truth record into a scenario (re-generating
    /// the workflow from its spec).
    pub fn from_record(record: &GroundTruthRecord) -> Self {
        Self {
            workflow: generate(&record.spec),
            n_workers: record.n_workers,
            gt_makespan: record.makespan,
            gt_task_times: record.task_times.clone(),
        }
    }

    /// Materialize a whole dataset.
    pub fn from_records(records: &[GroundTruthRecord]) -> Vec<WfScenario> {
        records.iter().map(Self::from_record).collect()
    }
}

impl Simulator for WorkflowSimulator {
    type Scenario = WfScenario;
    type Output = ScenarioError;

    /// Simulate the scenario and report the makespan error `e_i` plus the
    /// per-task execution-time errors `e_{i,j}` (paper §5.3.2).
    fn run(&self, scenario: &WfScenario, calibration: &Calibration) -> ScenarioError {
        let out = self.simulate(&scenario.workflow, scenario.n_workers, calibration);
        let scalar = relative_error(scenario.gt_makespan, out.makespan);
        let elements = scenario
            .gt_task_times
            .iter()
            .zip(&out.task_times)
            .map(|(&gt, &sim)| relative_error(gt, sim))
            .collect();
        ScenarioError { scalar, elements }
    }
}

/// Convenience: the calibration objective for one simulator version over a
/// scenario dataset, under a given workflow loss function.
pub fn objective<'a>(
    simulator: &'a WorkflowSimulator,
    scenarios: &'a [WfScenario],
    loss: StructuredLoss,
) -> SimulationObjective<'a, WorkflowSimulator, StructuredLoss> {
    SimulationObjective::new(
        simulator,
        scenarios,
        loss,
        simulator.version.parameter_space(),
    )
}

/// The parameter space of a version (re-exported for ergonomic access).
pub fn space_of(version: SimulatorVersion) -> ParameterSpace {
    version.parameter_space()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::AppKind;
    use crate::ground_truth::{dataset_for, DatasetOptions};
    use simcal::prelude::{Agg, Budget, Calibrator, ElementMix, Objective};

    fn tiny_dataset() -> Vec<GroundTruthRecord> {
        dataset_for(
            AppKind::Forkjoin,
            &DatasetOptions {
                repetitions: 2,
                size_indices: vec![0],
                work_indices: vec![1],
                footprint_indices: vec![1],
                worker_counts: vec![2],
                ..Default::default()
            },
        )
    }

    #[test]
    fn scenario_roundtrips_record() {
        let records = tiny_dataset();
        let s = WfScenario::from_record(&records[0]);
        assert_eq!(s.workflow.num_tasks(), records[0].spec.num_tasks);
        assert_eq!(s.n_workers, 2);
        assert!(s.gt_makespan > 0.0);
        assert_eq!(s.gt_task_times.len(), s.workflow.num_tasks());
    }

    #[test]
    fn objective_loss_is_finite_and_positive_for_arbitrary_point() {
        let records = tiny_dataset();
        let scenarios = WfScenario::from_records(&records);
        let sim = WorkflowSimulator::new(SimulatorVersion::lowest_detail());
        let obj = objective(
            &sim,
            &scenarios,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        );
        let calib = sim
            .version
            .parameter_space()
            .denormalize(&vec![0.5; obj.space().dim()]);
        let loss = obj.loss(&calib);
        assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
    }

    #[test]
    fn short_calibration_improves_over_random_point() {
        let records = tiny_dataset();
        let scenarios = WfScenario::from_records(&records);
        let sim = WorkflowSimulator::new(SimulatorVersion::lowest_detail());
        let obj = objective(
            &sim,
            &scenarios,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        );
        let start = obj.loss(
            &sim.version
                .parameter_space()
                .denormalize(&vec![0.25; obj.space().dim()]),
        );
        let result = Calibrator::bo_gp(Budget::Evaluations(40), 1).calibrate(&obj);
        assert!(
            result.loss <= start,
            "calibrated {} vs arbitrary {start}",
            result.loss
        );
    }
}
