//! Ground-truth emulator for case study #1.
//!
//! The paper's ground truth is 9,200 Pegasus/HTCondor workflow executions
//! on Chameleon Cloud. We do not have that testbed, so this module
//! substitutes a **hidden high-fidelity emulator**: the workflow execution
//! engine at its richest configuration — star network, storage on all
//! nodes, an HTCondor service with periodic negotiation cycles *and*
//! separate pre/post overheads — plus stochastic effects none of the 12
//! candidate simulator versions model (per-task runtime noise, overhead
//! jitter, scheduling jitter).
//!
//! Two properties matter for the methodology and hold by construction:
//! the generating process is strictly richer than every candidate
//! simulator (so the best achievable error is non-zero, as on the real
//! testbed), and its overhead structure is phase-specific (so only the
//! HTCondor-enabled candidates can express it — the paper's headline
//! observation in Figure 2).
//!
//! The hidden parameter values in [`EmulatorConfig::default`] are the
//! "physical platform" and are of course not available to calibrations.

use crate::generator::{generate, table1, AppKind, WorkflowSpec, OPS_PER_REF_SECOND};
use crate::simulator::{execute, NoiseModel, OverheadModel, ResolvedModel, SimOutput};
use crate::versions::{NetworkModel, StorageModel};
use serde::{Deserialize, Serialize};

/// Hidden "physical platform" parameters of the emulated testbed.
#[derive(Clone, Copy, Debug)]
pub struct EmulatorConfig {
    /// Per-branch star-network bandwidth (bytes/s).
    pub net_bw: f64,
    /// Per-branch latency (s).
    pub net_lat: f64,
    /// Submit-node disk bandwidth (bytes/s).
    pub submit_disk_bw: f64,
    /// Worker disk bandwidth (bytes/s).
    pub worker_disk_bw: f64,
    /// Maximum concurrent I/O operations per disk.
    pub disk_concurrency: u32,
    /// Effective core speed (ops/s). Equals [`OPS_PER_REF_SECOND`] so that
    /// Table 1's per-task seconds are exact on this platform.
    pub core_speed: f64,
    /// HTCondor negotiation cycle period (s).
    pub condor_cycle: f64,
    /// Pre-execution overhead per task (s).
    pub pre_overhead: f64,
    /// Post-execution overhead per task (s).
    pub post_overhead: f64,
    /// Lognormal sigma on per-task compute time.
    pub compute_sigma: f64,
    /// Relative jitter on overheads.
    pub overhead_jitter: f64,
    /// Maximum scheduling jitter per task (s).
    pub sched_jitter: f64,
    /// Cores per worker (48 on the paper's Icelake workers).
    pub cores_per_worker: u32,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            net_bw: 2f64.powi(30),         // ~1.07 GB/s per branch
            net_lat: 2e-4,                 // 0.2 ms
            submit_disk_bw: 2f64.powi(29), // ~537 MB/s
            worker_disk_bw: 2f64.powi(28), // ~268 MB/s
            disk_concurrency: 8,
            core_speed: OPS_PER_REF_SECOND,
            condor_cycle: 4.0,
            pre_overhead: 1.2,
            post_overhead: 0.8,
            compute_sigma: 0.05,
            overhead_jitter: 0.2,
            sched_jitter: 0.2,
            cores_per_worker: 48,
        }
    }
}

impl EmulatorConfig {
    fn resolved(&self, noise_seed: u64) -> ResolvedModel {
        ResolvedModel {
            network: NetworkModel::Star,
            backbone_bw: 0.0,
            backbone_lat: 0.0,
            net_bw: self.net_bw,
            net_lat: self.net_lat,
            storage: StorageModel::AllNodes,
            submit_disk_bw: self.submit_disk_bw,
            worker_disk_bw: self.worker_disk_bw,
            disk_concurrency: self.disk_concurrency,
            core_speed: self.core_speed,
            overhead: OverheadModel::Condor {
                cycle: self.condor_cycle,
                pre: self.pre_overhead,
                post: self.post_overhead,
            },
            noise: Some(NoiseModel {
                compute_sigma: self.compute_sigma,
                overhead_jitter: self.overhead_jitter,
                sched_jitter: self.sched_jitter,
                seed: noise_seed,
            }),
        }
    }

    /// Emulate one "real-world" execution of `workflow` on `n_workers`
    /// workers; `noise_seed` distinguishes repetitions.
    pub fn emulate(
        &self,
        workflow: &crate::workflow::Workflow,
        n_workers: usize,
        noise_seed: u64,
    ) -> SimOutput {
        execute(
            workflow,
            n_workers,
            self.cores_per_worker,
            &self.resolved(noise_seed),
        )
    }
}

/// One ground-truth data point: a workflow execution with its observed
/// metrics (averaged over repetitions, as the paper's five repeats are).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruthRecord {
    /// How the workflow was generated.
    pub spec: WorkflowSpec,
    /// Number of workers the execution used.
    pub n_workers: usize,
    /// Observed makespan (seconds, mean over repetitions).
    pub makespan: f64,
    /// Observed per-task execution times (mean over repetitions).
    pub task_times: Vec<f64>,
}

impl GroundTruthRecord {
    /// The paper's training-dataset cost metric (§5.5): number of workers
    /// times makespan, in worker-seconds.
    pub fn cost(&self) -> f64 {
        self.n_workers as f64 * self.makespan
    }
}

/// Dataset-generation options.
#[derive(Clone, Debug)]
pub struct DatasetOptions {
    /// Repetitions averaged per record (the paper ran five).
    pub repetitions: usize,
    /// Base seed for workflow generation and execution noise.
    pub seed: u64,
    /// Indices into each Table 1 row's `sizes` (empty = all).
    pub size_indices: Vec<usize>,
    /// Indices into each row's `works_secs` (empty = all).
    pub work_indices: Vec<usize>,
    /// Indices into each row's `footprints_mb` (empty = all).
    pub footprint_indices: Vec<usize>,
    /// Restrict worker counts (empty = the row's own counts).
    pub worker_counts: Vec<usize>,
    /// Hidden platform.
    pub config: EmulatorConfig,
}

impl Default for DatasetOptions {
    fn default() -> Self {
        Self {
            repetitions: 5,
            seed: 0xC0FFEE,
            size_indices: Vec::new(),
            work_indices: Vec::new(),
            footprint_indices: Vec::new(),
            worker_counts: Vec::new(),
            config: EmulatorConfig::default(),
        }
    }
}

fn pick<T: Clone>(all: &[T], indices: &[usize]) -> Vec<T> {
    if indices.is_empty() {
        all.to_vec()
    } else {
        indices
            .iter()
            .filter_map(|&i| all.get(i).cloned())
            .collect()
    }
}

/// Deterministic per-record seed.
fn record_seed(
    base: u64,
    app: AppKind,
    size: usize,
    work_i: usize,
    fp_i: usize,
    workers: usize,
) -> u64 {
    let mut h = base ^ 0x9E3779B97F4A7C15;
    for v in [app as usize, size, work_i, fp_i, workers] {
        h = (h ^ v as u64).wrapping_mul(0x100000001B3);
    }
    h
}

/// Generate ground-truth records for one application, following its
/// Table 1 row filtered by `opts`.
pub fn dataset_for(app: AppKind, opts: &DatasetOptions) -> Vec<GroundTruthRecord> {
    let row = table1()
        .into_iter()
        .find(|r| r.app == app)
        .expect("every AppKind has a Table 1 row");
    let sizes = pick(&row.sizes, &opts.size_indices);
    let works = pick(&row.works_secs, &opts.work_indices);
    let fps = pick(&row.footprints_mb, &opts.footprint_indices);
    let workers = if opts.worker_counts.is_empty() {
        row.worker_counts.clone()
    } else {
        opts.worker_counts
            .iter()
            .copied()
            .filter(|w| row.worker_counts.contains(w))
            .collect()
    };

    let mut records = Vec::new();
    for &size in &sizes {
        for (wi, &work) in works.iter().enumerate() {
            for (fi, &fp_mb) in fps.iter().enumerate() {
                let seed = record_seed(opts.seed, app, size, wi, fi, 0);
                let spec = WorkflowSpec {
                    app,
                    num_tasks: size,
                    work_per_task_secs: work,
                    data_footprint_bytes: fp_mb * 1e6,
                    seed,
                };
                let workflow = generate(&spec);
                for &n_workers in &workers {
                    let mut makespans = Vec::with_capacity(opts.repetitions);
                    let mut task_sums = vec![0.0; workflow.num_tasks()];
                    for rep in 0..opts.repetitions {
                        let noise_seed = record_seed(opts.seed, app, size, wi, fi, n_workers)
                            ^ (rep as u64) << 48;
                        let out = opts.config.emulate(&workflow, n_workers, noise_seed);
                        makespans.push(out.makespan);
                        for (s, t) in task_sums.iter_mut().zip(&out.task_times) {
                            *s += t;
                        }
                    }
                    let reps = opts.repetitions as f64;
                    records.push(GroundTruthRecord {
                        spec,
                        n_workers,
                        makespan: numeric::mean(&makespans),
                        task_times: task_sums.iter().map(|s| s / reps).collect(),
                    });
                }
            }
        }
    }
    records
}

/// Generate records for several applications.
pub fn dataset(apps: &[AppKind], opts: &DatasetOptions) -> Vec<GroundTruthRecord> {
    apps.iter().flat_map(|&a| dataset_for(a, opts)).collect()
}

/// The paper's §5.4 train/test split over one application's records:
///
/// - **testing**: executions on the largest worker count with more than
///   the smallest task count, plus executions with the largest task count
///   on more than the smallest worker count;
/// - **training** (default choice): executions with the second-largest
///   worker count *and* second-largest task count.
pub fn split_train_test(
    records: &[GroundTruthRecord],
) -> (Vec<GroundTruthRecord>, Vec<GroundTruthRecord>) {
    let mut sizes: Vec<usize> = records.iter().map(|r| r.spec.num_tasks).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut workers: Vec<usize> = records.iter().map(|r| r.n_workers).collect();
    workers.sort_unstable();
    workers.dedup();

    let max_size = *sizes.last().expect("non-empty records");
    let min_size = sizes[0];
    let max_workers = *workers.last().expect("non-empty records");
    let min_workers = workers[0];
    let second_size = if sizes.len() >= 2 {
        sizes[sizes.len() - 2]
    } else {
        max_size
    };
    let second_workers = if workers.len() >= 2 {
        workers[workers.len() - 2]
    } else {
        max_workers
    };

    let test: Vec<GroundTruthRecord> = records
        .iter()
        .filter(|r| {
            (r.n_workers == max_workers && r.spec.num_tasks > min_size)
                || (r.spec.num_tasks == max_size && r.n_workers > min_workers)
        })
        .cloned()
        .collect();
    let train: Vec<GroundTruthRecord> = records
        .iter()
        .filter(|r| r.n_workers == second_workers && r.spec.num_tasks == second_size)
        .cloned()
        .collect();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> DatasetOptions {
        DatasetOptions {
            repetitions: 2,
            size_indices: vec![0],
            work_indices: vec![0],
            footprint_indices: vec![1],
            worker_counts: vec![1, 2],
            ..Default::default()
        }
    }

    #[test]
    fn dataset_respects_filters() {
        let recs = dataset_for(AppKind::Forkjoin, &small_opts());
        // 1 size x 1 work x 1 footprint x 2 worker counts.
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.spec.num_tasks == 10));
        assert!(recs
            .iter()
            .all(|r| (r.spec.data_footprint_bytes - 150e6).abs() < 1.0));
    }

    #[test]
    fn chain_only_runs_on_one_worker() {
        let opts = DatasetOptions {
            repetitions: 1,
            size_indices: vec![0],
            work_indices: vec![0],
            footprint_indices: vec![0],
            ..Default::default()
        };
        let recs = dataset_for(AppKind::Chain, &opts);
        assert!(recs.iter().all(|r| r.n_workers == 1));
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn emulation_is_reproducible_and_noisy_across_reps() {
        let cfg = EmulatorConfig::default();
        let wf = generate(&WorkflowSpec {
            app: AppKind::Forkjoin,
            num_tasks: 10,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 10e6,
            seed: 1,
        });
        let a = cfg.emulate(&wf, 2, 7);
        let b = cfg.emulate(&wf, 2, 7);
        assert_eq!(a, b, "same noise seed must reproduce");
        let c = cfg.emulate(&wf, 2, 8);
        assert_ne!(a.makespan, c.makespan, "different noise seeds must differ");
        // Noise is small: repetitions agree within ~20%.
        assert!((a.makespan - c.makespan).abs() / a.makespan < 0.2);
    }

    #[test]
    fn makespan_reflects_condor_overheads() {
        // 10 x 1s tasks on plentiful cores: pure compute would be ~3s
        // (3 levels); the emulator's cycles + overheads push well past it.
        let cfg = EmulatorConfig::default();
        let wf = generate(&WorkflowSpec {
            app: AppKind::Forkjoin,
            num_tasks: 10,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 0.0,
            seed: 2,
        });
        let out = cfg.emulate(&wf, 2, 1);
        assert!(
            out.makespan > 9.0,
            "cycles+overheads should dominate: {}",
            out.makespan
        );
    }

    #[test]
    fn cost_is_workers_times_makespan() {
        let r = GroundTruthRecord {
            spec: WorkflowSpec {
                app: AppKind::Chain,
                num_tasks: 10,
                work_per_task_secs: 1.0,
                data_footprint_bytes: 0.0,
                seed: 0,
            },
            n_workers: 4,
            makespan: 25.0,
            task_times: vec![],
        };
        assert_eq!(r.cost(), 100.0);
    }

    #[test]
    fn split_matches_paper_example() {
        // Mirror the 1000Genome example from §5.4: workers {1,2,4,6},
        // sizes {54,81,108,162,270}. Testing = 6 workers with >=81 tasks
        // + 270 tasks with >=2 workers; training = 4 workers & 162 tasks.
        let mut records = Vec::new();
        for &w in &[1usize, 2, 4, 6] {
            for &s in &[54usize, 81, 108, 162, 270] {
                records.push(GroundTruthRecord {
                    spec: WorkflowSpec {
                        app: AppKind::Genome1000,
                        num_tasks: s,
                        work_per_task_secs: 1.0,
                        data_footprint_bytes: 0.0,
                        seed: 0,
                    },
                    n_workers: w,
                    makespan: 1.0,
                    task_times: vec![],
                });
            }
        }
        let (train, test) = split_train_test(&records);
        assert_eq!(train.len(), 1);
        assert_eq!(train[0].n_workers, 4);
        assert_eq!(train[0].spec.num_tasks, 162);
        // 6-worker rows with 81..270 (4) + 270-task rows with 2,4 workers (2).
        assert_eq!(test.len(), 6);
        assert!(test.iter().all(|r| {
            (r.n_workers == 6 && r.spec.num_tasks > 54)
                || (r.spec.num_tasks == 270 && r.n_workers > 1)
        }));
    }

    #[test]
    fn higher_footprint_increases_makespan() {
        let opts_small = DatasetOptions {
            repetitions: 1,
            size_indices: vec![0],
            work_indices: vec![0],
            footprint_indices: vec![0], // 0 MB
            worker_counts: vec![2],
            ..Default::default()
        };
        let opts_large = DatasetOptions {
            footprint_indices: vec![3],
            ..opts_small.clone()
        };
        let small = dataset_for(AppKind::Montage, &opts_small);
        let large = dataset_for(AppKind::Montage, &opts_large);
        assert!(
            large[0].makespan > small[0].makespan,
            "15 GB footprint must cost more than 0: {} vs {}",
            large[0].makespan,
            small[0].makespan
        );
    }
}
