//! # wfsim — case study #1: scientific workflows
//!
//! A workflow simulator in the style of the paper's WRENCH-based simulator
//! (§5), with **twelve level-of-detail versions** (3 network x 2 storage
//! x 2 compute options, [`versions::SimulatorVersion`]), WfCommons-style
//! workflow [generators](generator) covering the paper's Table 1, a
//! Pegasus/HTCondor-style [ground-truth emulator](ground_truth)
//! substituting for the Chameleon Cloud testbed, and the
//! [`simcal`] integration ([`scenario`]) that makes every
//! version automatically calibratable.
//!
//! ## Example
//!
//! ```
//! use wfsim::prelude::*;
//! use simcal::prelude::*;
//!
//! // Ground truth for a small forkjoin configuration.
//! let records = dataset_for(AppKind::Forkjoin, &DatasetOptions {
//!     repetitions: 2,
//!     size_indices: vec![0],
//!     work_indices: vec![0],
//!     footprint_indices: vec![1],
//!     worker_counts: vec![2],
//!     ..Default::default()
//! });
//! let scenarios = WfScenario::from_records(&records);
//!
//! // Calibrate the lowest-detail simulator against it.
//! let sim = WorkflowSimulator::new(SimulatorVersion::lowest_detail());
//! let obj = objective(&sim, &scenarios,
//!     StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"));
//! let result = Calibrator::bo_gp(Budget::Evaluations(30), 1).calibrate(&obj);
//! assert!(result.loss.is_finite());
//! ```

pub mod generator;
pub mod ground_truth;
pub mod scenario;
pub mod simulator;
pub mod spec;
pub mod versions;
pub mod wfcommons;
pub mod workflow;

/// One-stop imports for case-study-1 users.
pub mod prelude {
    pub use crate::generator::{
        generate, table1, AppKind, Table1Row, WorkflowSpec, OPS_PER_REF_SECOND,
    };
    pub use crate::ground_truth::{
        dataset, dataset_for, split_train_test, DatasetOptions, EmulatorConfig, GroundTruthRecord,
    };
    pub use crate::scenario::{objective, space_of, WfScenario};
    pub use crate::simulator::{SimOutput, WorkflowSimulator};
    pub use crate::spec::spec_calibration;
    pub use crate::versions::{ComputeModel, NetworkModel, SimulatorVersion, StorageModel};
    pub use crate::wfcommons::{from_json, to_json};
    pub use crate::workflow::{DataFile, FileId, Task, TaskId, Workflow};
}
