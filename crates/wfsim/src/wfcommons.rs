//! WfCommons-like JSON interchange for workflows.
//!
//! The paper's simulator consumes workflow specifications "as a WfCommons
//! JSON file". This module reads and writes a name-based JSON schema in
//! the same spirit: tasks reference files by name, dependencies are
//! implied by data flow, and file sizes are in bytes.

use crate::workflow::Workflow;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Schema identifier embedded in every document this module writes.
pub const SCHEMA_VERSION: &str = "lodcal-wfcommons-1.0";

#[derive(Serialize, Deserialize)]
struct Doc {
    name: String,
    #[serde(rename = "schemaVersion")]
    schema_version: String,
    workflow: WorkflowDoc,
}

#[derive(Serialize, Deserialize)]
struct WorkflowDoc {
    tasks: Vec<TaskDoc>,
    files: Vec<FileDoc>,
}

#[derive(Serialize, Deserialize)]
struct TaskDoc {
    name: String,
    /// Sequential work in abstract operations.
    work: f64,
    #[serde(rename = "inputFiles")]
    input_files: Vec<String>,
    #[serde(rename = "outputFiles")]
    output_files: Vec<String>,
}

#[derive(Serialize, Deserialize)]
struct FileDoc {
    name: String,
    #[serde(rename = "sizeInBytes")]
    size_in_bytes: f64,
}

/// Serialize a workflow to the WfCommons-like JSON document.
pub fn to_json(workflow: &Workflow) -> String {
    let doc = Doc {
        name: workflow.name.clone(),
        schema_version: SCHEMA_VERSION.to_string(),
        workflow: WorkflowDoc {
            tasks: workflow
                .tasks
                .iter()
                .map(|t| TaskDoc {
                    name: t.name.clone(),
                    work: t.work,
                    input_files: t
                        .inputs
                        .iter()
                        .map(|&f| workflow.files[f].name.clone())
                        .collect(),
                    output_files: t
                        .outputs
                        .iter()
                        .map(|&f| workflow.files[f].name.clone())
                        .collect(),
                })
                .collect(),
            files: workflow
                .files
                .iter()
                .map(|f| FileDoc {
                    name: f.name.clone(),
                    size_in_bytes: f.size,
                })
                .collect(),
        },
    };
    serde_json::to_string_pretty(&doc).expect("workflow serialization cannot fail")
}

/// Parse a WfCommons-like JSON document into a [`Workflow`].
///
/// Returns a descriptive error for malformed JSON, unknown file
/// references, or structurally invalid workflows (cycles, duplicates).
pub fn from_json(json: &str) -> Result<Workflow, String> {
    let doc: Doc = serde_json::from_str(json).map_err(|e| format!("malformed JSON: {e}"))?;
    let mut w = Workflow::new(&doc.name);
    let mut file_ids = HashMap::new();
    for f in &doc.workflow.files {
        if f.size_in_bytes < 0.0 || !f.size_in_bytes.is_finite() {
            return Err(format!(
                "file {:?} has invalid size {}",
                f.name, f.size_in_bytes
            ));
        }
        let id = w.add_file(&f.name, f.size_in_bytes);
        if file_ids.insert(f.name.clone(), id).is_some() {
            return Err(format!("duplicate file name {:?}", f.name));
        }
    }
    for t in &doc.workflow.tasks {
        if t.work < 0.0 || !t.work.is_finite() {
            return Err(format!("task {:?} has invalid work {}", t.name, t.work));
        }
        let id = w.add_task(&t.name, t.work);
        for fname in &t.input_files {
            let &f = file_ids
                .get(fname)
                .ok_or_else(|| format!("task {:?} reads unknown file {fname:?}", t.name))?;
            w.add_input(id, f);
        }
        for fname in &t.output_files {
            let &f = file_ids
                .get(fname)
                .ok_or_else(|| format!("task {:?} writes unknown file {fname:?}", t.name))?;
            if w.producers()[f].is_some() {
                return Err(format!("file {fname:?} has multiple producers"));
            }
            w.add_output(id, f);
        }
    }
    w.validate()?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workflow {
        let mut w = Workflow::new("sample");
        let a = w.add_task("stage-in", 1e9);
        let b = w.add_task("analyze", 5e9);
        let input = w.add_file("raw.dat", 1e6);
        w.add_input(a, input);
        w.connect(a, b, "clean.dat", 2e6);
        w
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let w = sample();
        let json = to_json(&w);
        let back = from_json(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn json_contains_schema_and_names() {
        let json = to_json(&sample());
        assert!(json.contains(SCHEMA_VERSION));
        assert!(json.contains("\"clean.dat\""));
        assert!(json.contains("\"sizeInBytes\""));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{not json").unwrap_err().contains("malformed"));
    }

    #[test]
    fn unknown_file_reference_is_an_error() {
        let json = r#"{
            "name": "w", "schemaVersion": "lodcal-wfcommons-1.0",
            "workflow": {
                "tasks": [{"name": "t", "work": 1.0, "inputFiles": ["ghost"], "outputFiles": []}],
                "files": []
            }
        }"#;
        assert!(from_json(json).unwrap_err().contains("unknown file"));
    }

    #[test]
    fn multiple_producers_is_an_error() {
        let json = r#"{
            "name": "w", "schemaVersion": "lodcal-wfcommons-1.0",
            "workflow": {
                "tasks": [
                    {"name": "a", "work": 1.0, "inputFiles": [], "outputFiles": ["f"]},
                    {"name": "b", "work": 1.0, "inputFiles": [], "outputFiles": ["f"]}
                ],
                "files": [{"name": "f", "sizeInBytes": 1.0}]
            }
        }"#;
        assert!(from_json(json).unwrap_err().contains("multiple producers"));
    }

    #[test]
    fn negative_size_is_an_error() {
        let json = r#"{
            "name": "w", "schemaVersion": "lodcal-wfcommons-1.0",
            "workflow": {
                "tasks": [],
                "files": [{"name": "f", "sizeInBytes": -3.0}]
            }
        }"#;
        assert!(from_json(json).unwrap_err().contains("invalid size"));
    }

    #[test]
    fn cyclic_document_is_an_error() {
        let json = r#"{
            "name": "w", "schemaVersion": "lodcal-wfcommons-1.0",
            "workflow": {
                "tasks": [
                    {"name": "a", "work": 1.0, "inputFiles": ["ba"], "outputFiles": ["ab"]},
                    {"name": "b", "work": 1.0, "inputFiles": ["ab"], "outputFiles": ["ba"]}
                ],
                "files": [{"name": "ab", "sizeInBytes": 1.0}, {"name": "ba", "sizeInBytes": 1.0}]
            }
        }"#;
        assert!(from_json(json).unwrap_err().contains("cycle"));
    }
}
