//! Workflow model: tasks, data files, and the DAG induced by data flow.
//!
//! A workflow is a set of tasks and a set of data files; a task consumes
//! its input files and produces its output files. Dependencies are
//! *derived* from data flow (a task depends on the producers of its
//! inputs), exactly like WfCommons instances. Control-only dependencies
//! (zero data) are modelled as zero-byte files.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a task within its workflow.
pub type TaskId = usize;
/// Index of a data file within its workflow.
pub type FileId = usize;

/// A single workflow task.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name (unique within the workflow).
    pub name: String,
    /// Sequential work in abstract operations (executed on one core).
    pub work: f64,
    /// Files read before execution.
    pub inputs: Vec<FileId>,
    /// Files written after execution.
    pub outputs: Vec<FileId>,
}

/// A data file exchanged between tasks (or with the outside world).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataFile {
    /// Human-readable name (unique within the workflow).
    pub name: String,
    /// Size in bytes.
    pub size: f64,
}

/// A workflow: tasks plus data files, with data-flow-derived dependencies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name (e.g. `"epigenomics-129"`).
    pub name: String,
    /// Tasks, indexed by [`TaskId`].
    pub tasks: Vec<Task>,
    /// Data files, indexed by [`FileId`].
    pub files: Vec<DataFile>,
}

impl Workflow {
    /// An empty workflow with the given name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            tasks: Vec::new(),
            files: Vec::new(),
        }
    }

    /// Add a task; returns its id.
    pub fn add_task(&mut self, name: &str, work: f64) -> TaskId {
        assert!(
            work >= 0.0 && work.is_finite(),
            "task work must be non-negative"
        );
        self.tasks.push(Task {
            name: name.to_string(),
            work,
            inputs: Vec::new(),
            outputs: Vec::new(),
        });
        self.tasks.len() - 1
    }

    /// Add a data file; returns its id.
    pub fn add_file(&mut self, name: &str, size: f64) -> FileId {
        assert!(
            size >= 0.0 && size.is_finite(),
            "file size must be non-negative"
        );
        self.files.push(DataFile {
            name: name.to_string(),
            size,
        });
        self.files.len() - 1
    }

    /// Declare that `task` reads `file`.
    pub fn add_input(&mut self, task: TaskId, file: FileId) {
        assert!(file < self.files.len(), "unknown file");
        self.tasks[task].inputs.push(file);
    }

    /// Declare that `task` writes `file`.
    ///
    /// # Panics
    /// Panics if the file already has a producer (single-writer rule).
    pub fn add_output(&mut self, task: TaskId, file: FileId) {
        assert!(file < self.files.len(), "unknown file");
        assert!(
            self.tasks.iter().all(|t| !t.outputs.contains(&file)),
            "file {} already has a producer",
            self.files[file].name
        );
        self.tasks[task].outputs.push(file);
    }

    /// Convenience: add a file produced by `from` and consumed by `to`.
    pub fn connect(&mut self, from: TaskId, to: TaskId, name: &str, size: f64) -> FileId {
        let f = self.add_file(name, size);
        self.add_output(from, f);
        self.add_input(to, f);
        f
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The producer of each file (`None` for workflow inputs).
    pub fn producers(&self) -> Vec<Option<TaskId>> {
        let mut p = vec![None; self.files.len()];
        for (t, task) in self.tasks.iter().enumerate() {
            for &f in &task.outputs {
                p[f] = Some(t);
            }
        }
        p
    }

    /// Direct predecessors of each task (deduplicated, sorted).
    pub fn predecessors(&self) -> Vec<Vec<TaskId>> {
        let producers = self.producers();
        self.tasks
            .iter()
            .map(|task| {
                let mut preds: Vec<TaskId> =
                    task.inputs.iter().filter_map(|&f| producers[f]).collect();
                preds.sort_unstable();
                preds.dedup();
                preds
            })
            .collect()
    }

    /// Direct successors of each task (deduplicated, sorted).
    pub fn successors(&self) -> Vec<Vec<TaskId>> {
        let mut succ = vec![Vec::new(); self.tasks.len()];
        for (t, preds) in self.predecessors().iter().enumerate() {
            for &p in preds {
                succ[p].push(t);
            }
        }
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
        }
        succ
    }

    /// Files that no task produces (the workflow's external inputs).
    pub fn input_files(&self) -> Vec<FileId> {
        self.producers()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(f, _)| f)
            .collect()
    }

    /// Sum of all file sizes — the paper's *data footprint* (Table 1).
    pub fn data_footprint(&self) -> f64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Sum of all task work.
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.work).sum()
    }

    /// Work along the heaviest dependency chain: a lower bound on the
    /// compute content of any execution, regardless of worker count.
    pub fn critical_path_work(&self) -> f64 {
        let preds = self.predecessors();
        let mut finish = vec![0.0f64; self.tasks.len()];
        for t in self.topological_order() {
            let ready = preds[t].iter().map(|&p| finish[p]).fold(0.0f64, f64::max);
            finish[t] = ready + self.tasks[t].work;
        }
        finish.into_iter().fold(0.0, f64::max)
    }

    /// Tasks in a deterministic topological order.
    ///
    /// # Panics
    /// Panics if the data-flow graph has a cycle.
    pub fn topological_order(&self) -> Vec<TaskId> {
        let preds = self.predecessors();
        let mut indegree: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        let succ = self.successors();
        // Kahn's algorithm with an index-ordered frontier for determinism.
        let mut frontier: Vec<TaskId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(t, _)| t)
            .collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        while let Some(&t) = frontier.first() {
            frontier.remove(0);
            order.push(t);
            for &s in &succ[t] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    // Insert keeping the frontier sorted.
                    let pos = frontier.partition_point(|&x| x < s);
                    frontier.insert(pos, s);
                }
            }
        }
        assert_eq!(
            order.len(),
            self.tasks.len(),
            "workflow {} has a dependency cycle",
            self.name
        );
        order
    }

    /// Depth (level) of each task: 0 for entry tasks, `1 + max(pred)`
    /// otherwise.
    pub fn levels(&self) -> Vec<usize> {
        let preds = self.predecessors();
        let mut level = vec![0usize; self.tasks.len()];
        for &t in &self.topological_order() {
            level[t] = preds[t].iter().map(|&p| level[p] + 1).max().unwrap_or(0);
        }
        level
    }

    /// Length of the longest chain of tasks (critical path in task count).
    pub fn depth(&self) -> usize {
        self.levels().iter().max().map_or(0, |m| m + 1)
    }

    /// Basic structural validation: names unique, file references in
    /// range, graph acyclic. Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = HashMap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if let Some(prev) = names.insert(&t.name, i) {
                return Err(format!(
                    "duplicate task name {:?} (tasks {prev} and {i})",
                    t.name
                ));
            }
            for &f in t.inputs.iter().chain(&t.outputs) {
                if f >= self.files.len() {
                    return Err(format!("task {:?} references unknown file {f}", t.name));
                }
            }
        }
        let mut fnames = HashMap::new();
        for (i, f) in self.files.iter().enumerate() {
            if let Some(prev) = fnames.insert(&f.name, i) {
                return Err(format!(
                    "duplicate file name {:?} (files {prev} and {i})",
                    f.name
                ));
            }
        }
        // Cycle check via Kahn (reuse topological_order but non-panicking).
        let preds = self.predecessors();
        let succ = self.successors();
        let mut indegree: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        let mut frontier: Vec<TaskId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(t, _)| t)
            .collect();
        let mut seen = 0;
        while let Some(t) = frontier.pop() {
            seen += 1;
            for &s in &succ[t] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    frontier.push(s);
                }
            }
        }
        if seen != self.tasks.len() {
            return Err(format!("workflow {:?} has a dependency cycle", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// diamond: a -> {b, c} -> d
    fn diamond() -> Workflow {
        let mut w = Workflow::new("diamond");
        let a = w.add_task("a", 1.0);
        let b = w.add_task("b", 2.0);
        let c = w.add_task("c", 3.0);
        let d = w.add_task("d", 4.0);
        w.connect(a, b, "ab", 10.0);
        w.connect(a, c, "ac", 20.0);
        w.connect(b, d, "bd", 30.0);
        w.connect(c, d, "cd", 40.0);
        w
    }

    #[test]
    fn diamond_structure() {
        let w = diamond();
        assert!(w.validate().is_ok());
        assert_eq!(w.predecessors(), vec![vec![], vec![0], vec![0], vec![1, 2]]);
        assert_eq!(w.successors(), vec![vec![1, 2], vec![3], vec![3], vec![]]);
        assert_eq!(w.topological_order(), vec![0, 1, 2, 3]);
        assert_eq!(w.levels(), vec![0, 1, 1, 2]);
        assert_eq!(w.depth(), 3);
        assert_eq!(w.data_footprint(), 100.0);
        assert_eq!(w.total_work(), 10.0);
        // Heaviest chain is a -> c -> d.
        assert_eq!(w.critical_path_work(), 8.0);
    }

    #[test]
    fn external_inputs_are_producerless() {
        let mut w = diamond();
        let ext = w.add_file("raw-input", 99.0);
        w.add_input(0, ext);
        assert_eq!(w.input_files(), vec![4]);
    }

    #[test]
    fn duplicate_consumers_dedup_in_predecessors() {
        let mut w = Workflow::new("w");
        let a = w.add_task("a", 1.0);
        let b = w.add_task("b", 1.0);
        w.connect(a, b, "f1", 1.0);
        w.connect(a, b, "f2", 1.0);
        assert_eq!(w.predecessors()[b], vec![a]);
    }

    #[test]
    #[should_panic(expected = "already has a producer")]
    fn single_writer_rule() {
        let mut w = Workflow::new("w");
        let a = w.add_task("a", 1.0);
        let b = w.add_task("b", 1.0);
        let f = w.add_file("f", 1.0);
        w.add_output(a, f);
        w.add_output(b, f);
    }

    #[test]
    fn cycle_detection() {
        let mut w = Workflow::new("cyclic");
        let a = w.add_task("a", 1.0);
        let b = w.add_task("b", 1.0);
        w.connect(a, b, "ab", 1.0);
        // b -> a closes a cycle.
        let f = w.add_file("ba", 1.0);
        w.add_output(b, f);
        w.add_input(a, f);
        assert!(w.validate().unwrap_err().contains("cycle"));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn topological_order_panics_on_cycle() {
        let mut w = Workflow::new("cyclic");
        let a = w.add_task("a", 1.0);
        let b = w.add_task("b", 1.0);
        w.connect(a, b, "ab", 1.0);
        let f = w.add_file("ba", 1.0);
        w.add_output(b, f);
        w.add_input(a, f);
        w.topological_order();
    }

    #[test]
    fn validate_catches_duplicate_names() {
        let mut w = Workflow::new("w");
        w.add_task("same", 1.0);
        w.add_task("same", 1.0);
        assert!(w.validate().unwrap_err().contains("duplicate task name"));
    }

    #[test]
    fn empty_workflow_is_valid() {
        let w = Workflow::new("empty");
        assert!(w.validate().is_ok());
        assert_eq!(w.depth(), 0);
        assert!(w.topological_order().is_empty());
    }

    #[test]
    fn topological_order_is_deterministic_and_respects_deps() {
        let w = diamond();
        let order = w.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &t) in order.iter().enumerate() {
                p[t] = i;
            }
            p
        };
        for (t, preds) in w.predecessors().iter().enumerate() {
            for &p in preds {
                assert!(pos[p] < pos[t]);
            }
        }
    }
}
