//! Specification-based (uncalibrated) parameter values — the §5.4
//! baseline.
//!
//! The paper contrasts automated calibration with "what authors do when
//! they do not mention calibration": take the lowest-detail simulator and
//! set every parameter from the hardware specifications documented for
//! the platform (Chameleon Cloud node specs). Specs describe *peak*
//! hardware capability, not the effective performance a workflow
//! execution sees through the whole software stack — and they say nothing
//! about middleware overheads, which spec-driven users set to zero.

use crate::versions::SimulatorVersion;
use simcal::prelude::Calibration;

/// Parameter values a user would read off the platform's documentation:
/// 10 GbE NICs, NVMe-class storage, 2.8 GHz cores — and no overheads,
/// because no specification documents middleware behaviour.
pub fn spec_calibration(version: SimulatorVersion) -> Calibration {
    let space = version.parameter_space();
    let values: Vec<f64> = space
        .params()
        .iter()
        .map(|p| match p.name.as_str() {
            // 10 Gbit/s Ethernet => 1.25e9 bytes/s; datacenter latency.
            "net_bw" | "backbone_bw" => 1.25e9,
            "net_lat" | "backbone_lat" => 5e-5,
            // NVMe spec sheet: ~2 GB/s. I/O concurrency is documented
            // nowhere, so the simulator's conservative default (serial
            // I/O) is left in place -- the classic uncalibrated mistake.
            "submit_disk_bw" | "worker_disk_bw" => 2e9,
            "disk_concurrency" => 1.0,
            // 2.8 GHz core, read as 2.8e9 ops/s.
            "core_speed" => 2.8e9,
            // Specs say nothing about overheads: zero.
            "condor_cycle" | "condor_overhead" => 0.0,
            other => panic!("unexpected parameter {other}"),
        })
        .collect();
    Calibration::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::SimulatorVersion;

    #[test]
    fn spec_calibration_matches_space_dimension() {
        for v in SimulatorVersion::all() {
            let c = spec_calibration(v);
            assert_eq!(c.values.len(), v.parameter_space().dim(), "{}", v.label());
        }
    }

    #[test]
    fn spec_overheads_are_zero() {
        let v = SimulatorVersion::lowest_detail();
        let c = spec_calibration(v);
        let space = v.parameter_space();
        assert_eq!(space.value(&c, "core_speed"), 2.8e9);
    }
}
