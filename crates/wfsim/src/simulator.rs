//! The workflow simulator: executes a workflow on a submit-node + workers
//! platform at a configurable level of detail (paper §5.2).
//!
//! The execution model mirrors the paper's Pegasus/HTCondor deployment:
//! the workflow's input data starts on the submit node's disk; workers run
//! tasks on their cores; all data moves between the submit node and the
//! workers (with optional worker-local storage reuse under
//! [`StorageModel::AllNodes`]); task starts go either directly to workers
//! or through an HTCondor-style negotiation-cycle service.
//!
//! One execution engine serves both the 12 candidate simulator versions
//! (via [`WorkflowSimulator`]) and the ground-truth emulator (which layers
//! extra hidden effects on top through the resolved model's noise fields).

use crate::versions::{ComputeModel, NetworkModel, SimulatorVersion, StorageModel};
use crate::workflow::{FileId, TaskId, Workflow};
use dessim::{ActivityKind, DiskId, Engine, LinkId, Platform};
use numeric::{lognormal, rng_from_seed};
use rand::Rng;
use simcal::prelude::Calibration;
use std::collections::{HashMap, VecDeque};

/// Result of simulating one workflow execution.
#[derive(Clone, Debug, PartialEq)]
pub struct SimOutput {
    /// Overall execution time (seconds).
    pub makespan: f64,
    /// Per-task execution times, indexed by [`TaskId`]: from assignment to
    /// a worker core until all outputs are stored and overheads paid.
    pub task_times: Vec<f64>,
    /// Discrete events the kernel processed: a deterministic measure of
    /// how much this level of detail costs to simulate.
    pub sim_events: u64,
}

/// Task-start overhead model.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OverheadModel {
    /// Constant startup delay before each task (no batching).
    Direct {
        /// Startup overhead in seconds.
        startup: f64,
    },
    /// HTCondor-style: task starts are released at periodic negotiation
    /// cycles; each task pays `pre` before staging and `post` after.
    Condor {
        /// Negotiation cycle period in seconds.
        cycle: f64,
        /// Pre-execution overhead in seconds.
        pre: f64,
        /// Post-execution overhead in seconds.
        post: f64,
    },
}

/// Hidden stochastic effects used only by the ground-truth emulator.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NoiseModel {
    /// Lognormal sigma on per-task compute time.
    pub compute_sigma: f64,
    /// Relative jitter on overheads (uniform in `[1-j, 1+j]`).
    pub overhead_jitter: f64,
    /// Maximum extra scheduling delay per task (uniform in `[0, s]`).
    pub sched_jitter: f64,
    /// Noise seed.
    pub seed: u64,
}

/// Fully-resolved simulation model: one concrete value per knob.
#[derive(Clone, Debug)]
pub(crate) struct ResolvedModel {
    pub network: NetworkModel,
    pub backbone_bw: f64,
    pub backbone_lat: f64,
    pub net_bw: f64,
    pub net_lat: f64,
    pub storage: StorageModel,
    pub submit_disk_bw: f64,
    pub worker_disk_bw: f64,
    pub disk_concurrency: u32,
    pub core_speed: f64,
    pub overhead: OverheadModel,
    pub noise: Option<NoiseModel>,
}

/// Map a calibration (in `version`'s parameter space) to a resolved model.
pub(crate) fn resolve(version: SimulatorVersion, calib: &Calibration) -> ResolvedModel {
    let space = version.parameter_space();
    let get = |name: &str| space.value(calib, name);
    let (backbone_bw, backbone_lat) = match version.network {
        NetworkModel::SharedDedicated => (get("backbone_bw"), get("backbone_lat")),
        _ => (0.0, 0.0),
    };
    let worker_disk_bw = match version.storage {
        StorageModel::AllNodes => get("worker_disk_bw"),
        StorageModel::SubmitOnly => 0.0,
    };
    let overhead = match version.compute {
        ComputeModel::Direct => OverheadModel::Direct { startup: 0.0 },
        ComputeModel::HtCondor => OverheadModel::Condor {
            cycle: get("condor_cycle"),
            pre: get("condor_overhead"),
            post: 0.0,
        },
    };
    ResolvedModel {
        network: version.network,
        backbone_bw,
        backbone_lat,
        net_bw: get("net_bw"),
        net_lat: get("net_lat"),
        storage: version.storage,
        submit_disk_bw: get("submit_disk_bw"),
        worker_disk_bw,
        disk_concurrency: get("disk_concurrency").round().max(1.0) as u32,
        core_speed: get("core_speed"),
        overhead,
        noise: None,
    }
}

/// A calibratable workflow simulator at one level of detail.
#[derive(Clone, Copy, Debug)]
pub struct WorkflowSimulator {
    /// The level-of-detail configuration.
    pub version: SimulatorVersion,
    /// Cores per worker node (48 on the paper's Chameleon deployment).
    pub cores_per_worker: u32,
}

impl WorkflowSimulator {
    /// A simulator with the paper's 48-core workers.
    pub fn new(version: SimulatorVersion) -> Self {
        Self {
            version,
            cores_per_worker: 48,
        }
    }

    /// Simulate `workflow` on `n_workers` workers under `calibration`
    /// (which must live in `self.version.parameter_space()`).
    pub fn simulate(
        &self,
        workflow: &Workflow,
        n_workers: usize,
        calibration: &Calibration,
    ) -> SimOutput {
        let model = resolve(self.version, calibration);
        execute(workflow, n_workers, self.cores_per_worker, &model)
    }
}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum Meta {
    /// HTCondor negotiation cycle tick.
    CondorCycle,
    /// Pre-task overhead finished; begin input staging.
    PreDone(TaskId),
    /// One stage of an input file's journey completed.
    StageIn {
        task: TaskId,
        file: FileId,
        step: StageStep,
    },
    /// Compute phase finished; begin output staging.
    ComputeDone(TaskId),
    /// One stage of an output file's journey completed.
    StageOut {
        task: TaskId,
        file: FileId,
        step: StageStep,
    },
    /// Post-task overhead finished; task is done.
    PostDone(TaskId),
}

#[derive(Clone, Copy, Debug)]
enum StageStep {
    /// Disk read at the source completed.
    ReadSrc,
    /// Network transfer completed.
    Transfer,
    /// Disk write at the destination completed.
    WriteDst,
}

struct Exec<'a> {
    workflow: &'a Workflow,
    model: &'a ResolvedModel,
    n_workers: usize,

    engine: Engine,
    next_tag: u64,
    meta: HashMap<u64, Meta>,

    submit_disk: DiskId,
    worker_disks: Vec<DiskId>,
    routes: Vec<Vec<LinkId>>,

    // Task state
    successors: Vec<Vec<TaskId>>,
    deps_remaining: Vec<usize>,
    inputs_remaining: Vec<usize>,
    outputs_remaining: Vec<usize>,
    assigned_worker: Vec<usize>,
    start_time: Vec<f64>,
    task_times: Vec<f64>,
    done: Vec<bool>,
    done_count: usize,

    // Scheduling state
    ready_queue: VecDeque<TaskId>,
    free_cores: Vec<u32>,
    cycle_timer_active: bool,

    // File locations
    at_worker: Vec<Vec<bool>>, // [file][worker]

    // Pre-drawn noise (ground-truth emulator only)
    work_mult: Vec<f64>,
    pre_mult: Vec<f64>,
    post_mult: Vec<f64>,
    sched_delay: Vec<f64>,
}

/// Execute `workflow` under a fully-resolved model.
pub(crate) fn execute(
    workflow: &Workflow,
    n_workers: usize,
    cores_per_worker: u32,
    model: &ResolvedModel,
) -> SimOutput {
    assert!(n_workers >= 1, "need at least one worker");
    let n_tasks = workflow.num_tasks();
    if n_tasks == 0 {
        return SimOutput {
            makespan: 0.0,
            task_times: Vec::new(),
            sim_events: 0,
        };
    }

    // Build the platform.
    let mut platform = Platform::new();
    let routes: Vec<Vec<LinkId>> = match model.network {
        NetworkModel::OneLink => {
            let l = platform.add_link(model.net_bw, model.net_lat);
            (0..n_workers).map(|_| vec![l]).collect()
        }
        NetworkModel::Star => (0..n_workers)
            .map(|_| vec![platform.add_link(model.net_bw, model.net_lat)])
            .collect(),
        NetworkModel::SharedDedicated => {
            let bb = platform.add_link(model.backbone_bw, model.backbone_lat);
            (0..n_workers)
                .map(|_| vec![bb, platform.add_link(model.net_bw, model.net_lat)])
                .collect()
        }
    };
    let submit_disk = platform.add_disk(model.submit_disk_bw, model.disk_concurrency);
    let worker_disks: Vec<DiskId> = match model.storage {
        StorageModel::AllNodes => (0..n_workers)
            .map(|_| platform.add_disk(model.worker_disk_bw, model.disk_concurrency))
            .collect(),
        StorageModel::SubmitOnly => Vec::new(),
    };

    // Pre-draw noise.
    let (work_mult, pre_mult, post_mult, sched_delay) = match &model.noise {
        Some(noise) => {
            let mut rng = rng_from_seed(noise.seed);
            let s = noise.compute_sigma;
            let work: Vec<f64> = (0..n_tasks)
                .map(|_| {
                    if s > 0.0 {
                        lognormal(&mut rng, -s * s / 2.0, s)
                    } else {
                        1.0
                    }
                })
                .collect();
            let j = noise.overhead_jitter;
            let pre: Vec<f64> = (0..n_tasks)
                .map(|_| 1.0 + j * (2.0 * rng.gen::<f64>() - 1.0))
                .collect();
            let post: Vec<f64> = (0..n_tasks)
                .map(|_| 1.0 + j * (2.0 * rng.gen::<f64>() - 1.0))
                .collect();
            let sched: Vec<f64> = (0..n_tasks)
                .map(|_| noise.sched_jitter * rng.gen::<f64>())
                .collect();
            (work, pre, post, sched)
        }
        None => (
            vec![1.0; n_tasks],
            vec![1.0; n_tasks],
            vec![1.0; n_tasks],
            vec![0.0; n_tasks],
        ),
    };

    let preds = workflow.predecessors();
    let mut exec = Exec {
        workflow,
        model,
        n_workers,
        engine: Engine::new(platform),
        next_tag: 0,
        meta: HashMap::new(),
        submit_disk,
        worker_disks,
        routes,
        successors: workflow.successors(),
        deps_remaining: preds.iter().map(|p| p.len()).collect(),
        inputs_remaining: vec![0; n_tasks],
        outputs_remaining: vec![0; n_tasks],
        assigned_worker: vec![usize::MAX; n_tasks],
        start_time: vec![0.0; n_tasks],
        task_times: vec![0.0; n_tasks],
        done: vec![false; n_tasks],
        done_count: 0,
        ready_queue: VecDeque::new(),
        free_cores: vec![cores_per_worker; n_workers],
        cycle_timer_active: false,
        at_worker: vec![vec![false; n_workers]; workflow.files.len()],
        work_mult,
        pre_mult,
        post_mult,
        sched_delay,
    };
    exec.run()
}

impl<'a> Exec<'a> {
    fn add(&mut self, kind: ActivityKind, meta: Meta) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.meta.insert(tag, meta);
        self.engine.add_activity(kind, tag);
    }

    /// Release a batch of activities at the current instant — e.g. every
    /// input file of a task starting to stage at once — so the engine
    /// performs a single rate recomputation for the whole release.
    fn add_batch(&mut self, batch: Vec<(ActivityKind, Meta)>) {
        let tagged: Vec<(ActivityKind, u64)> = batch
            .into_iter()
            .map(|(kind, meta)| {
                let tag = self.next_tag;
                self.next_tag += 1;
                self.meta.insert(tag, meta);
                (kind, tag)
            })
            .collect();
        self.engine.add_activities(tagged);
    }

    fn run(&mut self) -> SimOutput {
        // Seed: entry tasks are ready.
        for t in 0..self.workflow.num_tasks() {
            if self.deps_remaining[t] == 0 {
                self.ready_queue.push_back(t);
            }
        }
        self.schedule();

        let mut makespan: f64 = 0.0;
        while self.done_count < self.workflow.num_tasks() {
            let completion = self
                .engine
                .step()
                .expect("engine drained before all tasks completed (scheduling deadlock)");
            let meta = self
                .meta
                .remove(&completion.tag)
                .expect("unknown activity tag");
            self.handle(meta, completion.time);
            makespan = makespan.max(completion.time);
        }
        SimOutput {
            makespan,
            task_times: self.task_times.clone(),
            sim_events: self.engine.events_processed(),
        }
    }

    /// Effective negotiation-cycle period (guarded against a zero value
    /// that would stall virtual time).
    fn effective_cycle(cycle: f64) -> f64 {
        cycle.max(1e-3)
    }

    /// Assign ready tasks to free cores according to the compute model.
    fn schedule(&mut self) {
        match self.model.overhead {
            OverheadModel::Direct { .. } => {
                while !self.ready_queue.is_empty() && self.total_free_cores() > 0 {
                    let t = self.ready_queue.pop_front().expect("non-empty queue");
                    self.assign(t);
                }
            }
            OverheadModel::Condor { cycle, .. } => {
                // Tasks wait for the next negotiation cycle.
                if !self.ready_queue.is_empty() && !self.cycle_timer_active {
                    let c = Self::effective_cycle(cycle);
                    let now = self.engine.time();
                    let mut delay = c - (now % c);
                    if delay < 1e-9 {
                        delay = c;
                    }
                    self.add(ActivityKind::timer(delay), Meta::CondorCycle);
                    self.cycle_timer_active = true;
                }
            }
        }
    }

    fn total_free_cores(&self) -> u32 {
        self.free_cores.iter().sum()
    }

    /// Put `t` on the worker with the most free cores and start its
    /// pre-task overhead.
    fn assign(&mut self, t: TaskId) {
        let worker = (0..self.n_workers)
            .max_by_key(|&w| self.free_cores[w])
            .expect("at least one worker");
        assert!(
            self.free_cores[worker] > 0,
            "assign called with no free core"
        );
        self.free_cores[worker] -= 1;
        self.assigned_worker[t] = worker;
        self.start_time[t] = self.engine.time();

        let pre = match self.model.overhead {
            OverheadModel::Direct { startup } => startup,
            OverheadModel::Condor { pre, .. } => pre,
        };
        let delay = pre * self.pre_mult[t] + self.sched_delay[t];
        self.add(ActivityKind::timer(delay.max(0.0)), Meta::PreDone(t));
    }

    fn handle(&mut self, meta: Meta, now: f64) {
        match meta {
            Meta::CondorCycle => {
                self.cycle_timer_active = false;
                while !self.ready_queue.is_empty() && self.total_free_cores() > 0 {
                    let t = self.ready_queue.pop_front().expect("non-empty queue");
                    self.assign(t);
                }
                // Tasks still waiting (for cores) get the next cycle.
                self.schedule();
            }
            Meta::PreDone(t) => self.start_staging_in(t),
            Meta::StageIn { task, file, step } => self.advance_stage_in(task, file, step),
            Meta::ComputeDone(t) => self.start_staging_out(t),
            Meta::StageOut { task, file, step } => self.advance_stage_out(task, file, step),
            Meta::PostDone(t) => self.finish_task(t, now),
        }
    }

    // ---- input staging ----

    fn start_staging_in(&mut self, t: TaskId) {
        let inputs = self.workflow.tasks[t].inputs.clone();
        self.inputs_remaining[t] = inputs.len();
        if inputs.is_empty() {
            self.start_compute(t);
            return;
        }
        let batch: Vec<(ActivityKind, Meta)> = inputs
            .into_iter()
            .map(|f| {
                let w = self.assigned_worker[t];
                let size = self.workflow.files[f].size;
                let local = self.model.storage == StorageModel::AllNodes && self.at_worker[f][w];
                let disk = if local {
                    self.worker_disks[w]
                } else {
                    self.submit_disk
                };
                // Read at the source; `advance_stage_in` routes the rest.
                (
                    ActivityKind::io(disk, size),
                    Meta::StageIn {
                        task: t,
                        file: f,
                        step: StageStep::ReadSrc,
                    },
                )
            })
            .collect();
        self.add_batch(batch);
    }

    fn advance_stage_in(&mut self, t: TaskId, f: FileId, step: StageStep) {
        let w = self.assigned_worker[t];
        let size = self.workflow.files[f].size;
        let local = self.model.storage == StorageModel::AllNodes && self.at_worker[f][w];
        match step {
            StageStep::ReadSrc => {
                if local {
                    // Local read: staging of this file is complete.
                    self.input_staged(t);
                } else {
                    self.add(
                        ActivityKind::flow(self.routes[w].clone(), size),
                        Meta::StageIn {
                            task: t,
                            file: f,
                            step: StageStep::Transfer,
                        },
                    );
                }
            }
            StageStep::Transfer => {
                if self.model.storage == StorageModel::AllNodes {
                    self.add(
                        ActivityKind::io(self.worker_disks[w], size),
                        Meta::StageIn {
                            task: t,
                            file: f,
                            step: StageStep::WriteDst,
                        },
                    );
                } else {
                    // Submit-only storage: data is consumed in-stream.
                    self.input_staged(t);
                }
            }
            StageStep::WriteDst => {
                self.at_worker[f][w] = true;
                self.input_staged(t);
            }
        }
    }

    fn input_staged(&mut self, t: TaskId) {
        self.inputs_remaining[t] -= 1;
        if self.inputs_remaining[t] == 0 {
            self.start_compute(t);
        }
    }

    // ---- compute ----

    fn start_compute(&mut self, t: TaskId) {
        let work = self.workflow.tasks[t].work * self.work_mult[t];
        self.add(
            ActivityKind::compute(self.model.core_speed, work),
            Meta::ComputeDone(t),
        );
    }

    // ---- output staging ----

    fn start_staging_out(&mut self, t: TaskId) {
        let outputs = self.workflow.tasks[t].outputs.clone();
        self.outputs_remaining[t] = outputs.len();
        if outputs.is_empty() {
            self.start_post(t);
            return;
        }
        let batch: Vec<(ActivityKind, Meta)> = outputs
            .into_iter()
            .map(|f| {
                let w = self.assigned_worker[t];
                let size = self.workflow.files[f].size;
                if self.model.storage == StorageModel::AllNodes {
                    // Write locally first; reuse by same-worker consumers.
                    (
                        ActivityKind::io(self.worker_disks[w], size),
                        Meta::StageOut {
                            task: t,
                            file: f,
                            step: StageStep::ReadSrc,
                        },
                    )
                } else {
                    // Stream straight to the submit node.
                    (
                        ActivityKind::flow(self.routes[w].clone(), size),
                        Meta::StageOut {
                            task: t,
                            file: f,
                            step: StageStep::Transfer,
                        },
                    )
                }
            })
            .collect();
        self.add_batch(batch);
    }

    fn advance_stage_out(&mut self, t: TaskId, f: FileId, step: StageStep) {
        let w = self.assigned_worker[t];
        let size = self.workflow.files[f].size;
        match step {
            StageStep::ReadSrc => {
                // Local write done: file now available worker-locally.
                self.at_worker[f][w] = true;
                self.add(
                    ActivityKind::flow(self.routes[w].clone(), size),
                    Meta::StageOut {
                        task: t,
                        file: f,
                        step: StageStep::Transfer,
                    },
                );
            }
            StageStep::Transfer => {
                self.add(
                    ActivityKind::io(self.submit_disk, size),
                    Meta::StageOut {
                        task: t,
                        file: f,
                        step: StageStep::WriteDst,
                    },
                );
            }
            StageStep::WriteDst => {
                self.output_staged(t);
            }
        }
    }

    fn output_staged(&mut self, t: TaskId) {
        self.outputs_remaining[t] -= 1;
        if self.outputs_remaining[t] == 0 {
            self.start_post(t);
        }
    }

    // ---- completion ----

    fn start_post(&mut self, t: TaskId) {
        let post = match self.model.overhead {
            OverheadModel::Direct { .. } => 0.0,
            OverheadModel::Condor { post, .. } => post,
        };
        self.add(
            ActivityKind::timer((post * self.post_mult[t]).max(0.0)),
            Meta::PostDone(t),
        );
    }

    fn finish_task(&mut self, t: TaskId, now: f64) {
        debug_assert!(!self.done[t], "task finished twice");
        self.done[t] = true;
        self.done_count += 1;
        self.task_times[t] = now - self.start_time[t];
        let w = self.assigned_worker[t];
        self.free_cores[w] += 1;

        // Unlock successors.
        let successors = std::mem::take(&mut self.successors[t]);
        for &s in &successors {
            self.deps_remaining[s] -= 1;
            if self.deps_remaining[s] == 0 {
                self.ready_queue.push_back(s);
            }
        }
        self.schedule();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, AppKind, WorkflowSpec};

    /// A fixed, plausible calibration for a version's space.
    fn calib_for(version: SimulatorVersion) -> Calibration {
        let space = version.parameter_space();
        let mut pairs: Vec<(&str, f64)> = Vec::new();
        for p in space.params() {
            let v = match p.name.as_str() {
                "net_bw" | "backbone_bw" => 1.25e9,
                "net_lat" | "backbone_lat" => 1e-4,
                "submit_disk_bw" | "worker_disk_bw" => 5e8,
                "disk_concurrency" => 8.0,
                "core_speed" => crate::generator::OPS_PER_REF_SECOND,
                "condor_cycle" => 2.0,
                "condor_overhead" => 1.0,
                other => panic!("unexpected parameter {other}"),
            };
            pairs.push((Box::leak(p.name.clone().into_boxed_str()), v));
        }
        space.calibration_from_pairs(&pairs)
    }

    fn small_workflow() -> Workflow {
        generate(&WorkflowSpec {
            app: AppKind::Forkjoin,
            num_tasks: 10,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 10e6,
            seed: 1,
        })
    }

    #[test]
    fn all_twelve_versions_run_and_agree_dimensionally() {
        let wf = small_workflow();
        // The generator jitters per-task work, so the compute lower bound
        // is the critical path of the *drawn* works, not 3 x the mean.
        let cp = wf.critical_path_work() / crate::generator::OPS_PER_REF_SECOND;
        assert!(cp > 2.0, "3 levels of ~1s tasks: {cp}");
        for version in SimulatorVersion::all() {
            let sim = WorkflowSimulator::new(version);
            let out = sim.simulate(&wf, 2, &calib_for(version));
            assert!(out.makespan > 0.0, "{}", version.label());
            assert_eq!(out.task_times.len(), 10, "{}", version.label());
            assert!(
                out.task_times.iter().all(|&t| t > 0.0),
                "{}",
                version.label()
            );
            // Makespan at least the critical path of compute times alone.
            assert!(
                out.makespan >= cp,
                "{}: {} < critical path {}",
                version.label(),
                out.makespan,
                cp
            );
        }
    }

    #[test]
    fn more_workers_never_slow_down_direct_execution() {
        let wf = generate(&WorkflowSpec {
            app: AppKind::Seismology,
            num_tasks: 60,
            work_per_task_secs: 2.0,
            data_footprint_bytes: 0.0,
            seed: 2,
        });
        let version = SimulatorVersion {
            network: NetworkModel::Star,
            storage: StorageModel::SubmitOnly,
            compute: ComputeModel::Direct,
        };
        let sim = WorkflowSimulator {
            version,
            cores_per_worker: 4,
        };
        let c = calib_for(version);
        let m1 = sim.simulate(&wf, 1, &c).makespan;
        let m4 = sim.simulate(&wf, 4, &c).makespan;
        assert!(m4 <= m1 * 1.01, "1 worker {m1}, 4 workers {m4}");
        assert!(m4 < m1 * 0.6, "parallel speedup expected: {m1} -> {m4}");
    }

    #[test]
    fn chain_workflow_is_fully_serial() {
        let wf = generate(&WorkflowSpec {
            app: AppKind::Chain,
            num_tasks: 5,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 0.0,
            seed: 3,
        });
        let version = SimulatorVersion::lowest_detail();
        let sim = WorkflowSimulator::new(version);
        let out = sim.simulate(&wf, 1, &calib_for(version));
        // Fully serial: the makespan covers at least every task's compute,
        // and per-task times sum to at least the makespan's compute content.
        let total_compute = wf.total_work() / crate::generator::OPS_PER_REF_SECOND;
        assert!(out.makespan >= total_compute, "makespan {}", out.makespan);
        let time_total: f64 = out.task_times.iter().sum();
        assert!(time_total >= total_compute, "task-time total {time_total}");
    }

    #[test]
    fn condor_batches_task_starts_at_cycles() {
        let wf = generate(&WorkflowSpec {
            app: AppKind::Forkjoin,
            num_tasks: 10,
            work_per_task_secs: 0.1,
            data_footprint_bytes: 0.0,
            seed: 4,
        });
        let direct_v = SimulatorVersion {
            network: NetworkModel::OneLink,
            storage: StorageModel::SubmitOnly,
            compute: ComputeModel::Direct,
        };
        let condor_v = SimulatorVersion {
            compute: ComputeModel::HtCondor,
            ..direct_v
        };
        // Zero overheads except the condor cycle: the cycle alone must
        // stretch the makespan (3 waves x up-to-5s waits).
        let direct_c = direct_v.parameter_space().calibration_from_pairs(&[
            ("net_bw", 1e9),
            ("net_lat", 0.0),
            ("submit_disk_bw", 1e9),
            ("disk_concurrency", 10.0),
            ("core_speed", crate::generator::OPS_PER_REF_SECOND),
        ]);
        let condor_c = condor_v.parameter_space().calibration_from_pairs(&[
            ("net_bw", 1e9),
            ("net_lat", 0.0),
            ("submit_disk_bw", 1e9),
            ("disk_concurrency", 10.0),
            ("core_speed", crate::generator::OPS_PER_REF_SECOND),
            ("condor_cycle", 5.0),
            ("condor_overhead", 0.0),
        ]);
        let md = WorkflowSimulator::new(direct_v)
            .simulate(&wf, 2, &direct_c)
            .makespan;
        let mc = WorkflowSimulator::new(condor_v)
            .simulate(&wf, 2, &condor_c)
            .makespan;
        assert!(
            mc > md + 10.0,
            "cycle batching should dominate: direct {md}, condor {mc}"
        );
        // Task starts are aligned to 5s multiples => makespan near one.
        assert!(mc >= 15.0, "three levels x 5s cycles: {mc}");
    }

    #[test]
    fn all_nodes_storage_reuses_local_files_on_one_worker() {
        // A chain on 1 worker: with AllNodes, intermediate files are read
        // locally; with SubmitOnly every input is re-fetched over the
        // network. Given a slow network and fast disks, AllNodes is faster.
        let wf = generate(&WorkflowSpec {
            app: AppKind::Chain,
            num_tasks: 8,
            work_per_task_secs: 0.0,
            data_footprint_bytes: 800e6,
            seed: 5,
        });
        let base = SimulatorVersion {
            network: NetworkModel::OneLink,
            storage: StorageModel::SubmitOnly,
            compute: ComputeModel::Direct,
        };
        let submit_only = base.parameter_space().calibration_from_pairs(&[
            ("net_bw", 1e8), // slow network
            ("net_lat", 0.0),
            ("submit_disk_bw", 1e10),
            ("disk_concurrency", 10.0),
            ("core_speed", 1e9),
        ]);
        let all_v = SimulatorVersion {
            storage: StorageModel::AllNodes,
            ..base
        };
        let all_nodes = all_v.parameter_space().calibration_from_pairs(&[
            ("net_bw", 1e8),
            ("net_lat", 0.0),
            ("submit_disk_bw", 1e10),
            ("worker_disk_bw", 1e10),
            ("disk_concurrency", 10.0),
            ("core_speed", 1e9),
        ]);
        let m_submit = WorkflowSimulator::new(base)
            .simulate(&wf, 1, &submit_only)
            .makespan;
        let m_all = WorkflowSimulator::new(all_v)
            .simulate(&wf, 1, &all_nodes)
            .makespan;
        // SubmitOnly pays: input transfer + output transfer per task.
        // AllNodes pays: output transfer only (inputs are local).
        assert!(
            m_all < m_submit * 0.7,
            "local reuse should halve network traffic: submit {m_submit}, all {m_all}"
        );
    }

    #[test]
    fn slower_network_increases_makespan_monotonically() {
        let wf = small_workflow();
        let version = SimulatorVersion::lowest_detail();
        let mk = |bw: f64| {
            let c = version.parameter_space().calibration_from_pairs(&[
                ("net_bw", bw),
                ("net_lat", 1e-4),
                ("submit_disk_bw", 1e10),
                ("disk_concurrency", 10.0),
                ("core_speed", 1e9),
            ]);
            WorkflowSimulator::new(version)
                .simulate(&wf, 2, &c)
                .makespan
        };
        let fast = mk(1e10);
        let mid = mk(1e8);
        let slow = mk(1e7);
        assert!(fast < mid && mid < slow, "{fast} < {mid} < {slow} violated");
    }

    #[test]
    fn simulation_is_deterministic() {
        let wf = small_workflow();
        let version = SimulatorVersion::highest_detail();
        let sim = WorkflowSimulator::new(version);
        let c = calib_for(version);
        let a = sim.simulate(&wf, 4, &c);
        let b = sim.simulate(&wf, 4, &c);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_footprint_workflow_still_pays_latency_and_compute() {
        let wf = generate(&WorkflowSpec {
            app: AppKind::Forkjoin,
            num_tasks: 10,
            work_per_task_secs: 1.0,
            data_footprint_bytes: 0.0,
            seed: 6,
        });
        let version = SimulatorVersion::lowest_detail();
        let out = WorkflowSimulator::new(version).simulate(&wf, 2, &calib_for(version));
        // Strictly above the compute critical path: zero-byte transfers
        // still pay network latency.
        let cp = wf.critical_path_work() / crate::generator::OPS_PER_REF_SECOND;
        assert!(
            out.makespan > cp,
            "critical path {} x latency: {}",
            cp,
            out.makespan
        );
    }

    #[test]
    fn task_times_sum_to_at_least_serial_content() {
        let wf = small_workflow();
        let version = SimulatorVersion::highest_detail();
        let out = WorkflowSimulator::new(version).simulate(&wf, 2, &calib_for(version));
        let compute_total = wf.total_work() / crate::generator::OPS_PER_REF_SECOND;
        let time_total: f64 = out.task_times.iter().sum();
        assert!(
            time_total > compute_total,
            "{time_total} vs {compute_total}"
        );
    }
}
