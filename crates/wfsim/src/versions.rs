//! The 12 simulator versions of case study #1 (paper Table 2).
//!
//! A simulator version is a choice of level of detail for three
//! components: the network (3 options), the storage system (2 options),
//! and the compute system (2 options) — `3 x 2 x 2 = 12` versions. Each
//! version induces its own calibration [`ParameterSpace`]; the highest
//! level of detail has 10 parameters, matching the paper.
//!
//! Parameter ranges follow §5.3.1: bandwidths and core speeds are `2^x`
//! for `20 <= x <= 40`, latencies in `[0, 10ms]`, overheads in `[0, 20s]`,
//! and the maximum number of concurrent disk I/O operations in `[1, 100]`.

use serde::{Deserialize, Serialize};
use simcal::prelude::{ParamKind, ParameterSpace};

/// Level of detail for simulating the network (Table 2, top).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkModel {
    /// A single shared network link between the submit node and all workers.
    OneLink,
    /// A dedicated link between the submit node and each worker.
    Star,
    /// A shared link out of the submit node, in series with a dedicated
    /// link to each worker.
    SharedDedicated,
}

/// Level of detail for simulating the storage system (Table 2, middle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageModel {
    /// Only the submit node has storage; all data is streamed to/from it.
    SubmitOnly,
    /// Submit node and every worker have storage; worker-local data is
    /// reused by later tasks on the same worker.
    AllNodes,
}

/// Level of detail for simulating the compute system (Table 2, bottom).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeModel {
    /// The WMS submits tasks directly to workers: no middleware is
    /// modelled, so tasks start as soon as they are scheduled.
    Direct,
    /// The WMS goes through HTCondor: task starts are batched at periodic
    /// negotiation cycles, and each task pays a per-task overhead.
    HtCondor,
}

/// One of the 12 simulator versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimulatorVersion {
    /// Network level of detail.
    pub network: NetworkModel,
    /// Storage level of detail.
    pub storage: StorageModel,
    /// Compute level of detail.
    pub compute: ComputeModel,
}

impl SimulatorVersion {
    /// All 12 versions, compute-major (matching Figure 2's layout:
    /// no-HTCondor half first, then HTCondor).
    pub fn all() -> Vec<SimulatorVersion> {
        let mut v = Vec::with_capacity(12);
        for compute in [ComputeModel::Direct, ComputeModel::HtCondor] {
            for network in [
                NetworkModel::OneLink,
                NetworkModel::Star,
                NetworkModel::SharedDedicated,
            ] {
                for storage in [StorageModel::SubmitOnly, StorageModel::AllNodes] {
                    v.push(SimulatorVersion {
                        network,
                        storage,
                        compute,
                    });
                }
            }
        }
        v
    }

    /// The highest level of detail (shared+dedicated network, storage on
    /// all nodes, HTCondor) — 10 parameters.
    pub fn highest_detail() -> SimulatorVersion {
        SimulatorVersion {
            network: NetworkModel::SharedDedicated,
            storage: StorageModel::AllNodes,
            compute: ComputeModel::HtCondor,
        }
    }

    /// The lowest level of detail (one link, submit-only storage, direct
    /// submission) — 5 parameters. Used by the §5.4 uncalibrated baseline.
    pub fn lowest_detail() -> SimulatorVersion {
        SimulatorVersion {
            network: NetworkModel::OneLink,
            storage: StorageModel::SubmitOnly,
            compute: ComputeModel::Direct,
        }
    }

    /// Short report label, e.g. `"onelink/all/condor"`.
    pub fn label(&self) -> String {
        let n = match self.network {
            NetworkModel::OneLink => "onelink",
            NetworkModel::Star => "star",
            NetworkModel::SharedDedicated => "shared+dedicated",
        };
        let s = match self.storage {
            StorageModel::SubmitOnly => "submit",
            StorageModel::AllNodes => "all",
        };
        let c = match self.compute {
            ComputeModel::Direct => "direct",
            ComputeModel::HtCondor => "condor",
        };
        format!("{n}/{s}/{c}")
    }

    /// The calibration parameter space this version exposes.
    pub fn parameter_space(&self) -> ParameterSpace {
        let bw = ParamKind::Exponential {
            lo_exp: 20.0,
            hi_exp: 40.0,
        };
        let lat = ParamKind::Continuous { lo: 0.0, hi: 0.010 };
        let overhead = ParamKind::Continuous { lo: 0.0, hi: 20.0 };
        let mut space = ParameterSpace::new();

        match self.network {
            NetworkModel::OneLink | NetworkModel::Star => {
                space.add("net_bw", bw);
                space.add("net_lat", lat);
            }
            NetworkModel::SharedDedicated => {
                space.add("backbone_bw", bw);
                space.add("backbone_lat", lat);
                space.add("net_bw", bw);
                space.add("net_lat", lat);
            }
        }
        match self.storage {
            StorageModel::SubmitOnly => {
                space.add("submit_disk_bw", bw);
                space.add("disk_concurrency", ParamKind::Integer { lo: 1, hi: 100 });
            }
            StorageModel::AllNodes => {
                space.add("submit_disk_bw", bw);
                space.add("worker_disk_bw", bw);
                space.add("disk_concurrency", ParamKind::Integer { lo: 1, hi: 100 });
            }
        }
        match self.compute {
            ComputeModel::Direct => {
                space.add("core_speed", bw);
            }
            ComputeModel::HtCondor => {
                space.add("core_speed", bw);
                space.add("condor_cycle", overhead);
                space.add("condor_overhead", overhead);
            }
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_twelve_distinct_versions() {
        let all = SimulatorVersion::all();
        assert_eq!(all.len(), 12);
        let mut labels: Vec<String> = all.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn highest_detail_has_ten_parameters() {
        assert_eq!(
            SimulatorVersion::highest_detail().parameter_space().dim(),
            10
        );
    }

    #[test]
    fn lowest_detail_has_five_parameters() {
        assert_eq!(SimulatorVersion::lowest_detail().parameter_space().dim(), 5);
    }

    #[test]
    fn parameter_counts_per_component() {
        // Network: 2 / 2 / 4; storage: 2 / 3; compute: 1 / 3.
        let dims: Vec<usize> = SimulatorVersion::all()
            .iter()
            .map(|v| v.parameter_space().dim())
            .collect();
        assert_eq!(*dims.iter().min().unwrap(), 5);
        assert_eq!(*dims.iter().max().unwrap(), 10);
    }

    #[test]
    fn figure2_ordering_is_compute_major() {
        let all = SimulatorVersion::all();
        assert!(all[..6].iter().all(|v| v.compute == ComputeModel::Direct));
        assert!(all[6..].iter().all(|v| v.compute == ComputeModel::HtCondor));
    }

    #[test]
    fn every_space_has_core_speed() {
        for v in SimulatorVersion::all() {
            assert!(
                v.parameter_space().index_of("core_speed").is_some(),
                "{}",
                v.label()
            );
        }
    }
}
