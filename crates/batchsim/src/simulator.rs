//! The batch-scheduling simulator: EASY backfilling on a homogeneous
//! cluster, with configurable levels of detail for the scheduler-overhead
//! model and the job-runtime model.
//!
//! Both the candidate simulators and the ground-truth emulator run the
//! same EASY backfilling algorithm (like Alea and Batsim do); the levels
//! of detail differ in what *platform behaviour* is modelled around it,
//! exactly as in the paper's two case studies.

use crate::versions::{BatchVersion, OverheadDetail, RuntimeDetail};
use crate::workload::Job;
use dessim::{ActivityKind, Engine, Platform};
use numeric::{lognormal, rng_from_seed};
use serde::{Deserialize, Serialize};
use simcal::prelude::Calibration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of simulating one workload execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchOutput {
    /// Time the last job finished (s).
    pub makespan: f64,
    /// Per-job turnaround times: completion minus submission (s).
    pub turnarounds: Vec<f64>,
    /// Discrete events the kernel processed: a deterministic measure of
    /// how much this level of detail costs to simulate.
    pub sim_events: u64,
}

/// Fully-resolved model (one value per knob).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ResolvedBatch {
    /// Node speed: work units per second.
    pub node_speed: f64,
    /// Runtime inflation per unit of cluster utilization at job start
    /// (0 = no interference modelled).
    pub contention_coeff: f64,
    /// Scheduling-pass period (0 = scheduler reacts instantly).
    pub sched_cycle: f64,
    /// Per-job dispatch overhead added before execution.
    pub dispatch_overhead: f64,
    /// Ground-truth-only lognormal sigma on job runtimes.
    pub noise_sigma: f64,
    /// Ground-truth-only noise seed.
    pub noise_seed: u64,
}

/// Map a calibration in `version`'s space to a resolved model.
pub(crate) fn resolve(version: BatchVersion, calib: &Calibration) -> ResolvedBatch {
    let space = version.parameter_space();
    let get = |name: &str| space.value(calib, name);
    ResolvedBatch {
        node_speed: get("node_speed"),
        contention_coeff: match version.runtime {
            RuntimeDetail::Contention => get("contention_coeff"),
            RuntimeDetail::Proportional => 0.0,
        },
        sched_cycle: match version.overhead {
            OverheadDetail::Cycle => get("sched_cycle"),
            OverheadDetail::Instant => 0.0,
        },
        dispatch_overhead: match version.overhead {
            OverheadDetail::Cycle => get("dispatch_overhead"),
            OverheadDetail::Instant => 0.0,
        },
        noise_sigma: 0.0,
        noise_seed: 0,
    }
}

/// A calibratable batch-scheduling simulator at one level of detail.
#[derive(Clone, Copy, Debug)]
pub struct BatchSimulator {
    /// The level-of-detail configuration.
    pub version: BatchVersion,
    /// Cluster size in nodes.
    pub total_nodes: u32,
}

impl BatchSimulator {
    /// A simulator of a `total_nodes`-node cluster.
    pub fn new(version: BatchVersion, total_nodes: u32) -> Self {
        assert!(total_nodes > 0, "cluster needs nodes");
        Self {
            version,
            total_nodes,
        }
    }

    /// Simulate `jobs` (sorted by submission) under `calibration`.
    pub fn simulate(&self, jobs: &[Job], calibration: &Calibration) -> BatchOutput {
        execute(jobs, self.total_nodes, &resolve(self.version, calibration))
    }
}

#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Event-driven EASY-backfilling execution.
///
/// Events (job arrivals, job completions, scheduler cycle ticks) live in a
/// [`dessim::Engine`] as absolute-deadline [`ActivityKind::TimerAt`]
/// activities — arrivals enter as one up-front [`Engine::add_activities`]
/// batch — while the EASY state machine (FIFO queue, running-set heap for
/// shadow-time queries) stays local. All events at one instant are drained
/// via [`Engine::peek_time`] so a single scheduling pass covers them.
pub(crate) fn execute(jobs: &[Job], total_nodes: u32, model: &ResolvedBatch) -> BatchOutput {
    assert!(
        jobs.iter().all(|j| j.nodes <= total_nodes),
        "a job requests more nodes than the cluster has"
    );
    let n = jobs.len();
    if n == 0 {
        return BatchOutput {
            makespan: 0.0,
            turnarounds: Vec::new(),
            sim_events: 0,
        };
    }

    // Pre-drawn runtime noise (ground-truth emulator only).
    let noise: Vec<f64> = if model.noise_sigma > 0.0 {
        let mut rng = rng_from_seed(model.noise_seed);
        let s = model.noise_sigma;
        (0..n)
            .map(|_| lognormal(&mut rng, -s * s / 2.0, s))
            .collect()
    } else {
        vec![1.0; n]
    };

    let mut sim = Sim {
        jobs,
        model,
        noise,
        total_nodes,
        engine: Engine::new(Platform::new()),
        free: total_nodes,
        queue: Vec::new(),
        running: BinaryHeap::new(),
        end_time: vec![f64::NAN; n],
        makespan: 0.0,
        next_arrival: 0,
        completed: 0,
        // A scheduling pass is useful only after an arrival or a
        // completion; tracking this lets cycle ticks jump over idle
        // periods, which keeps the event count bounded by the number of
        // state changes even when a calibration proposes a microscopic
        // cycle period.
        state_changed: true,
        pending_cycle: None,
        next_cycle_tag: 2 * n as u64,
    };
    sim.run();

    let turnarounds: Vec<f64> = jobs
        .iter()
        .zip(&sim.end_time)
        .map(|(j, &e)| {
            debug_assert!(e.is_finite(), "every job must have finished");
            e - j.submit_time
        })
        .collect();
    BatchOutput {
        makespan: sim.makespan,
        turnarounds,
        sim_events: sim.engine.events_processed(),
    }
}

/// EASY-backfilling state machine over a [`dessim::Engine`] event queue.
///
/// Tag scheme: `[0, n)` completion of job `tag`; `[n, 2n)` arrival of job
/// `tag - n`; `>= 2n` a scheduler cycle tick.
struct Sim<'a> {
    jobs: &'a [Job],
    model: &'a ResolvedBatch,
    noise: Vec<f64>,
    total_nodes: u32,
    engine: Engine,
    free: u32,
    /// FIFO queue of waiting jobs.
    queue: Vec<usize>,
    /// (end_time, job, nodes) of running jobs, for shadow-time queries.
    running: BinaryHeap<Reverse<(OrdF64, usize, u32)>>,
    end_time: Vec<f64>,
    makespan: f64,
    next_arrival: usize,
    completed: usize,
    state_changed: bool,
    pending_cycle: Option<f64>,
    next_cycle_tag: u64,
}

impl Sim<'_> {
    /// Start job `j` at `start` (dispatch overhead included here).
    fn start_job(&mut self, j: usize, start: f64) {
        let job = &self.jobs[j];
        // Utilization-dependent runtime inflation (interference model).
        let utilization = 1.0 - self.free as f64 / self.total_nodes as f64;
        let runtime = job.work / self.model.node_speed
            * (1.0 + self.model.contention_coeff * utilization)
            * self.noise[j];
        let end = start + self.model.dispatch_overhead + runtime;
        self.free -= job.nodes;
        self.running.push(Reverse((OrdF64(end), j, job.nodes)));
        self.end_time[j] = end;
        self.makespan = self.makespan.max(end);
        self.engine
            .add_activity(ActivityKind::timer_at(end), j as u64);
    }

    /// EASY backfilling pass at time `now` over the FIFO queue.
    fn schedule(&mut self, now: f64) {
        loop {
            let Some(&head) = self.queue.first() else {
                return;
            };
            if self.jobs[head].nodes <= self.free {
                self.queue.remove(0);
                self.start_job(head, now);
                continue;
            }
            // Head does not fit: compute its reservation (shadow time) from
            // the walltime-estimate end times of running jobs, then
            // backfill jobs that cannot delay it.
            let mut releases: Vec<(f64, u32)> = self
                .running
                .iter()
                .map(|Reverse((OrdF64(end), _, nodes))| (*end, *nodes))
                .collect();
            releases.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut avail = self.free;
            let mut shadow_time = f64::INFINITY;
            for (end, nodes) in &releases {
                avail += nodes;
                if avail >= self.jobs[head].nodes {
                    shadow_time = *end;
                    break;
                }
            }
            // Nodes still free at the shadow time once the head starts.
            let extra = avail.saturating_sub(self.jobs[head].nodes);

            let mut backfilled = false;
            let mut i = 1;
            while i < self.queue.len() {
                let j = self.queue[i];
                let fits_now = self.jobs[j].nodes <= self.free;
                let cannot_delay_head = now + self.jobs[j].walltime_estimate <= shadow_time
                    || self.jobs[j].nodes <= extra.min(self.free);
                if fits_now && cannot_delay_head {
                    self.queue.remove(i);
                    self.start_job(j, now);
                    backfilled = true;
                } else {
                    i += 1;
                }
            }
            if !backfilled {
                return;
            }
            // A backfill may have freed nothing, but utilization changed;
            // loop to re-check the head (it still cannot fit) and stop.
            if self.jobs[head].nodes > self.free {
                return;
            }
        }
    }

    /// Apply one engine event; returns whether it was a cycle tick.
    fn handle_event(&mut self, tag: u64, now: f64) -> bool {
        let n = self.jobs.len();
        let tag = tag as usize;
        if tag < n {
            // Job completion. Completions fire in end-time order, so the
            // running-set minimum is an entry ending at this instant.
            let Reverse((OrdF64(end), _, nodes)) = self
                .running
                .pop()
                .expect("completion event with empty running set");
            debug_assert!(
                end <= now + 1e-9,
                "completion at {now} but earliest end is {end}"
            );
            self.free += nodes;
            self.completed += 1;
            self.state_changed = true;
            false
        } else if tag < 2 * n {
            self.queue.push(tag - n);
            self.next_arrival += 1;
            self.state_changed = true;
            false
        } else {
            true
        }
    }

    fn run(&mut self) {
        let n = self.jobs.len();
        // All arrivals enter the engine as one batch of absolute timers.
        let arrivals: Vec<(ActivityKind, u64)> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| (ActivityKind::timer_at(job.submit_time), (n + j) as u64))
            .collect();
        self.engine.add_activities(arrivals);

        // Cycle-aligned scheduling: passes happen at multiples of the
        // period (guarded against a zero period stalling virtual time).
        let cycle = if self.model.sched_cycle > 0.0 {
            Some(self.model.sched_cycle.max(1e-3))
        } else {
            None
        };

        while self.completed < n {
            let c = self
                .engine
                .step()
                .unwrap_or_else(|| panic!("no events but {} jobs incomplete", n - self.completed));
            let now = c.time;
            let mut saw_cycle_tick = self.handle_event(c.tag, now);
            // Drain every event at this instant (absolute timers make the
            // comparison exact) so one scheduling pass covers them all.
            while self.engine.peek_time().is_some_and(|t| t <= now) {
                let c = self.engine.step().expect("peeked event");
                saw_cycle_tick |= self.handle_event(c.tag, now);
            }

            match cycle {
                None => self.schedule(now),
                Some(cyc) => {
                    if saw_cycle_tick {
                        self.pending_cycle = None;
                        if self.state_changed {
                            self.schedule(now);
                            self.state_changed = false;
                        }
                    }
                    if !self.queue.is_empty() && self.pending_cycle.is_none() {
                        // With nothing new to schedule, the next useful tick
                        // is the first boundary at or after the next state
                        // change.
                        let t_arr = self
                            .jobs
                            .get(self.next_arrival)
                            .map(|j| j.submit_time)
                            .unwrap_or(f64::INFINITY);
                        let t_done = self
                            .running
                            .peek()
                            .map(|Reverse((OrdF64(e), _, _))| *e)
                            .unwrap_or(f64::INFINITY);
                        let base = if self.state_changed {
                            now
                        } else {
                            t_arr.min(t_done)
                        };
                        assert!(
                            base.is_finite(),
                            "queued jobs but no future event can free resources"
                        );
                        let mut boundary = (base / cyc).ceil() * cyc;
                        if boundary <= now {
                            boundary = ((now / cyc).floor() + 1.0) * cyc;
                        }
                        self.engine
                            .add_activity(ActivityKind::timer_at(boundary), self.next_cycle_tag);
                        self.next_cycle_tag += 1;
                        self.pending_cycle = Some(boundary);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::BatchVersion;
    use crate::workload::{generate, WorkloadSpec};

    fn resolved(speed: f64, cycle: f64, dispatch: f64, contention: f64) -> ResolvedBatch {
        ResolvedBatch {
            node_speed: speed,
            contention_coeff: contention,
            sched_cycle: cycle,
            dispatch_overhead: dispatch,
            noise_sigma: 0.0,
            noise_seed: 0,
        }
    }

    fn job(submit: f64, nodes: u32, work: f64, estimate: f64) -> Job {
        Job {
            submit_time: submit,
            nodes,
            work,
            walltime_estimate: estimate,
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let jobs = vec![job(5.0, 2, 100.0, 200.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        assert!((out.makespan - 105.0).abs() < 1e-9);
        assert!((out.turnarounds[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_when_cluster_is_full() {
        // Two 4-node jobs on a 4-node cluster: strictly serial.
        let jobs = vec![job(0.0, 4, 100.0, 150.0), job(0.0, 4, 100.0, 150.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        assert!((out.makespan - 200.0).abs() < 1e-9);
        assert!((out.turnarounds[1] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn easy_backfills_a_small_job_that_cannot_delay_the_head() {
        // t=0: A (3 nodes, 100s) starts on a 4-node cluster.
        // B (4 nodes) must wait for A => shadow time 100.
        // C (1 node, estimate 50s <= shadow) backfills immediately.
        let jobs = vec![
            job(0.0, 3, 100.0, 120.0),
            job(1.0, 4, 50.0, 60.0),
            job(2.0, 1, 40.0, 50.0),
        ];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        // C ends at 2+40 = 42 (backfilled), B starts at 100.
        assert!(
            (out.turnarounds[2] - 40.0).abs() < 1e-9,
            "C {:?}",
            out.turnarounds
        );
        assert!(
            (out.turnarounds[1] - (150.0 - 1.0)).abs() < 1e-9,
            "B {:?}",
            out.turnarounds
        );
    }

    #[test]
    fn backfill_never_delays_the_head_job() {
        // C's estimate exceeds the shadow time and would use the head's
        // nodes: it must NOT backfill.
        let jobs = vec![
            job(0.0, 3, 100.0, 120.0),
            job(1.0, 4, 50.0, 60.0),
            job(2.0, 1, 500.0, 600.0), // too long to backfill
        ];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        // B starts when A ends (t=100); C runs after B (1-node slot opens
        // only after B, since B takes the whole cluster).
        assert!(
            (out.turnarounds[1] - 149.0).abs() < 1e-9,
            "B {:?}",
            out.turnarounds
        );
        assert!(
            out.turnarounds[2] > 500.0,
            "C must wait: {:?}",
            out.turnarounds
        );
    }

    #[test]
    fn scheduling_cycle_delays_starts_to_boundaries() {
        let jobs = vec![job(5.0, 1, 10.0, 20.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 30.0, 0.0, 0.0));
        // Arrival at 5; first cycle boundary after 5 is 30.
        assert!(
            (out.makespan - 40.0).abs() < 1e-9,
            "makespan {}",
            out.makespan
        );
    }

    #[test]
    fn dispatch_overhead_added_per_job() {
        let jobs = vec![job(0.0, 1, 10.0, 20.0), job(0.0, 1, 10.0, 20.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 1.0, 5.0, 0.0));
        // Both start at the first cycle (t=1), each pays 5s dispatch.
        assert!(
            (out.makespan - 16.0).abs() < 1e-9,
            "makespan {}",
            out.makespan
        );
    }

    #[test]
    fn contention_inflates_runtime_under_load() {
        let base = vec![job(0.0, 2, 100.0, 150.0), job(0.0, 2, 100.0, 150.0)];
        let no_contention = execute(&base, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        let contended = execute(&base, 4, &resolved(1.0, 0.0, 0.0, 1.0));
        assert!((no_contention.makespan - 100.0).abs() < 1e-9);
        // Second job starts when utilization is 0.5 -> inflated by 1.5x.
        assert!(
            contended.makespan > 125.0,
            "contended {}",
            contended.makespan
        );
    }

    #[test]
    fn faster_nodes_shorten_everything() {
        let jobs = generate(&WorkloadSpec {
            num_jobs: 40,
            ..Default::default()
        });
        let slow = execute(&jobs, 32, &resolved(0.5, 0.0, 0.0, 0.0));
        let fast = execute(&jobs, 32, &resolved(2.0, 0.0, 0.0, 0.0));
        assert!(fast.makespan < slow.makespan);
        let t_slow: f64 = slow.turnarounds.iter().sum();
        let t_fast: f64 = fast.turnarounds.iter().sum();
        assert!(t_fast < t_slow);
    }

    #[test]
    fn all_jobs_complete_and_turnarounds_cover_runtimes() {
        let jobs = generate(&WorkloadSpec {
            num_jobs: 200,
            seed: 9,
            ..Default::default()
        });
        let out = execute(&jobs, 64, &resolved(1.0, 30.0, 2.0, 0.5));
        assert_eq!(out.turnarounds.len(), 200);
        for (j, t) in jobs.iter().zip(&out.turnarounds) {
            assert!(*t >= j.work / 1.0 - 1e-9, "turnaround below runtime");
        }
    }

    #[test]
    fn simulator_api_is_deterministic() {
        let jobs = generate(&WorkloadSpec {
            num_jobs: 60,
            seed: 2,
            ..Default::default()
        });
        let version = BatchVersion::highest_detail();
        let space = version.parameter_space();
        let calib = space.denormalize(&vec![0.5; space.dim()]);
        let sim = BatchSimulator::new(version, 32);
        assert_eq!(sim.simulate(&jobs, &calib), sim.simulate(&jobs, &calib));
    }

    #[test]
    #[should_panic(expected = "more nodes than the cluster")]
    fn oversized_job_rejected() {
        let jobs = vec![job(0.0, 8, 1.0, 2.0)];
        execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
    }
}
