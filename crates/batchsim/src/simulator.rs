//! The batch-scheduling simulator: EASY backfilling on a homogeneous
//! cluster, with configurable levels of detail for the scheduler-overhead
//! model and the job-runtime model.
//!
//! Both the candidate simulators and the ground-truth emulator run the
//! same EASY backfilling algorithm (like Alea and Batsim do); the levels
//! of detail differ in what *platform behaviour* is modelled around it,
//! exactly as in the paper's two case studies.

use crate::versions::{BatchVersion, OverheadDetail, RuntimeDetail};
use crate::workload::Job;
use numeric::{lognormal, rng_from_seed};
use serde::{Deserialize, Serialize};
use simcal::prelude::Calibration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of simulating one workload execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchOutput {
    /// Time the last job finished (s).
    pub makespan: f64,
    /// Per-job turnaround times: completion minus submission (s).
    pub turnarounds: Vec<f64>,
}

/// Fully-resolved model (one value per knob).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ResolvedBatch {
    /// Node speed: work units per second.
    pub node_speed: f64,
    /// Runtime inflation per unit of cluster utilization at job start
    /// (0 = no interference modelled).
    pub contention_coeff: f64,
    /// Scheduling-pass period (0 = scheduler reacts instantly).
    pub sched_cycle: f64,
    /// Per-job dispatch overhead added before execution.
    pub dispatch_overhead: f64,
    /// Ground-truth-only lognormal sigma on job runtimes.
    pub noise_sigma: f64,
    /// Ground-truth-only noise seed.
    pub noise_seed: u64,
}

/// Map a calibration in `version`'s space to a resolved model.
pub(crate) fn resolve(version: BatchVersion, calib: &Calibration) -> ResolvedBatch {
    let space = version.parameter_space();
    let get = |name: &str| space.value(calib, name);
    ResolvedBatch {
        node_speed: get("node_speed"),
        contention_coeff: match version.runtime {
            RuntimeDetail::Contention => get("contention_coeff"),
            RuntimeDetail::Proportional => 0.0,
        },
        sched_cycle: match version.overhead {
            OverheadDetail::Cycle => get("sched_cycle"),
            OverheadDetail::Instant => 0.0,
        },
        dispatch_overhead: match version.overhead {
            OverheadDetail::Cycle => get("dispatch_overhead"),
            OverheadDetail::Instant => 0.0,
        },
        noise_sigma: 0.0,
        noise_seed: 0,
    }
}

/// A calibratable batch-scheduling simulator at one level of detail.
#[derive(Clone, Copy, Debug)]
pub struct BatchSimulator {
    /// The level-of-detail configuration.
    pub version: BatchVersion,
    /// Cluster size in nodes.
    pub total_nodes: u32,
}

impl BatchSimulator {
    /// A simulator of a `total_nodes`-node cluster.
    pub fn new(version: BatchVersion, total_nodes: u32) -> Self {
        assert!(total_nodes > 0, "cluster needs nodes");
        Self { version, total_nodes }
    }

    /// Simulate `jobs` (sorted by submission) under `calibration`.
    pub fn simulate(&self, jobs: &[Job], calibration: &Calibration) -> BatchOutput {
        execute(jobs, self.total_nodes, &resolve(self.version, calibration))
    }
}

#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Event-driven EASY-backfilling execution.
pub(crate) fn execute(jobs: &[Job], total_nodes: u32, model: &ResolvedBatch) -> BatchOutput {
    assert!(
        jobs.iter().all(|j| j.nodes <= total_nodes),
        "a job requests more nodes than the cluster has"
    );
    let n = jobs.len();
    let mut end_time = vec![f64::NAN; n];
    if n == 0 {
        return BatchOutput { makespan: 0.0, turnarounds: Vec::new() };
    }

    // Pre-drawn runtime noise (ground-truth emulator only).
    let noise: Vec<f64> = if model.noise_sigma > 0.0 {
        let mut rng = rng_from_seed(model.noise_seed);
        let s = model.noise_sigma;
        (0..n).map(|_| lognormal(&mut rng, -s * s / 2.0, s)).collect()
    } else {
        vec![1.0; n]
    };

    let mut free = total_nodes;
    let mut queue: Vec<usize> = Vec::new();
    // (end_time, job, nodes) of running jobs.
    let mut running: BinaryHeap<Reverse<(OrdF64, usize, u32)>> = BinaryHeap::new();
    let mut next_arrival = 0usize;
    let mut makespan = 0.0f64;

    // Start a job at `start` (dispatch overhead included by the caller).
    let start_job = |j: usize,
                     start: f64,
                     free: &mut u32,
                     running: &mut BinaryHeap<Reverse<(OrdF64, usize, u32)>>,
                     end_time: &mut [f64],
                     makespan: &mut f64| {
        let job = &jobs[j];
        // Utilization-dependent runtime inflation (interference model).
        let utilization = 1.0 - *free as f64 / total_nodes as f64;
        let runtime = jobs[j].work / model.node_speed
            * (1.0 + model.contention_coeff * utilization)
            * noise[j];
        let end = start + model.dispatch_overhead + runtime;
        *free -= job.nodes;
        running.push(Reverse((OrdF64(end), j, job.nodes)));
        end_time[j] = end;
        *makespan = makespan.max(end);
    };

    // EASY backfilling pass at time `now` over the FIFO queue.
    let schedule = |now: f64,
                    free: &mut u32,
                    queue: &mut Vec<usize>,
                    running: &mut BinaryHeap<Reverse<(OrdF64, usize, u32)>>,
                    end_time: &mut [f64],
                    makespan: &mut f64| {
        loop {
            let Some(&head) = queue.first() else { return };
            if jobs[head].nodes <= *free {
                queue.remove(0);
                start_job(head, now, free, running, end_time, makespan);
                continue;
            }
            // Head does not fit: compute its reservation (shadow time) from
            // the walltime-estimate end times of running jobs, then
            // backfill jobs that cannot delay it.
            let mut releases: Vec<(f64, u32)> = running
                .iter()
                .map(|Reverse((OrdF64(end), _, nodes))| (*end, *nodes))
                .collect();
            releases.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut avail = *free;
            let mut shadow_time = f64::INFINITY;
            for (end, nodes) in &releases {
                avail += nodes;
                if avail >= jobs[head].nodes {
                    shadow_time = *end;
                    break;
                }
            }
            // Nodes still free at the shadow time once the head starts.
            let extra = avail.saturating_sub(jobs[head].nodes);

            let mut backfilled = false;
            let mut i = 1;
            while i < queue.len() {
                let j = queue[i];
                let fits_now = jobs[j].nodes <= *free;
                let cannot_delay_head = now + jobs[j].walltime_estimate <= shadow_time
                    || jobs[j].nodes <= extra.min(*free);
                if fits_now && cannot_delay_head {
                    queue.remove(i);
                    start_job(j, now, free, running, end_time, makespan);
                    backfilled = true;
                } else {
                    i += 1;
                }
            }
            if !backfilled {
                return;
            }
            // A backfill may have freed nothing, but utilization changed;
            // loop to re-check the head (it still cannot fit) and stop.
            if jobs[head].nodes > *free {
                return;
            }
        }
    };

    // Cycle-aligned scheduling: passes happen at multiples of the period.
    let cycle = if model.sched_cycle > 0.0 { Some(model.sched_cycle.max(1e-3)) } else { None };
    let next_cycle_after = |t: f64, c: f64| {
        let k = (t / c).floor() + 1.0;
        k * c
    };
    let mut pending_cycle: Option<f64> = None;
    // A scheduling pass is useful only after an arrival or a completion;
    // tracking this lets cycle ticks jump over idle periods, which keeps
    // the event count bounded by the number of state changes even when a
    // calibration proposes a microscopic cycle period.
    let mut state_changed = true;

    let mut completed = 0usize;
    while completed < n {
        // Next event time.
        let t_arr = jobs.get(next_arrival).map(|j| j.submit_time).unwrap_or(f64::INFINITY);
        let t_done = running.peek().map(|Reverse((OrdF64(e), _, _))| *e).unwrap_or(f64::INFINITY);
        let t_cyc = pending_cycle.unwrap_or(f64::INFINITY);
        let t = t_arr.min(t_done).min(t_cyc);
        assert!(t.is_finite(), "no events but {} jobs incomplete", n - completed);
        let now = t;

        // Process arrivals at t.
        while next_arrival < n && jobs[next_arrival].submit_time <= now {
            queue.push(next_arrival);
            next_arrival += 1;
            state_changed = true;
        }
        // Process completions at t.
        while let Some(Reverse((OrdF64(e), _, _))) = running.peek() {
            if *e > now {
                break;
            }
            let Reverse((_, _, nodes)) = running.pop().expect("peeked");
            free += nodes;
            completed += 1;
            state_changed = true;
        }

        match cycle {
            None => {
                schedule(now, &mut free, &mut queue, &mut running, &mut end_time, &mut makespan);
            }
            Some(c) => {
                let is_cycle_tick = pending_cycle.is_some_and(|pc| pc <= now);
                if is_cycle_tick {
                    pending_cycle = None;
                    if state_changed {
                        schedule(
                            now,
                            &mut free,
                            &mut queue,
                            &mut running,
                            &mut end_time,
                            &mut makespan,
                        );
                        state_changed = false;
                    }
                }
                if !queue.is_empty() && pending_cycle.is_none() {
                    // With nothing new to schedule, the next useful tick is
                    // the first boundary at or after the next state change.
                    let t_arr2 =
                        jobs.get(next_arrival).map(|j| j.submit_time).unwrap_or(f64::INFINITY);
                    let t_done2 = running
                        .peek()
                        .map(|Reverse((OrdF64(e), _, _))| *e)
                        .unwrap_or(f64::INFINITY);
                    let base = if state_changed { now } else { t_arr2.min(t_done2) };
                    assert!(
                        base.is_finite(),
                        "queued jobs but no future event can free resources"
                    );
                    let mut boundary = (base / c).ceil() * c;
                    if boundary <= now {
                        boundary = next_cycle_after(now, c);
                    }
                    pending_cycle = Some(boundary);
                }
            }
        }
    }

    let turnarounds: Vec<f64> = jobs
        .iter()
        .zip(&end_time)
        .map(|(j, &e)| {
            debug_assert!(e.is_finite(), "every job must have finished");
            e - j.submit_time
        })
        .collect();
    BatchOutput { makespan, turnarounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versions::BatchVersion;
    use crate::workload::{generate, WorkloadSpec};

    fn resolved(speed: f64, cycle: f64, dispatch: f64, contention: f64) -> ResolvedBatch {
        ResolvedBatch {
            node_speed: speed,
            contention_coeff: contention,
            sched_cycle: cycle,
            dispatch_overhead: dispatch,
            noise_sigma: 0.0,
            noise_seed: 0,
        }
    }

    fn job(submit: f64, nodes: u32, work: f64, estimate: f64) -> Job {
        Job { submit_time: submit, nodes, work, walltime_estimate: estimate }
    }

    #[test]
    fn single_job_runs_immediately() {
        let jobs = vec![job(5.0, 2, 100.0, 200.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        assert!((out.makespan - 105.0).abs() < 1e-9);
        assert!((out.turnarounds[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_when_cluster_is_full() {
        // Two 4-node jobs on a 4-node cluster: strictly serial.
        let jobs = vec![job(0.0, 4, 100.0, 150.0), job(0.0, 4, 100.0, 150.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        assert!((out.makespan - 200.0).abs() < 1e-9);
        assert!((out.turnarounds[1] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn easy_backfills_a_small_job_that_cannot_delay_the_head() {
        // t=0: A (3 nodes, 100s) starts on a 4-node cluster.
        // B (4 nodes) must wait for A => shadow time 100.
        // C (1 node, estimate 50s <= shadow) backfills immediately.
        let jobs = vec![
            job(0.0, 3, 100.0, 120.0),
            job(1.0, 4, 50.0, 60.0),
            job(2.0, 1, 40.0, 50.0),
        ];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        // C ends at 2+40 = 42 (backfilled), B starts at 100.
        assert!((out.turnarounds[2] - 40.0).abs() < 1e-9, "C {:?}", out.turnarounds);
        assert!((out.turnarounds[1] - (150.0 - 1.0)).abs() < 1e-9, "B {:?}", out.turnarounds);
    }

    #[test]
    fn backfill_never_delays_the_head_job() {
        // C's estimate exceeds the shadow time and would use the head's
        // nodes: it must NOT backfill.
        let jobs = vec![
            job(0.0, 3, 100.0, 120.0),
            job(1.0, 4, 50.0, 60.0),
            job(2.0, 1, 500.0, 600.0), // too long to backfill
        ];
        let out = execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        // B starts when A ends (t=100); C runs after B (1-node slot opens
        // only after B, since B takes the whole cluster).
        assert!((out.turnarounds[1] - 149.0).abs() < 1e-9, "B {:?}", out.turnarounds);
        assert!(out.turnarounds[2] > 500.0, "C must wait: {:?}", out.turnarounds);
    }

    #[test]
    fn scheduling_cycle_delays_starts_to_boundaries() {
        let jobs = vec![job(5.0, 1, 10.0, 20.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 30.0, 0.0, 0.0));
        // Arrival at 5; first cycle boundary after 5 is 30.
        assert!((out.makespan - 40.0).abs() < 1e-9, "makespan {}", out.makespan);
    }

    #[test]
    fn dispatch_overhead_added_per_job() {
        let jobs = vec![job(0.0, 1, 10.0, 20.0), job(0.0, 1, 10.0, 20.0)];
        let out = execute(&jobs, 4, &resolved(1.0, 1.0, 5.0, 0.0));
        // Both start at the first cycle (t=1), each pays 5s dispatch.
        assert!((out.makespan - 16.0).abs() < 1e-9, "makespan {}", out.makespan);
    }

    #[test]
    fn contention_inflates_runtime_under_load() {
        let base = vec![job(0.0, 2, 100.0, 150.0), job(0.0, 2, 100.0, 150.0)];
        let no_contention = execute(&base, 4, &resolved(1.0, 0.0, 0.0, 0.0));
        let contended = execute(&base, 4, &resolved(1.0, 0.0, 0.0, 1.0));
        assert!((no_contention.makespan - 100.0).abs() < 1e-9);
        // Second job starts when utilization is 0.5 -> inflated by 1.5x.
        assert!(contended.makespan > 125.0, "contended {}", contended.makespan);
    }

    #[test]
    fn faster_nodes_shorten_everything() {
        let jobs = generate(&WorkloadSpec { num_jobs: 40, ..Default::default() });
        let slow = execute(&jobs, 32, &resolved(0.5, 0.0, 0.0, 0.0));
        let fast = execute(&jobs, 32, &resolved(2.0, 0.0, 0.0, 0.0));
        assert!(fast.makespan < slow.makespan);
        let t_slow: f64 = slow.turnarounds.iter().sum();
        let t_fast: f64 = fast.turnarounds.iter().sum();
        assert!(t_fast < t_slow);
    }

    #[test]
    fn all_jobs_complete_and_turnarounds_cover_runtimes() {
        let jobs = generate(&WorkloadSpec { num_jobs: 200, seed: 9, ..Default::default() });
        let out = execute(&jobs, 64, &resolved(1.0, 30.0, 2.0, 0.5));
        assert_eq!(out.turnarounds.len(), 200);
        for (j, t) in jobs.iter().zip(&out.turnarounds) {
            assert!(*t >= j.work / 1.0 - 1e-9, "turnaround below runtime");
        }
    }

    #[test]
    fn simulator_api_is_deterministic() {
        let jobs = generate(&WorkloadSpec { num_jobs: 60, seed: 2, ..Default::default() });
        let version = BatchVersion::highest_detail();
        let space = version.parameter_space();
        let calib = space.denormalize(&vec![0.5; space.dim()]);
        let sim = BatchSimulator::new(version, 32);
        assert_eq!(sim.simulate(&jobs, &calib), sim.simulate(&jobs, &calib));
    }

    #[test]
    #[should_panic(expected = "more nodes than the cluster")]
    fn oversized_job_rejected() {
        let jobs = vec![job(0.0, 8, 1.0, 2.0)];
        execute(&jobs, 4, &resolved(1.0, 0.0, 0.0, 0.0));
    }
}
