//! Synthetic batch workloads in the spirit of the Parallel Workloads
//! Archive traces the paper's conclusion points to for this domain.
//!
//! Jobs have Poisson arrivals, power-of-two node requests, lognormal
//! runtimes, and over-estimated walltime limits — the stylized facts of
//! PWA traces that matter for backfilling behaviour.

use numeric::{lognormal, rng_from_seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One batch job of a workload trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Submission time (s).
    pub submit_time: f64,
    /// Nodes requested (allocated exclusively).
    pub nodes: u32,
    /// Actual sequential runtime *content* of the job in abstract work
    /// units; the simulator's runtime model maps it to seconds.
    pub work: f64,
    /// User-provided walltime estimate (s) — what the backfilling
    /// scheduler plans with.
    pub walltime_estimate: f64,
}

/// Workload generation request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of jobs.
    pub num_jobs: usize,
    /// Mean inter-arrival time (s).
    pub mean_interarrival: f64,
    /// Mean job work (abstract units; ~seconds at unit speed).
    pub mean_work: f64,
    /// Largest node request, as a power of two (e.g. 6 => up to 64).
    pub max_nodes_log2: u32,
    /// Generation seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            num_jobs: 100,
            mean_interarrival: 20.0,
            mean_work: 300.0,
            max_nodes_log2: 5,
            seed: 0,
        }
    }
}

/// Generate a workload trace (sorted by submission time).
pub fn generate(spec: &WorkloadSpec) -> Vec<Job> {
    assert!(spec.num_jobs > 0, "workload must contain jobs");
    assert!(
        spec.mean_interarrival > 0.0 && spec.mean_work > 0.0,
        "means must be positive"
    );
    let mut rng = rng_from_seed(spec.seed ^ 0xBA7C4);
    let mut t = 0.0;
    let sigma = 0.8; // lognormal runtime spread, PWA-like heavy tail
    let mu = spec.mean_work.ln() - sigma * sigma / 2.0;
    (0..spec.num_jobs)
        .map(|_| {
            // Poisson arrivals: exponential gaps.
            t += -spec.mean_interarrival * (1.0 - rng.gen::<f64>()).ln();
            let nodes = 1u32 << rng.gen_range(0..=spec.max_nodes_log2);
            let work = lognormal(&mut rng, mu, sigma);
            // Users overestimate walltime by 1.5-10x (PWA stylized fact).
            let over = 1.5 + 8.5 * rng.gen::<f64>();
            Job {
                submit_time: t,
                nodes,
                work,
                walltime_estimate: work * over,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_sorted_by_submission() {
        let jobs = generate(&WorkloadSpec {
            num_jobs: 50,
            ..Default::default()
        });
        assert_eq!(jobs.len(), 50);
        assert!(jobs
            .windows(2)
            .all(|w| w[0].submit_time <= w[1].submit_time));
    }

    #[test]
    fn node_requests_are_powers_of_two_in_range() {
        let jobs = generate(&WorkloadSpec {
            max_nodes_log2: 4,
            ..Default::default()
        });
        for j in &jobs {
            assert!(j.nodes.is_power_of_two());
            assert!(j.nodes <= 16);
        }
    }

    #[test]
    fn walltime_estimates_exceed_work() {
        let jobs = generate(&WorkloadSpec::default());
        assert!(jobs.iter().all(|j| j.walltime_estimate > j.work));
    }

    #[test]
    fn mean_work_is_approximately_respected() {
        let jobs = generate(&WorkloadSpec {
            num_jobs: 5000,
            mean_work: 100.0,
            ..Default::default()
        });
        let mean = numeric::mean(&jobs.iter().map(|j| j.work).collect::<Vec<_>>());
        assert!((mean - 100.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&WorkloadSpec {
            seed: 3,
            ..Default::default()
        });
        let b = generate(&WorkloadSpec {
            seed: 3,
            ..Default::default()
        });
        let c = generate(&WorkloadSpec {
            seed: 4,
            ..Default::default()
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "must contain jobs")]
    fn zero_jobs_rejected() {
        generate(&WorkloadSpec {
            num_jobs: 0,
            ..Default::default()
        });
    }
}
