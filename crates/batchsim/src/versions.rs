//! The 4 level-of-detail versions of the batch-scheduling case study.
//!
//! All versions run the same EASY-backfilling algorithm; what varies is
//! how much of the platform's behaviour around the scheduler is modelled:
//! the scheduler-overhead model (2 options) and the job-runtime model
//! (2 options) — `2 x 2 = 4` versions, in the spirit of the paper's
//! Tables 2 and 4.

use serde::{Deserialize, Serialize};
use simcal::prelude::{ParamKind, ParameterSpace};

/// Scheduler-overhead level of detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverheadDetail {
    /// The scheduler reacts instantly and job dispatch is free.
    Instant,
    /// Scheduling passes run at a periodic cycle, and each job pays a
    /// dispatch overhead (RJMS daemons behave this way).
    Cycle,
}

/// Job-runtime level of detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeDetail {
    /// Runtime is the job's work divided by the node speed.
    Proportional,
    /// Runtime is additionally inflated by cluster utilization at start
    /// (shared-resource interference: network, parallel filesystem).
    Contention,
}

/// One of the 4 batch-simulator versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchVersion {
    /// Overhead level of detail.
    pub overhead: OverheadDetail,
    /// Runtime level of detail.
    pub runtime: RuntimeDetail,
}

impl BatchVersion {
    /// All 4 versions, overhead-major.
    pub fn all() -> Vec<BatchVersion> {
        let mut v = Vec::with_capacity(4);
        for overhead in [OverheadDetail::Instant, OverheadDetail::Cycle] {
            for runtime in [RuntimeDetail::Proportional, RuntimeDetail::Contention] {
                v.push(BatchVersion { overhead, runtime });
            }
        }
        v
    }

    /// The highest level of detail (cycle + contention) — 4 parameters.
    pub fn highest_detail() -> BatchVersion {
        BatchVersion {
            overhead: OverheadDetail::Cycle,
            runtime: RuntimeDetail::Contention,
        }
    }

    /// The lowest level of detail (instant + proportional) — 1 parameter.
    pub fn lowest_detail() -> BatchVersion {
        BatchVersion {
            overhead: OverheadDetail::Instant,
            runtime: RuntimeDetail::Proportional,
        }
    }

    /// Short report label, e.g. `"cycle/contention"`.
    pub fn label(&self) -> String {
        let o = match self.overhead {
            OverheadDetail::Instant => "instant",
            OverheadDetail::Cycle => "cycle",
        };
        let r = match self.runtime {
            RuntimeDetail::Proportional => "proportional",
            RuntimeDetail::Contention => "contention",
        };
        format!("{o}/{r}")
    }

    /// The calibration parameter space this version exposes.
    pub fn parameter_space(&self) -> ParameterSpace {
        let mut space = ParameterSpace::new();
        // Node speed in work units per second, log-uniform over a broad
        // range around 1 (the workload's natural unit).
        space.add(
            "node_speed",
            ParamKind::Exponential {
                lo_exp: -5.0,
                hi_exp: 5.0,
            },
        );
        if self.runtime == RuntimeDetail::Contention {
            space.add(
                "contention_coeff",
                ParamKind::Continuous { lo: 0.0, hi: 2.0 },
            );
        }
        if self.overhead == OverheadDetail::Cycle {
            space.add("sched_cycle", ParamKind::Continuous { lo: 0.0, hi: 120.0 });
            space.add(
                "dispatch_overhead",
                ParamKind::Continuous { lo: 0.0, hi: 30.0 },
            );
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_versions() {
        let all = BatchVersion::all();
        assert_eq!(all.len(), 4);
        let mut labels: Vec<String> = all.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn dimension_range() {
        assert_eq!(BatchVersion::lowest_detail().parameter_space().dim(), 1);
        assert_eq!(BatchVersion::highest_detail().parameter_space().dim(), 4);
    }

    #[test]
    fn every_space_has_node_speed() {
        for v in BatchVersion::all() {
            assert!(
                v.parameter_space().index_of("node_speed").is_some(),
                "{}",
                v.label()
            );
        }
    }
}
