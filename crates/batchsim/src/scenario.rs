//! Integration with the calibration framework.

use crate::ground_truth::BatchGroundTruthRecord;
use crate::simulator::BatchSimulator;
use simcal::prelude::{
    relative_error, Calibration, ScenarioError, SimulationObjective, Simulator, StructuredLoss,
};

/// One calibration scenario: a workload trace plus observed metrics.
pub type BatchScenario = BatchGroundTruthRecord;

impl Simulator for BatchSimulator {
    type Scenario = BatchScenario;
    type Output = ScenarioError;

    /// Simulate the trace and report the makespan error plus per-job
    /// turnaround errors (the same structured-error shape as case study
    /// #1, so the paper's L1–L6 losses apply unchanged).
    fn run(&self, scenario: &BatchScenario, calibration: &Calibration) -> ScenarioError {
        let out = self.simulate(&scenario.jobs, calibration);
        ScenarioError {
            scalar: relative_error(scenario.makespan, out.makespan),
            elements: scenario
                .turnarounds
                .iter()
                .zip(&out.turnarounds)
                .map(|(&gt, &sim)| relative_error(gt, sim))
                .collect(),
        }
    }
}

/// The calibration objective for one version over a scenario dataset.
pub fn objective<'a>(
    simulator: &'a BatchSimulator,
    scenarios: &'a [BatchScenario],
    loss: StructuredLoss,
) -> SimulationObjective<'a, BatchSimulator, StructuredLoss> {
    SimulationObjective::new(
        simulator,
        scenarios,
        loss,
        simulator.version.parameter_space(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::{dataset, default_grid, BatchEmulatorConfig};
    use crate::versions::BatchVersion;
    use simcal::prelude::{Agg, Budget, Calibrator, ElementMix, Objective};

    #[test]
    fn calibration_improves_over_arbitrary_point() {
        let cfg = BatchEmulatorConfig::default();
        let scenarios = dataset(&default_grid(1)[..2], &cfg, 2, 7);
        let version = BatchVersion::highest_detail();
        let sim = BatchSimulator::new(version, cfg.total_nodes);
        let obj = objective(
            &sim,
            &scenarios,
            StructuredLoss::new(Agg::Avg, ElementMix::Ignore, "L1"),
        );
        let arbitrary = obj.loss(
            &version
                .parameter_space()
                .denormalize(&vec![0.2; obj.space().dim()]),
        );
        let result = Calibrator::bo_gp(Budget::Evaluations(80), 3).calibrate(&obj);
        assert!(result.loss <= arbitrary, "{} vs {arbitrary}", result.loss);
        assert!(result.loss < 0.5, "calibrated loss {}", result.loss);
    }

    #[test]
    fn cycle_version_fits_better_than_instant() {
        // The hidden system batches starts at a 30s cycle; the instant
        // version cannot express the induced queueing delays of short
        // jobs, the cycle version can.
        let cfg = BatchEmulatorConfig::default();
        let specs = [crate::workload::WorkloadSpec {
            num_jobs: 80,
            mean_interarrival: 15.0,
            mean_work: 60.0, // short jobs: cycle waits dominate
            max_nodes_log2: 3,
            seed: 11,
        }];
        let scenarios = dataset(&specs, &cfg, 2, 5);
        let loss = StructuredLoss::new(Agg::Avg, ElementMix::AddAvg, "L3");
        let budget = Budget::Evaluations(150);

        let run = |version: BatchVersion| {
            let sim = BatchSimulator::new(version, cfg.total_nodes);
            let obj = objective(&sim, &scenarios, loss.clone());
            (0..3u64)
                .map(|r| Calibrator::bo_gp(budget, 9 ^ r << 32).calibrate(&obj).loss)
                .fold(f64::INFINITY, f64::min)
        };
        let instant = run(BatchVersion::lowest_detail());
        let cycle = run(BatchVersion {
            overhead: crate::versions::OverheadDetail::Cycle,
            runtime: crate::versions::RuntimeDetail::Proportional,
        });
        assert!(
            cycle < instant,
            "modelling the scheduling cycle must help: cycle {cycle} vs instant {instant}"
        );
    }
}
