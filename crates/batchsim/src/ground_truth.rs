//! Ground-truth emulator for the batch-scheduling case study.
//!
//! Substitutes for Parallel Workloads Archive traces with a hidden
//! "production RJMS": EASY backfilling with a real scheduling cycle,
//! per-job dispatch overheads, utilization-dependent interference, and
//! stochastic runtime noise — a process strictly richer than the
//! lowest-detail candidate simulators, as in the other two case studies.

use crate::simulator::{execute, BatchOutput, ResolvedBatch};
use crate::workload::{generate, Job, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Hidden parameters of the emulated production system.
#[derive(Clone, Copy, Debug)]
pub struct BatchEmulatorConfig {
    /// Effective node speed (work units per second).
    pub node_speed: f64,
    /// Interference coefficient.
    pub contention_coeff: f64,
    /// Scheduling cycle period (s) — slurmctld-style.
    pub sched_cycle: f64,
    /// Per-job dispatch overhead (s).
    pub dispatch_overhead: f64,
    /// Lognormal sigma on job runtimes.
    pub noise_sigma: f64,
    /// Cluster size.
    pub total_nodes: u32,
}

impl Default for BatchEmulatorConfig {
    fn default() -> Self {
        Self {
            node_speed: 0.9,
            contention_coeff: 0.35,
            sched_cycle: 30.0,
            dispatch_overhead: 2.0,
            noise_sigma: 0.07,
            total_nodes: 64,
        }
    }
}

impl BatchEmulatorConfig {
    /// Emulate one "real" execution of `jobs`; `noise_seed` distinguishes
    /// repetitions.
    pub fn emulate(&self, jobs: &[Job], noise_seed: u64) -> BatchOutput {
        let model = ResolvedBatch {
            node_speed: self.node_speed,
            contention_coeff: self.contention_coeff,
            sched_cycle: self.sched_cycle,
            dispatch_overhead: self.dispatch_overhead,
            noise_sigma: self.noise_sigma,
            noise_seed,
        };
        execute(jobs, self.total_nodes, &model)
    }
}

/// One ground-truth data point: a workload trace with its observed
/// execution metrics (averaged over repetitions).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchGroundTruthRecord {
    /// How the workload was generated.
    pub spec: WorkloadSpec,
    /// The trace itself (regenerable from `spec`, embedded for direct use).
    pub jobs: Vec<Job>,
    /// Observed makespan (mean over repetitions).
    pub makespan: f64,
    /// Observed per-job turnaround times (mean over repetitions).
    pub turnarounds: Vec<f64>,
}

/// Generate ground truth for a grid of workload intensities.
pub fn dataset(
    specs: &[WorkloadSpec],
    config: &BatchEmulatorConfig,
    repetitions: usize,
    seed: u64,
) -> Vec<BatchGroundTruthRecord> {
    specs
        .iter()
        .map(|spec| {
            let jobs = generate(spec);
            let mut makespans = Vec::with_capacity(repetitions);
            let mut sums = vec![0.0; jobs.len()];
            for rep in 0..repetitions.max(1) {
                let out = config.emulate(&jobs, seed ^ spec.seed ^ (rep as u64) << 40);
                makespans.push(out.makespan);
                for (s, t) in sums.iter_mut().zip(&out.turnarounds) {
                    *s += t;
                }
            }
            let reps = repetitions.max(1) as f64;
            BatchGroundTruthRecord {
                spec: *spec,
                jobs,
                makespan: numeric::mean(&makespans),
                turnarounds: sums.iter().map(|s| s / reps).collect(),
            }
        })
        .collect()
}

/// A small intensity grid: three arrival intensities x two job-size
/// mixes, the diversity the methodology needs (§5.5's lesson).
pub fn default_grid(base_seed: u64) -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    for (i, &interarrival) in [10.0, 25.0, 60.0].iter().enumerate() {
        for (j, &work) in [120.0, 600.0].iter().enumerate() {
            specs.push(WorkloadSpec {
                num_jobs: 80,
                mean_interarrival: interarrival,
                mean_work: work,
                max_nodes_log2: 5,
                seed: base_seed ^ ((i * 2 + j) as u64) << 8,
            });
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulation_is_reproducible_and_noisy() {
        let cfg = BatchEmulatorConfig::default();
        let jobs = generate(&WorkloadSpec {
            num_jobs: 40,
            ..Default::default()
        });
        let a = cfg.emulate(&jobs, 1);
        let b = cfg.emulate(&jobs, 1);
        let c = cfg.emulate(&jobs, 2);
        assert_eq!(a, b);
        assert_ne!(a.makespan, c.makespan);
        assert!((a.makespan - c.makespan).abs() / a.makespan < 0.3);
    }

    #[test]
    fn dataset_covers_the_grid() {
        let specs = default_grid(5);
        assert_eq!(specs.len(), 6);
        let records = dataset(&specs[..2], &BatchEmulatorConfig::default(), 2, 3);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.turnarounds.len(), r.jobs.len());
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn heavier_load_takes_longer() {
        let cfg = BatchEmulatorConfig::default();
        let light = WorkloadSpec {
            num_jobs: 60,
            mean_interarrival: 60.0,
            ..Default::default()
        };
        let heavy = WorkloadSpec {
            num_jobs: 60,
            mean_interarrival: 5.0,
            ..Default::default()
        };
        let r = dataset(&[light, heavy], &cfg, 1, 1);
        // Heavier arrival rate => more queueing => larger mean turnaround.
        let mean_light = numeric::mean(&r[0].turnarounds);
        let mean_heavy = numeric::mean(&r[1].turnarounds);
        assert!(mean_heavy > mean_light, "{mean_heavy} vs {mean_light}");
    }
}
